"""Tests for the scenario-dynamics subsystem.

Covers the network liveness layer (offline nodes, in-flight message
failure), the cluster membership hooks, the :class:`ScenarioDynamics`
driver itself, the named scenario registry, and — most importantly — the
round engine's dropped-client accounting: a client that disconnects
mid-round must be excluded from the aggregation, listed in the
:class:`RoundRecord`, and must not leak a pending in-flight message into
the next round.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.workloads import (
    SCALES,
    available_scenarios,
    evaluation_config,
    scenario_description,
    scenario_dynamics,
    scenario_transport,
)
from repro.fl.config import DynamicsConfig, ExperimentConfig, ResourceConfig
from repro.fl.runtime import build_experiment, run_experiment
from repro.simulation.cluster import FEDERATOR_ID, SimulatedCluster
from repro.simulation.dynamics import ScenarioDynamics
from repro.simulation.network import LinkSpec
from repro.simulation.resources import uniform_speed_profiles


def _cluster(n: int = 4, seed: int = 0) -> SimulatedCluster:
    return SimulatedCluster(uniform_speed_profiles(n, rng=np.random.default_rng(seed)))


# ---------------------------------------------------------------------------
# Network liveness
# ---------------------------------------------------------------------------
class TestNetworkLiveness:
    def test_nodes_default_to_online(self):
        cluster = _cluster()
        assert all(cluster.is_online(cid) for cid in cluster.client_ids)
        assert cluster.network.is_online(FEDERATOR_ID)

    def test_send_to_offline_node_is_dropped(self):
        cluster = _cluster()
        received = []
        cluster.network.register(0, received.append)
        cluster.network.register(FEDERATOR_ID, received.append)
        cluster.network.set_node_online(0, False)
        message = cluster.network.send(FEDERATOR_ID, 0, "ping")
        cluster.env.run()
        assert message.failed
        assert received == []
        assert cluster.network.messages_dropped == 1

    def test_disconnect_fails_in_flight_messages(self):
        cluster = _cluster()
        received = []
        cluster.network.register(0, received.append)
        cluster.network.register(FEDERATOR_ID, received.append)
        message = cluster.network.send(FEDERATOR_ID, 0, "ping")
        assert cluster.network.in_flight_count(0) == 1
        # Disconnect while the message is still in flight.
        cluster.network.set_node_online(0, False)
        cluster.env.run()
        assert message.failed
        assert received == []
        assert cluster.network.messages_failed == 1
        assert cluster.network.in_flight_count(0) == 0

    def test_messages_from_disconnecting_sender_also_fail(self):
        cluster = _cluster()
        received = []
        cluster.network.register(0, received.append)
        cluster.network.register(FEDERATOR_ID, received.append)
        message = cluster.network.send(0, FEDERATOR_ID, "result")
        cluster.network.set_node_online(0, False)
        cluster.env.run()
        assert message.failed
        assert received == []

    def test_reconnect_does_not_replay_lost_messages(self):
        cluster = _cluster()
        received = []
        cluster.network.register(0, received.append)
        cluster.network.register(FEDERATOR_ID, received.append)
        cluster.network.send(FEDERATOR_ID, 0, "ping")
        cluster.network.set_node_online(0, False)
        cluster.network.set_node_online(0, True)
        cluster.env.run()
        assert received == []  # cancelled is cancelled, even after a blip

    def test_delivery_between_online_nodes_unaffected(self):
        cluster = _cluster()
        received = []
        cluster.network.register(0, received.append)
        cluster.network.register(1, lambda m: None)
        cluster.network.register(FEDERATOR_ID, lambda m: None)
        cluster.network.set_node_online(1, False)
        cluster.network.send(FEDERATOR_ID, 0, "ping")
        cluster.env.run()
        assert len(received) == 1
        assert cluster.network.in_flight_count() == 0


# ---------------------------------------------------------------------------
# Cluster membership hooks
# ---------------------------------------------------------------------------
class TestClusterMembership:
    def test_membership_listener_sees_transitions(self):
        cluster = _cluster()
        seen = []
        cluster.add_membership_listener(lambda cid, online: seen.append((cid, online)))
        cluster.set_client_offline(2)
        cluster.set_client_online(2)
        assert seen == [(2, False), (2, True)]

    def test_transitions_are_idempotent(self):
        cluster = _cluster()
        seen = []
        cluster.add_membership_listener(lambda cid, online: seen.append((cid, online)))
        cluster.set_client_offline(1)
        cluster.set_client_offline(1)  # no-op
        cluster.set_client_online(1)
        cluster.set_client_online(1)  # no-op
        assert seen == [(1, False), (1, True)]

    def test_unknown_client_rejected(self):
        cluster = _cluster()
        with pytest.raises(KeyError):
            cluster.set_client_offline(99)
        with pytest.raises(KeyError):
            cluster.set_client_offline(FEDERATOR_ID)  # type: ignore[arg-type]

    def test_online_client_ids(self):
        cluster = _cluster(4)
        cluster.set_client_offline(0)
        cluster.set_client_offline(3)
        assert cluster.online_client_ids == [1, 2]

    def test_scale_client_speed_mutates_shared_profile(self):
        cluster = _cluster()
        before = cluster.profile(0).speed_fraction
        cluster.scale_client_speed(0, 0.25)
        assert cluster.profile(0).speed_fraction == pytest.approx(before * 0.25)
        cluster.scale_client_speed(0, 4.0)
        assert cluster.profile(0).speed_fraction == pytest.approx(before)

    def test_link_factor_round_trip(self):
        cluster = _cluster()
        base = cluster.network.default_link()
        cluster.set_link_factor(1, 0.1)
        assert cluster.network.link(1, FEDERATOR_ID).bandwidth_bytes_per_s == pytest.approx(
            base.bandwidth_bytes_per_s * 0.1
        )
        cluster.set_link_factor(1, 1.0)
        assert cluster.network.link(1, FEDERATOR_ID) is base


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------
class TestScenarioRegistry:
    def test_expected_names(self):
        assert available_scenarios() == (
            "stable",
            "churn",
            "flaky-network",
            "lossy",
            "lossy-churn",
            "mega-churn",
            "partition-storm",
            "straggler-burst",
        )

    def test_stable_is_inert(self):
        assert not scenario_dynamics("stable").is_active()

    def test_non_stable_scenarios_are_active(self):
        # Every non-stable scenario must do *something*: time-varying
        # dynamics, transport faults, or both (e.g. "lossy" is dynamics-
        # inert but installs an aggressive fault profile).
        for name in available_scenarios():
            if name != "stable":
                dynamics = scenario_dynamics(name)
                transport = scenario_transport(name)
                assert dynamics.is_active() or not transport.is_null(), name
                assert dynamics.scenario == name

    def test_descriptions_exist(self):
        for name in available_scenarios():
            assert scenario_description(name)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_dynamics("nope")
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_description("nope")

    def test_time_constants_stretch_with_scale(self):
        smoke = scenario_dynamics("churn", SCALES["smoke"])
        full = scenario_dynamics("churn", SCALES["full"])
        stretch = (
            SCALES["full"].local_updates * SCALES["full"].batch_size
        ) / (SCALES["smoke"].local_updates * SCALES["smoke"].batch_size)
        assert full.mean_online_s == pytest.approx(smoke.mean_online_s * stretch)
        assert full.client_timeout_s == pytest.approx(smoke.client_timeout_s * stretch)

    def test_evaluation_config_carries_scenario(self):
        config = evaluation_config(
            "mnist", "fedavg", "iid", SCALES["smoke"], scenario="churn"
        )
        assert config.dynamics.scenario == "churn"
        assert config.dynamics.churn
        assert config.describe()["scenario"] == "churn"


# ---------------------------------------------------------------------------
# DynamicsConfig validation
# ---------------------------------------------------------------------------
class TestDynamicsConfigValidation:
    def test_default_is_inert(self):
        assert not DynamicsConfig().is_active()

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DynamicsConfig(mean_online_s=0.0)
        with pytest.raises(ValueError):
            DynamicsConfig(slowdown_factor=0.5)
        with pytest.raises(ValueError):
            DynamicsConfig(bandwidth_low_factor=0.9, bandwidth_high_factor=0.1)
        with pytest.raises(ValueError):
            DynamicsConfig(client_timeout_s=0.0)
        with pytest.raises(ValueError):
            DynamicsConfig(slowdown_rate_per_s=-1.0)


# ---------------------------------------------------------------------------
# The ScenarioDynamics driver
# ---------------------------------------------------------------------------
class TestScenarioDynamicsDriver:
    def test_inert_config_schedules_nothing(self):
        cluster = _cluster()
        driver = ScenarioDynamics(cluster, DynamicsConfig(), seed=1)
        driver.install()
        assert cluster.env.pending_events() == 0

    def test_churn_toggles_membership(self):
        cluster = _cluster(4)
        dynamics = DynamicsConfig(churn=True, mean_online_s=1.0, mean_offline_s=0.5)
        stop = {"flag": False}
        driver = ScenarioDynamics(
            cluster, dynamics, seed=3, stop_when=lambda: stop["flag"]
        )
        driver.install()
        cluster.env.run(until=20.0)
        assert driver.offline_events > 0
        assert driver.online_events > 0
        # Let the queue drain once stopped.
        stop["flag"] = True
        cluster.env.run()
        assert cluster.env.pending_events() == 0

    def test_min_online_clients_is_respected(self):
        cluster = _cluster(3)
        dynamics = DynamicsConfig(
            churn=True, mean_online_s=0.5, mean_offline_s=5.0, min_online_clients=2
        )
        min_seen = [len(cluster.online_client_ids)]
        cluster.add_membership_listener(
            lambda cid, online: min_seen.append(len(cluster.online_client_ids))
        )
        driver = ScenarioDynamics(cluster, dynamics, seed=5, stop_when=lambda: cluster.env.now > 30)
        driver.install()
        cluster.env.run(until=40.0)
        assert driver.offline_events > 0
        assert min(min_seen) >= 2 - 1  # listener fires after the transition

    def test_slowdown_bursts_restore_speed(self):
        cluster = _cluster(4)
        baseline = [cluster.profile(cid).speed_fraction for cid in cluster.client_ids]
        dynamics = DynamicsConfig(
            slowdown_rate_per_s=2.0, slowdown_factor=4.0, mean_slowdown_s=0.5
        )
        driver = ScenarioDynamics(cluster, dynamics, seed=7, stop_when=lambda: cluster.env.now > 10)
        driver.install()
        cluster.env.run()
        assert driver.slowdown_events > 0
        # Every burst reverted: speeds are back at their baseline.
        for cid, speed in zip(cluster.client_ids, baseline):
            assert cluster.profile(cid).speed_fraction == pytest.approx(speed)

    def test_bandwidth_trace_reverts_links(self):
        cluster = _cluster(4)
        base = cluster.network.default_link()
        dynamics = DynamicsConfig(
            bandwidth_rate_per_s=2.0,
            bandwidth_low_factor=0.1,
            bandwidth_high_factor=0.5,
            mean_bandwidth_hold_s=0.5,
        )
        driver = ScenarioDynamics(cluster, dynamics, seed=9, stop_when=lambda: cluster.env.now > 10)
        driver.install()
        cluster.env.run()
        assert driver.bandwidth_events > 0
        for cid in cluster.client_ids:
            assert cluster.network.link(cid, FEDERATOR_ID) is base

    def test_identical_seeds_produce_identical_traces(self):
        def trace(seed: int):
            cluster = _cluster(4, seed=0)
            events = []
            cluster.add_membership_listener(
                lambda cid, online: events.append((round(cluster.env.now, 9), cid, online))
            )
            dynamics = DynamicsConfig(churn=True, mean_online_s=1.0, mean_offline_s=0.5)
            driver = ScenarioDynamics(
                cluster, dynamics, seed=seed, stop_when=lambda: cluster.env.now > 15
            )
            driver.install()
            cluster.env.run(until=20.0)
            return events

        assert trace(42) == trace(42)
        assert trace(42) != trace(43)


# ---------------------------------------------------------------------------
# End-to-end scenario runs
# ---------------------------------------------------------------------------
class TestScenarioExperiments:
    def test_churn_run_completes_every_round(self):
        config = evaluation_config(
            "mnist", "fedavg", "noniid", SCALES["smoke"], seed=42, scenario="churn"
        )
        result = run_experiment(config)
        assert result.num_rounds == config.rounds
        assert result.total_dropped() > 0  # churn actually bit

    def test_mega_churn_is_deterministic(self):
        config = evaluation_config(
            "mnist", "fedavg", "noniid", SCALES["smoke"], seed=42, scenario="mega-churn"
        )
        assert run_experiment(config).summary() == run_experiment(config).summary()

    def test_stable_scenario_matches_no_scenario(self):
        scale = SCALES["smoke"]
        base = evaluation_config("mnist", "fedavg", "noniid", scale, seed=42)
        stable = evaluation_config(
            "mnist", "fedavg", "noniid", scale, seed=42, scenario="stable"
        )
        assert run_experiment(base).summary() == run_experiment(stable).summary()

    def test_straggler_burst_slows_rounds_down(self):
        scale = SCALES["smoke"]
        calm = run_experiment(
            evaluation_config("mnist", "fedavg", "iid", scale, seed=42)
        )
        bursty = run_experiment(
            evaluation_config(
                "mnist", "fedavg", "iid", scale, seed=42, scenario="straggler-burst"
            )
        )
        # Same accuracy trajectory shape, but bursts can only add time.
        assert bursty.total_time >= calm.total_time

    def test_flaky_network_completes(self):
        config = evaluation_config(
            "mnist", "fedavg", "noniid", SCALES["smoke"], seed=42, scenario="flaky-network"
        )
        result = run_experiment(config)
        assert result.num_rounds == config.rounds


# ---------------------------------------------------------------------------
# Dropped-client accounting (the satellite's contract)
# ---------------------------------------------------------------------------
class TestDroppedClientAccounting:
    def _config(self) -> ExperimentConfig:
        return ExperimentConfig(
            dataset="mnist",
            architecture="mnist-cnn",
            algorithm="fedavg",
            num_clients=4,
            rounds=2,
            local_updates=6,
            profile_batches=0,
            train_size=320,
            test_size=80,
            batch_size=16,
            resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.4, 0.6, 0.8, 1.0)),
            seed=11,
        )

    def test_mid_round_dropout_accounting(self):
        """A client dropping mid-round is excluded from aggregation weights,
        listed in the RoundRecord, and leaks no in-flight message."""
        handle = build_experiment(self._config())
        cluster, federator = handle.cluster, handle.federator
        # Take client 0 down in the middle of round 1 (well before the
        # slowest client can finish its 6 batches) and bring it back before
        # round 2 starts.
        cluster.env.schedule(0.4, lambda: cluster.set_client_offline(0))
        cluster.env.schedule(1.2, lambda: cluster.set_client_online(0))
        result = handle.run()

        round1, round2 = result.rounds
        assert round1.dropped_clients == [0]
        assert 0 not in round1.completed_clients
        assert sorted(round1.completed_clients) == [1, 2, 3]
        # Aggregation weights excluded the dropped client: the round record
        # only averaged the three survivors (checked via the engine's own
        # accounting — completed == aggregated for FedAvg).
        assert round1.selected_clients == [0, 1, 2, 3]
        # Round 2 proceeds normally: it selects only the clients online at
        # its start (client 0 may still be offline) and all of them finish.
        assert round2.dropped_clients == []
        assert sorted(round2.completed_clients) == sorted(round2.selected_clients)
        assert round2.completed_clients
        # No in-flight message leaked past the end of the simulation.
        assert cluster.network.in_flight_count() == 0
        assert federator.finished
        assert federator.engine_phase == "idle"

    def test_dropout_weights_match_survivor_only_aggregate(self):
        """The aggregated model equals the weighted average of the
        survivors' contributions only."""
        handle = build_experiment(self._config().with_overrides(rounds=1))
        cluster, federator = handle.cluster, handle.federator

        captured = {}
        original_aggregate = federator.aggregate

        def capturing_aggregate(state, contributions):
            captured["client_ids"] = sorted(
                cid for cid in state.results if cid not in state.dropped_clients
            )
            captured["num_contributions"] = len(contributions)
            return original_aggregate(state, contributions)

        federator.aggregate = capturing_aggregate
        cluster.env.schedule(0.4, lambda: cluster.set_client_offline(0))
        result = handle.run()
        assert captured["client_ids"] == [1, 2, 3]
        assert captured["num_contributions"] == 3
        assert result.rounds[0].dropped_clients == [0]

    def test_dropped_client_aborts_local_work(self):
        handle = build_experiment(self._config().with_overrides(rounds=1))
        cluster = handle.cluster
        client0 = handle.clients[0]
        cluster.env.schedule(0.4, lambda: cluster.set_client_offline(0))
        handle.run()
        assert client0.times_disconnected == 1
        # The abort left no dangling pending batch event.
        assert client0._pending_batch_event is None
        assert client0.total_batches_trained < 6

    def test_all_clients_dropped_leaves_model_unchanged(self):
        handle = build_experiment(self._config().with_overrides(rounds=1))
        cluster, federator = handle.cluster, handle.federator
        before = {k: v.copy() for k, v in federator.global_weights.items()}
        for cid in (0, 1, 2, 3):
            cluster.env.schedule(0.2, lambda c=cid: cluster.set_client_offline(c))
        result = handle.run()
        record = result.rounds[0]
        assert sorted(record.dropped_clients) == [0, 1, 2, 3]
        assert record.completed_clients == []
        for key, value in federator.global_weights.items():
            np.testing.assert_array_equal(value, before[key])

    def test_client_timeout_drops_stragglers(self):
        """A per-client timeout (dynamics.client_timeout_s) drops clients
        that cannot finish in time, without a full round deadline."""
        config = self._config().with_overrides(
            rounds=1, dynamics=DynamicsConfig(client_timeout_s=0.45)
        )
        result = run_experiment(config)
        record = result.rounds[0]
        assert record.dropped_clients  # the slow clients timed out
        assert record.completed_clients  # the fast ones made it
        assert set(record.dropped_clients).isdisjoint(record.completed_clients)
