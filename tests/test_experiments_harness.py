"""Tests for the experiment harness: workloads, runner, reports and figure
regeneration functions (run at smoke scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import (
    ablation_freeze_side,
    ablation_offload_point,
    figure4,
    figure9,
)
from repro.experiments.report import format_table, render_summaries, render_table1, table1_comparison
from repro.experiments.runner import run_configs
from repro.experiments.workloads import (
    SCALES,
    architecture_for,
    baseline_algorithms,
    evaluation_config,
    heterogeneity_config,
    motivation_deadline_config,
    noniid_degree_configs,
    scale_from_env,
    similarity_factor_config,
)
from repro.fl.config import ExperimentConfig


class TestWorkloads:
    def test_scale_registry(self):
        assert set(SCALES) == {"smoke", "bench", "full", "city", "metro", "continent"}
        assert SCALES["smoke"].rounds < SCALES["bench"].rounds < SCALES["full"].rounds
        # The large-cohort profiles use partial participation: memory is
        # bounded by clients_per_round, not the cohort.
        assert SCALES["city"].num_clients >= 1000
        assert SCALES["metro"].num_clients >= 5000
        assert SCALES["continent"].num_clients >= 100_000
        for name in ("city", "metro", "continent"):
            assert SCALES[name].is_partial_participation

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "bench")
        assert scale_from_env().name == "bench"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            scale_from_env()

    def test_conftest_forces_smoke_scale(self):
        assert scale_from_env().name == "smoke"

    def test_baseline_algorithms_match_paper(self):
        assert baseline_algorithms() == ("fedavg", "fedprox", "fednova", "tifl", "aergia")

    def test_architecture_mapping(self):
        assert architecture_for("mnist") == "mnist-cnn"
        assert architecture_for("cifar10") == "cifar10-cnn"
        with pytest.raises(KeyError):
            architecture_for("svhn")

    def test_evaluation_config_is_valid(self):
        scale = SCALES["smoke"]
        for dataset in ("mnist", "fmnist", "cifar10"):
            for algorithm in baseline_algorithms():
                config = evaluation_config(dataset, algorithm, "noniid", scale)
                assert isinstance(config, ExperimentConfig)
                assert config.dataset == dataset
                assert config.algorithm == algorithm

    def test_cifar_config_is_scaled_down(self):
        scale = SCALES["bench"]
        mnist = evaluation_config("mnist", "fedavg", "iid", scale)
        cifar = evaluation_config("cifar10", "fedavg", "iid", scale)
        assert cifar.num_clients <= mnist.num_clients
        assert cifar.rounds <= mnist.rounds

    def test_motivation_and_sweep_configs(self):
        scale = SCALES["smoke"]
        deadline = motivation_deadline_config(30.0, scale)
        assert deadline.algorithm == "deadline"
        assert deadline.deadline_seconds == 30.0
        hetero = heterogeneity_config(5, 0.2, scale)
        assert hetero.resources.scheme == "variance"
        sim = similarity_factor_config(0.5, scale)
        assert sim.algorithm == "aergia"
        assert sim.aergia_similarity_factor == 0.5
        levels = noniid_degree_configs(scale)
        assert [label for label, _ in levels] == ["IID", "non-IID(10)", "non-IID(5)", "non-IID(2)"]


class TestRunnerAndReport:
    def test_run_configs_collects_all_labels(self, smoke_config):
        suite = run_configs(
            {
                "fedavg": smoke_config,
                "aergia": smoke_config.with_overrides(algorithm="aergia"),
            }
        )
        assert set(suite.labels()) == {"fedavg", "aergia"}
        assert suite.total_wall_seconds() > 0
        assert "fedavg" in suite
        summaries = suite.summaries()
        assert summaries["aergia"]["algorithm"] == "aergia"

    def test_run_configs_progress_callback(self, smoke_config):
        seen = []
        run_configs({"only": smoke_config}, progress=lambda label, result: seen.append(label))
        assert seen == ["only"]

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table1_contents(self):
        table = table1_comparison()
        assert set(table) == {"FedAvg", "FedProx", "FedNova", "TiFL", "Aergia"}
        assert table["Aergia"]["minimizes_training_time"] == "yes"
        assert table["FedAvg"]["data_heterogeneity"] == "-"
        rendering = render_table1()
        assert "Aergia" in rendering and "TiFL" in rendering

    def test_render_summaries(self, smoke_config):
        suite = run_configs({"fedavg": smoke_config})
        text = render_summaries(suite.summaries(), title="demo")
        assert "fedavg" in text


class TestFigureFunctions:
    """Smoke-level checks that the figure regeneration functions produce the
    expected structure and the paper's qualitative shape.  The quantitative
    regeneration happens in the benchmark harness at bench scale."""

    def test_figure4_bf_dominates_everywhere(self):
        data = figure4(batches=2, batch_size=8, sample_size=32)
        assert set(data["fractions"]) == {
            "cifar10-cnn",
            "cifar10-resnet",
            "cifar100-vgg",
            "cifar100-resnet",
            "fmnist-cnn",
        }
        for workload, fractions in data["fractions"].items():
            assert fractions["bf"] > 40.0, workload
            assert abs(sum(fractions.values()) - 100.0) < 1e-6
        assert "Figure 4" in data["render"]

    def test_figure9_runs_all_factors(self):
        data = figure9(factors=(1.0, 0.0))
        assert set(data["accuracy"]) == {"f=1.0", "f=0.0"}
        assert all(0.0 <= acc <= 1.0 for acc in data["accuracy"].values())
        assert all(t > 0 for t in data["mean_round_duration_s"].values())

    def test_ablation_offload_point_never_worse_than_midpoint(self):
        data = ablation_offload_point(speed_ratios=(2.0, 8.0), remaining=32)
        for ratio, improvement in data["improvements"].items():
            assert improvement >= -1e-9, f"optimal split worse than midpoint at ratio {ratio}"

    def test_ablation_freeze_side_prefers_features(self):
        data = ablation_freeze_side(batches=2, batch_size=8)
        for workload, saving in data["savings"].items():
            assert (
                saving["freeze_features_saving_pct"] > saving["freeze_classifier_saving_pct"]
            ), workload


class TestExamples:
    """The example scripts are part of the public API surface: they must run."""

    def test_quickstart(self):
        from examples.quickstart import main

        summaries = main(rounds=2, num_clients=4, verbose=False)
        assert set(summaries) == {"fedavg", "aergia"}

    def test_noniid_similarity(self):
        from examples.noniid_similarity import main

        targets = main(num_clients=5, verbose=False)
        assert targets["without_similarity_target"] is not None
        assert targets["with_similarity_target"] is not None

    def test_phase_profiling(self):
        from examples.phase_profiling import main

        results = main(batches=1, batch_size=8, verbose=False)
        assert all(result["bf"] > 40.0 for result in results.values())

    def test_offloading_timeline(self):
        from examples.offloading_timeline import main

        timeline = main(verbose=False)
        descriptions = " ".join(entry for _, entry in timeline)
        assert "frozen model transfer" in descriptions
        assert "offloaded features returned" in descriptions
