"""Virtualized client pool: mechanics and eager-parity guarantees.

Two layers of coverage:

* unit tests of :class:`repro.simulation.virtual_pool.VirtualClientPool`
  (LRU recycling, pinning, dehydration safety, loader-state round-trips)
  driven through a built experiment handle;
* end-to-end parity: a virtualized run with a tight slot budget must
  reproduce the eager run's summary and round records **bit for bit**,
  including under churn with partial participation (the regime where
  clients are evicted and rehydrated between rounds).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import build_experiment, run_experiment, uses_virtual_pool


def _partial_config(algorithm="fedavg", scenario="churn", **overrides):
    """Small partial-participation config that forces pool churn."""
    return evaluation_config(
        "mnist",
        algorithm,
        "noniid",
        SCALES["smoke"],
        seed=5,
        scenario=scenario,
        dtype="float32",
        num_clients=6,
        clients_per_round=3,
        rounds=3,
        **overrides,
    )


# ---------------------------------------------------------------------------
# Mode selection
# ---------------------------------------------------------------------------
class TestModeSelection:
    def test_auto_keeps_small_cohorts_eager(self, smoke_config):
        assert smoke_config.client_pool == "auto"
        assert not uses_virtual_pool(smoke_config)
        handle = build_experiment(smoke_config)
        assert handle.pool is None
        assert len(handle.clients) == smoke_config.num_clients
        assert len(handle.active_clients()) == smoke_config.num_clients

    def test_auto_virtualizes_large_cohorts(self, smoke_config):
        big = smoke_config.with_overrides(num_clients=100, clients_per_round=4, train_size=400)
        assert uses_virtual_pool(big)

    def test_explicit_modes_override_auto(self, smoke_config):
        assert uses_virtual_pool(smoke_config.with_overrides(client_pool="virtual"))
        big = smoke_config.with_overrides(num_clients=100, clients_per_round=4, train_size=400)
        assert not uses_virtual_pool(big.with_overrides(client_pool="eager"))

    def test_invalid_pool_settings_rejected(self, smoke_config):
        with pytest.raises(ValueError):
            smoke_config.with_overrides(client_pool="bogus")
        with pytest.raises(ValueError):
            smoke_config.with_overrides(pool_slots=0)

    def test_city_and_metro_profiles_resolve_to_virtual_configs(self):
        for name in ("city", "metro"):
            config = evaluation_config("mnist", "fedavg", "noniid", SCALES[name], seed=1)
            assert uses_virtual_pool(config)
            assert config.effective_clients_per_round < config.num_clients

    def test_large_scales_are_wired_through_api_and_cli(self):
        import repro.api as api
        from repro.cli import build_parser

        config = api.experiment("fedavg").dataset("mnist").scale("city").scenario("churn").build()
        assert config.num_clients == SCALES["city"].num_clients
        assert uses_virtual_pool(config)
        # The CLI's --scale choices render from the registry, so the new
        # profiles are accepted without CLI changes.
        args = build_parser().parse_args(["run", "--scale", "metro"])
        assert args.scale == "metro"


# ---------------------------------------------------------------------------
# Pool mechanics
# ---------------------------------------------------------------------------
class TestPoolMechanics:
    def _pool(self, slots=3):
        config = _partial_config(scenario="stable").with_overrides(
            client_pool="virtual", pool_slots=slots
        )
        handle = build_experiment(config)
        return handle, handle.pool

    def test_descriptors_cover_cohort_without_hydration(self):
        handle, pool = self._pool()
        assert len(pool.descriptors) == 6
        assert pool.hydrated_ids() == []
        assert handle.clients == [] and handle.partitions == []
        # Descriptor shard sizes agree with the lazy plan.
        for cid, descriptor in pool.descriptors.items():
            assert descriptor.num_samples == handle.partition_plan.size_of(cid)

    def test_hydrate_is_idempotent_and_lru_ordered(self):
        _, pool = self._pool(slots=3)
        first = pool.hydrate(0)
        assert pool.hydrate(0) is first
        pool.hydrate(1)
        pool.hydrate(2)
        pool.hydrate(0)  # refresh 0: LRU order becomes 1, 2, 0
        assert pool.hydrated_ids() == [1, 2, 0]
        pool.hydrate(3)  # arena full: evicts client 1 (least recently used)
        assert pool.hydrated_ids() == [2, 0, 3]
        assert pool.client(1) is None
        assert pool.evictions == 1 and pool.slots_built == 3

    def test_eviction_recycles_model_buffers(self):
        _, pool = self._pool(slots=2)
        a = pool.hydrate(0)
        pool.hydrate(1)
        model = a.model
        pool.hydrate(2)  # evicts 0, recycling its slot
        assert pool.client(2).model is model
        assert pool.slots_built == 2  # no new model was built

    def test_pinned_clients_are_never_evicted(self):
        _, pool = self._pool(slots=2)
        pool.ensure_active([0, 1])
        pool.hydrate(2)  # everything pinned: the arena grows instead
        assert set(pool.hydrated_ids()) == {0, 1, 2}
        assert pool.peak_hydrated == 3
        pool.ensure_active([2, 3])  # new pins release 0/1 for eviction
        assert 3 in pool.hydrated_ids()

    def test_dehydration_unregisters_the_client(self):
        handle, pool = self._pool(slots=2)
        pool.hydrate(0)
        assert handle.cluster.actor(0) is not None
        pool.dehydrate(0)
        assert handle.cluster.actor(0) is None
        assert pool.client(0) is None
        with pytest.raises(KeyError):
            handle.cluster.network.send("federator", 0, "train_request")

    def test_loader_position_round_trips_through_eviction(self):
        handle, pool = self._pool(slots=2)
        client = pool.hydrate(0)
        seen = [client.loader.next_batch()[1].copy() for _ in range(3)]
        pool.dehydrate(0)
        assert pool.descriptors[0].saved_state is not None
        resumed = pool.hydrate(0)
        assert resumed is not client  # a fresh instance...
        continuation = resumed.loader.next_batch()[1]
        # ... that continues the exact batch sequence: replaying 4 draws on
        # a control client yields the same labels in the same order.
        control_handle = build_experiment(handle.config)
        control = control_handle.pool.hydrate(0)
        control_seq = [control.loader.next_batch()[1] for _ in range(4)]
        for a, b in zip(seen + [continuation], control_seq):
            assert np.array_equal(a, b)

    def test_lifetime_counters_survive_eviction(self):
        _, pool = self._pool(slots=2)
        client = pool.hydrate(0)
        client.rounds_participated = 4
        client.total_batches_trained = 17
        pool.dehydrate(0)
        resumed = pool.hydrate(0)
        assert resumed.rounds_participated == 4
        assert resumed.total_batches_trained == 17

    def test_clients_expecting_an_offload_are_not_evictable(self):
        # An OFFLOAD_EXPECT promises an incoming model that leaves no
        # pending event or in-flight message on the recipient; eviction in
        # that window would lose the offload (or crash the sender on an
        # unregistered recipient).  While the weak source can still send,
        # the expectation must pin the client; once the source finishes
        # without offloading (or vanishes), the void promise must *not*
        # pin it forever.
        from repro.fl.messages import MessageKind
        from repro.simulation.network import Message

        _, pool = self._pool(slots=2)
        strong = pool.hydrate(0)
        weak = pool.hydrate(2)
        strong._round = weak._round = 1
        weak._pending_batch_event = object()  # still training toward the freeze point
        strong.handle_message(
            Message(
                sender="federator",
                recipient=0,
                kind=MessageKind.OFFLOAD_EXPECT,
                payload={"source": 2, "offload_batches": 3},
                round_number=1,
            )
        )
        assert not strong.is_quiescent(resolve_peer=pool.client)
        pool.hydrate(1)  # arena pressure: neither 0 nor 2 is evictable -> grow
        assert {0, 2} <= set(pool.hydrated_ids())
        assert pool.peak_hydrated == 3
        # The source finishes its own training without offloading: the
        # expectation is void and the strong client is evictable again.
        weak._pending_batch_event = None
        weak._own_training_done = True
        assert strong.is_quiescent(resolve_peer=pool.client)
        # Without peer resolution the check stays conservative.
        assert not strong.is_quiescent()

    def test_disconnects_while_dehydrated_are_counted(self):
        # Churn can take a dehydrated client offline: there is no actor to
        # notify, so the descriptor must record the disconnect for the
        # lifetime counter to match an always-hydrated client's.
        handle, pool = self._pool(slots=2)
        pool.hydrate(0)
        pool.dehydrate(0)
        handle.cluster.set_client_offline(0)
        handle.cluster.set_client_online(0)
        handle.cluster.set_client_offline(0)
        handle.cluster.set_client_online(0)
        assert pool.descriptors[0].pending_disconnects == 2
        assert pool.hydrate(0).times_disconnected == 2
        # Never-hydrated clients are covered too.
        handle.cluster.set_client_offline(1)
        handle.cluster.set_client_online(1)
        assert pool.hydrate(1).times_disconnected == 1
        # Hydrated clients count through their own on_disconnect, not the
        # descriptor (no double counting).
        handle.cluster.set_client_offline(1)
        assert pool.client(1).times_disconnected == 2
        assert pool.descriptors[1].pending_disconnects == 0


# ---------------------------------------------------------------------------
# End-to-end parity: virtual == eager, bit for bit
# ---------------------------------------------------------------------------
class TestEagerParity:
    @pytest.mark.parametrize("algorithm", ["fedavg", "tifl", "aergia", "fedbuff"])
    def test_virtual_run_matches_eager_bitwise(self, algorithm):
        base = _partial_config(algorithm=algorithm, scenario="churn")
        eager = run_experiment(base.with_overrides(client_pool="eager"))
        handle = build_experiment(base.with_overrides(client_pool="virtual", pool_slots=3))
        virtual = handle.run()
        assert eager.summary() == virtual.summary()
        assert len(eager.rounds) == len(virtual.rounds)
        for a, b in zip(eager.rounds, virtual.rounds):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert handle.pool.hydrations >= base.effective_clients_per_round

    def test_parity_holds_across_eviction_and_rehydration(self):
        # Seed/round count chosen so selection rotates through the cohort:
        # the 3-slot arena must evict and rehydrate mid-run, and the
        # resumed loaders keep the run bit-identical to eager.
        base = _partial_config(scenario="churn").with_overrides(seed=3, rounds=4)
        eager = run_experiment(base.with_overrides(client_pool="eager"))
        handle = build_experiment(base.with_overrides(client_pool="virtual", pool_slots=3))
        virtual = handle.run()
        assert eager.summary() == virtual.summary()
        assert handle.pool.evictions > 0, "config no longer exercises rehydration"

    def test_aergia_offload_pairs_survive_arena_pressure(self):
        # Straggler bursts maximise offload scheduling; the weak/strong
        # pairing spans the quiescent window between OFFLOAD_EXPECT and
        # OFFLOADED_MODEL delivery, which must not be broken by eviction.
        base = _partial_config(algorithm="aergia", scenario="straggler-burst").with_overrides(
            seed=3, rounds=4
        )
        eager = run_experiment(base.with_overrides(client_pool="eager"))
        virtual = run_experiment(base.with_overrides(client_pool="virtual", pool_slots=3))
        assert eager.summary() == virtual.summary()

    def test_deadline_stragglers_block_eviction_until_drained(self):
        # The deadline baseline drops stragglers that keep training past the
        # round; they are not quiescent and must survive arena pressure.
        base = _partial_config(algorithm="deadline", scenario="stable").with_overrides(
            deadline_seconds=0.4
        )
        eager = run_experiment(base.with_overrides(client_pool="eager"))
        virtual = run_experiment(base.with_overrides(client_pool="virtual", pool_slots=3))
        assert eager.summary() == virtual.summary()

    def test_empty_shard_clients_are_never_selected(self):
        # Extreme non-IID splits of huge cohorts can leave clients with
        # zero samples; descriptor-level selection must skip them (training
        # a data-less client is impossible).
        config = evaluation_config(
            "mnist",
            "fedavg",
            "noniid",
            SCALES["smoke"],
            seed=2,
            scenario="stable",
            dtype="float32",
            num_clients=200,
            clients_per_round=8,
            rounds=2,
            train_size=400,  # ~2 samples per client: empty shards guaranteed
        )
        handle = build_experiment(config)
        pool = handle.pool
        assert pool is not None
        empty = [cid for cid in range(200) if not pool.has_data(cid)]
        assert empty, "config no longer produces empty shards"
        result = handle.run()
        assert result.num_rounds == 2
        for record in result.rounds:
            assert not set(record.selected_clients) & set(empty)
        # The eager path must skip them identically (the two modes share a
        # cache/store key, so they must behave the same — historically the
        # eager run crashed on the empty loader).
        eager = run_experiment(config.with_overrides(client_pool="eager"))
        assert eager.summary() == result.summary()

    def test_pool_stays_bounded_across_many_rounds(self):
        config = evaluation_config(
            "mnist",
            "fedavg",
            "noniid",
            SCALES["smoke"],
            seed=9,
            scenario="churn",
            dtype="float32",
            num_clients=120,
            clients_per_round=6,
            rounds=5,
            train_size=480,
        )
        handle = build_experiment(config)
        handle.run()
        stats = handle.pool.describe()
        assert stats["peak_hydrated"] <= 2 * config.effective_clients_per_round
        assert stats["hydrations"] >= 5  # rounds actually hydrated clients
