"""Batched multi-client compute engine: bitwise parity and integration.

The contract under test (docs/architecture.md, "Batched client
execution"): running a round's lockstep-compatible clients as one
``(clients, params)`` kernel set produces **bitwise identical** weights,
losses and summaries to the per-client oracle path — across every
architecture, dtype, frozen-section mask and optimizer family — so
``batched_execution`` is a pure execution knob, excluded from
``run_key``/``config_hash`` exactly like ``client_pool``.

Three layers of pinning:

* kernel level: a full parity matrix over the architecture registry plus
  forced slow-probe fallbacks and max-pool tie/NaN torture inputs;
* round level: batched-on runs reproduce the per-client rounds (and the
  golden smoke summaries) byte-for-byte, through offload divergence,
  churn, the virtualized client pool and SIGKILL crash/resume;
* planner level: ragged shards, singleton groups and late activations
  fall back to the per-client path instead of batching unsafely.
"""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import numpy as np
import pytest

import repro.api as api
import repro.nn.batched as batched_mod
from crash_harness import read_rounds_bytes, run_and_crash
from repro.api import RunStore, run, run_key
from repro.data.loader import BatchLoader
from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.config import ResourceConfig
from repro.fl.runtime import build_experiment, uses_batched_execution
from repro.nn.architectures import ARCHITECTURES, build_model
from repro.nn.batched import (
    BatchedClientExecutor,
    BatchedModel,
    BatchedProximalSGD,
    BatchedSGD,
    phase_flops,
)
from repro.nn.dtype import using_dtype
from repro.nn.layers import MaxPool2D
from repro.nn.model import SplitCNN
from repro.nn.optim import SGD, ProximalSGD


def _round_dicts(result):
    return [dataclasses.asdict(record) for record in result.rounds]


# ---------------------------------------------------------------------------
# Kernel-level parity: batched == per-client, bitwise
# ---------------------------------------------------------------------------
def _run_parity_case(arch, dtype_name, frozen, opt_name, lanes=2, n=3, steps=2):
    """Train ``lanes`` clients per-client and as one cohort; compare bitwise."""
    spec = ARCHITECTURES[arch]
    rng = np.random.default_rng(42)
    with using_dtype(dtype_name):
        template = build_model(arch, rng=np.random.default_rng(0))
    dtype = template.dtype
    x = rng.standard_normal((lanes, n) + spec.input_shape).astype(dtype)
    y = rng.integers(0, spec.num_classes, size=(lanes, n))
    lane_weights = []
    for lane in range(lanes):
        with using_dtype(dtype_name):
            model = build_model(arch, rng=np.random.default_rng(100 + lane))
        lane_weights.append({s: model.get_flat_weights(s) for s in SplitCNN.SECTIONS})
    anchor = {s: lane_weights[0][s].copy() for s in SplitCNN.SECTIONS}

    def make_optimizer(batched_model=None):
        if opt_name == "sgd":
            if batched_model is None:
                return SGD(lr=0.05, momentum=0.9)
            return BatchedSGD(lr=0.05, momentum=0.9, backend=batched_model.backend)
        if batched_model is None:
            optimizer = ProximalSGD(lr=0.05, mu=0.01)
        else:
            optimizer = BatchedProximalSGD(lr=0.05, mu=0.01, backend=batched_model.backend)
        optimizer.set_anchor({s: anchor[s] for s in SplitCNN.SECTIONS})
        return optimizer

    # Per-client oracle.
    solo_weights, solo_losses = [], []
    for lane in range(lanes):
        with using_dtype(dtype_name):
            model = build_model(arch, rng=np.random.default_rng(0))
        for section in SplitCNN.SECTIONS:
            model.set_flat_weights(lane_weights[lane][section], section=section)
        if frozen == "features":
            model.freeze_features()
        elif frozen == "classifier":
            model.freeze_classifier()
        optimizer = make_optimizer()
        losses = []
        for _ in range(steps):
            loss, _ = model.train_batch(x[lane], y[lane], optimizer)
            losses.append(loss)
        solo_weights.append({s: model.get_flat_weights(s) for s in SplitCNN.SECTIONS})
        solo_losses.append(losses)

    # One lockstep cohort.
    cohort = BatchedModel(template, lanes)
    for lane in range(lanes):
        for section in SplitCNN.SECTIONS:
            cohort.load_lane(section, lane, lane_weights[lane][section])
    if frozen == "features":
        cohort.freeze_features()
    elif frozen == "classifier":
        cohort.freeze_classifier()
    optimizer = make_optimizer(cohort)
    wave_losses = [cohort.train_step(x, y, optimizer) for _ in range(steps)]

    label = f"{arch}/{dtype_name}/{frozen}/{opt_name}"
    for lane in range(lanes):
        for section in SplitCNN.SECTIONS:
            assert np.array_equal(
                cohort.lane_flat(section, lane), solo_weights[lane][section]
            ), f"{label}: lane {lane} section {section} diverged"
        for step in range(steps):
            batched_loss = float(wave_losses[step][lane])
            solo_loss = solo_losses[lane][step]
            assert batched_loss == solo_loss or (
                np.isnan(batched_loss) and np.isnan(solo_loss)
            ), f"{label}: lane {lane} loss diverged at step {step}"


#: mnist-cnn gets the full frozen-mask x optimizer grid; the other
#: architectures cover every row and column of it (small n keeps the
#: heavier networks fast and exercises the slow-probe GEMM paths).
_FULL_GRID = [
    (frozen, opt)
    for frozen in ("none", "features", "classifier")
    for opt in ("sgd", "prox")
]
_CROSS_GRID = [("none", "sgd"), ("none", "prox"), ("features", "sgd"), ("classifier", "prox")]


@pytest.mark.parametrize("dtype_name", ["float32", "float64"])
@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_batched_training_is_bitwise_identical_to_per_client(arch, dtype_name):
    grid = _FULL_GRID if arch == "mnist-cnn" else _CROSS_GRID
    for frozen, opt_name in grid:
        _run_parity_case(arch, dtype_name, frozen, opt_name)


@pytest.mark.parametrize("batch_n", [16, 32])
def test_batched_parity_holds_on_fast_gemm_paths(batch_n):
    """Large batches flip the probed GEMM orientations; parity must hold."""
    _run_parity_case("mnist-cnn", "float32", "none", "sgd", lanes=4, n=batch_n)
    _run_parity_case("mnist-cnn", "float64", "none", "prox", lanes=4, n=batch_n)


def test_batched_parity_survives_forced_slow_probes(monkeypatch):
    """The probe-rejected kernel layouts are the bitwise reference; force
    them everywhere and the cohort must still match the oracle."""
    monkeypatch.setattr(batched_mod, "_probe_fast_gemms", lambda *a: (False, "slow", False))
    monkeypatch.setattr(batched_mod, "_probe_gb_reduce", lambda *a: False)
    _run_parity_case("mnist-cnn", "float32", "none", "sgd", lanes=2, n=16)
    _run_parity_case("mnist-cnn", "float64", "none", "sgd", lanes=2, n=16)


def test_gemm_probe_modes_are_cached_and_well_formed():
    key_shape = (97, 25, 8)
    for dtype in (np.float32, np.float64):
        fwd_ok, gw_mode, dc_ok = batched_mod._probe_fast_gemms(*key_shape, dtype)
        assert isinstance(fwd_ok, bool) and isinstance(dc_ok, bool)
        assert gw_mode in {"csT", "gT", "slow"}
        cache_key = key_shape + (np.dtype(dtype).name,)
        assert cache_key in batched_mod._GEMM_PROBE_CACHE
        assert batched_mod._probe_fast_gemms(*key_shape, dtype) == (fwd_ok, gw_mode, dc_ok)
        assert isinstance(batched_mod._probe_gb_reduce(97, 8, dtype), bool)


@pytest.mark.parametrize("pool_size", [2, 3])
def test_batched_max_pool_matches_oracle_on_ties_and_nans(pool_size):
    """Tie-breaks and NaN windows are the order-pinned part of pooling: the
    2x2 tournament and the generic equality sweep must both reproduce the
    oracle's first-max (row-major) argmax bitwise."""
    from repro.nn.backend import get_array_backend

    lanes, channels, n = 3, 4, 5
    h = w = 6 * pool_size
    rng = np.random.default_rng(7)
    x = rng.standard_normal((lanes, channels, n, h, w)).astype(np.float32)
    # Saturate with exact ties, signed zeros and NaN windows.
    flat = x.reshape(-1)
    flat[::5] = 1.5
    flat[1::5] = 1.5
    flat[2::11] = -0.0
    flat[3::11] = 0.0
    flat[4::23] = np.nan

    layer = batched_mod._BatchedMaxPool2D(MaxPool2D(pool_size), get_array_backend())
    out = layer.forward(x)
    grad_out = rng.standard_normal(out.shape).astype(np.float32)
    grad_in = layer.backward(grad_out)

    oracle = MaxPool2D(pool_size)
    for lane in range(lanes):
        # Oracle layout is sample-major (N, C, H, W); lanes are channel-major.
        ref_out = oracle.forward(x[lane].transpose(1, 0, 2, 3))
        ref_grad = oracle.backward(grad_out[lane].transpose(1, 0, 2, 3))
        assert np.array_equal(
            out[lane].view(np.int32), ref_out.transpose(1, 0, 2, 3).view(np.int32)
        ), f"pool {pool_size}x{pool_size} lane {lane}: forward bits diverged"
        assert np.array_equal(grad_in[lane], ref_grad.transpose(1, 0, 2, 3)), (
            f"pool {pool_size}x{pool_size} lane {lane}: scatter diverged"
        )


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_analytic_phase_flops_match_executed_trace(arch):
    """Lanes never run the profiled per-layer path, so their batch cost
    comes from :func:`phase_flops`; it must equal the real trace."""
    spec = ARCHITECTURES[arch]
    with using_dtype("float32"):
        model = build_model(arch, rng=np.random.default_rng(0))
    batch_n = 4
    rng = np.random.default_rng(1)
    x = rng.standard_normal((batch_n,) + spec.input_shape).astype(model.dtype)
    y = rng.integers(0, spec.num_classes, size=batch_n)
    _, trace = model.train_batch(x, y, SGD(lr=0.05))
    analytic = phase_flops(model, batch_n, spec.input_shape)
    assert analytic.flops == trace.flops


# ---------------------------------------------------------------------------
# Round-level integration: the knob changes nothing observable
# ---------------------------------------------------------------------------
def _smoke_config(algorithm, partition, scenario, seed=42, **overrides):
    return evaluation_config(
        "mnist",
        algorithm,
        partition,
        SCALES["smoke"],
        seed=seed,
        scenario=scenario,
        dtype="float32",
        **overrides,
    )


def _run_with_stats(config):
    handle = build_experiment(config)
    result = handle.run()
    executor = handle.cluster.batched_executor
    return result, (dict(executor.stats) if executor is not None else None), handle


def _assert_bitwise_equal_runs(config_on, config_off):
    result_on, stats, _ = _run_with_stats(config_on)
    result_off, stats_off, _ = _run_with_stats(config_off)
    assert stats_off is None, "batched_execution='off' must not install an executor"
    assert _round_dicts(result_on) == _round_dicts(result_off)
    assert json.dumps(result_on.summary(), sort_keys=True) == json.dumps(
        result_off.summary(), sort_keys=True
    )
    return result_on, stats


@pytest.mark.parametrize("algorithm", ["fedavg", "aergia"])
def test_golden_smoke_reproduces_with_batching_forced_on(algorithm):
    from test_golden_baselines import GOLDEN_SMOKE_SUMMARIES, _assert_matches

    config = _smoke_config(algorithm, "noniid", "stable", batched_execution="on")
    result, stats, _ = _run_with_stats(config)
    _assert_matches(result.summary(), GOLDEN_SMOKE_SUMMARIES[algorithm], algorithm)
    # The noniid smoke shards are ragged (100 samples, batch 16), so every
    # client must fall back per-client rather than batch unequal shapes.
    assert stats["fallbacks"] > 0 and stats["waves"] == 0


def test_batched_rounds_are_bitwise_identical_with_live_cohorts():
    kwargs = dict(train_size=384)  # 96 per client: divisible by the batch size
    result, stats = _assert_bitwise_equal_runs(
        _smoke_config("fedavg", "iid", "stable", batched_execution="on", **kwargs),
        _smoke_config("fedavg", "iid", "stable", batched_execution="off", **kwargs),
    )
    assert stats["waves"] > 0 and stats["cohorts_started"] > 0
    assert stats["fallbacks"] == 0
    assert stats["fast_materializations"] == stats["lanes"]


def test_offloading_clients_leave_their_lane_bitwise():
    """Aergia offloads freeze the weak client's features mid-round — the
    lane must materialize (replaying if the cohort ran ahead) with exactly
    the per-client state."""
    kwargs = dict(
        seed=13,
        train_size=320,
        resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.1, 0.8, 0.9, 1.0)),
    )
    result, stats = _assert_bitwise_equal_runs(
        _smoke_config("aergia", "iid", "stable", batched_execution="on", **kwargs),
        _smoke_config("aergia", "iid", "stable", batched_execution="off", **kwargs),
    )
    assert result.summary()["total_offloads"] > 0
    assert stats["waves"] > 0
    assert stats["replays"] > 0, "the straggler's divergence must replay through the oracle"


def test_churn_scenario_is_bitwise_identical_with_batching():
    kwargs = dict(seed=13, train_size=384)
    _, stats = _assert_bitwise_equal_runs(
        _smoke_config("fedavg", "iid", "churn", batched_execution="on", **kwargs),
        _smoke_config("fedavg", "iid", "churn", batched_execution="off", **kwargs),
    )
    assert stats["waves"] > 0


def test_virtual_pool_runs_bitwise_identical_with_batching():
    """Dehydration/rehydration interleaves with lane lifecycles: a pooled
    churn run must still match the eager per-client run bitwise."""
    kwargs = dict(seed=13, train_size=384, client_pool="virtual")
    config_on = _smoke_config("fedavg", "iid", "churn", batched_execution="on", **kwargs)
    result_on, stats, handle = _run_with_stats(config_on)
    assert handle.pool is not None
    config_off = _smoke_config("fedavg", "iid", "churn", batched_execution="off", **kwargs)
    result_off, _, _ = _run_with_stats(config_off)
    assert _round_dicts(result_on) == _round_dicts(result_off)
    assert stats["waves"] > 0


def test_virtual_pool_hydrates_models_at_config_dtype():
    """Slot models are built lazily at hydration time; the factory must pin
    the experiment's dtype even when the ambient default differs, or
    every client fails cohort eligibility (and eager/virtual runs would
    silently train at different precisions)."""
    config = _smoke_config(
        "fedavg", "iid", "stable", train_size=384, client_pool="virtual"
    )
    handle = build_experiment(config)
    with using_dtype("float64"):
        actor = handle.pool.hydrate(0)
    assert actor.model.dtype == np.dtype("float32")
    assert actor.loader.x.dtype == np.dtype("float32")


def test_sigkill_crash_resumes_bitwise_identical_across_engines(tmp_path):
    """A batched run crash-resumed must converge to the same bytes as an
    uninterrupted *per-client* run: checkpoints carry no engine state."""
    base = dict(checkpoint_interval=1, rounds=4, train_size=384)
    config_off = (
        api.experiment("fedavg")
        .dataset("mnist")
        .partition("iid")
        .scale("smoke")
        .scenario("stable")
        .seed(7)
        .override(batched_execution="off", **base)
        .build()
    )
    config_on = config_off.with_overrides(batched_execution="on")
    golden_store = RunStore(tmp_path / "golden")
    golden = run(config_off, store=golden_store).result()

    store_dir = tmp_path / "crashed"
    run_and_crash(config_on, store_dir, crash_round=2)
    store = RunStore(store_dir)
    resumed = run(config_on, store=store, resume=True)
    result = resumed.result()
    assert resumed.resumed_from_round is not None, "run did not resume"
    assert _round_dicts(result) == _round_dicts(golden)
    key = run_key(config_on)
    assert key == run_key(config_off)
    assert read_rounds_bytes(store.root, key) == read_rounds_bytes(golden_store.root, key)


# ---------------------------------------------------------------------------
# Planner-level: eligibility, fallbacks, config plumbing
# ---------------------------------------------------------------------------
def _fake_actor(n_samples, batch_size=16, optimizer=None, arch="mnist-cnn"):
    with using_dtype("float32"):
        model = build_model(arch, rng=np.random.default_rng(0))
    rng = np.random.default_rng(3)
    x = rng.standard_normal((n_samples, 1, 28, 28)).astype(model.dtype)
    y = rng.integers(0, 10, size=n_samples)
    loader = BatchLoader(x, y, batch_size=batch_size, shuffle=False)
    return SimpleNamespace(
        model=model, loader=loader, optimizer=optimizer or SGD(lr=0.05, momentum=0.9)
    )


def test_planner_rejects_ragged_and_mismatched_clients():
    executor = BatchedClientExecutor()
    eligible = executor._eligibility_key(_fake_actor(96))
    assert eligible is not None
    # Ragged epoch tails would change the GEMM shapes mid-epoch.
    assert executor._eligibility_key(_fake_actor(100)) is None
    # Unknown optimizer families cannot be mirrored lane-wise.
    class OddOptimizer(SGD):
        pass

    assert executor._eligibility_key(_fake_actor(96, optimizer=OddOptimizer(lr=0.05))) is None
    # Differing hyper-parameters land in different cohorts.
    other = executor._eligibility_key(_fake_actor(96, optimizer=SGD(lr=0.01)))
    assert other is not None and other != eligible
    # A dataset that fits in one batch is lockstep-safe (single GEMM shape).
    assert executor._eligibility_key(_fake_actor(10)) is not None


def test_planner_falls_back_for_singletons_and_late_activations():
    executor = BatchedClientExecutor()
    with using_dtype("float32"):
        global_model = build_model("mnist-cnn", rng=np.random.default_rng(0))
    a, b, c = _fake_actor(96), _fake_actor(96), _fake_actor(48, batch_size=8)
    for index, actor in enumerate((a, b, c)):
        actor.client_id = index
    executor.plan_round(1, [(0, a, 2), (1, b, 2), (2, c, 2)], global_model)
    # a and b batch together; c's batch shape puts it in a cohort of one,
    # which has nothing to amortise.
    assert executor.stats["cohorts_planned"] == 1
    assert executor.stats["fallbacks"] == 1
    assert executor.activate(c, 1) is None
    # Wrong round / unknown client / double activation all decline.
    assert executor.activate(a, 2) is None
    lane = executor.activate(a, 1)
    assert lane is not None
    assert executor.activate(a, 1) is None
    # Once the first wave ran, the cohort's shapes are fixed: b is too late.
    lane.consume_loss()
    assert executor.activate(b, 1) is None

    executor.finish_round(1)
    lane.materialize(SimpleNamespace(model=a.model, optimizer=a.optimizer, loader=a.loader), 1)
    assert executor.stats["waves"] >= 1


def test_batched_execution_is_excluded_from_run_key_and_cache():
    config = _smoke_config("fedavg", "iid", "stable")
    for mode in ("on", "off"):
        assert run_key(config) == run_key(config.with_overrides(batched_execution=mode))
    from repro.experiments.parallel import canonical_config

    assert "batched_execution" not in canonical_config(config.with_overrides(batched_execution="on"))
    with pytest.raises(ValueError):
        config.with_overrides(batched_execution="always")


def test_auto_mode_batches_large_rounds_only():
    config = _smoke_config("fedavg", "iid", "stable")  # 4 clients/round
    assert not uses_batched_execution(config)
    assert uses_batched_execution(config.with_overrides(batched_execution="on"))
    assert not uses_batched_execution(config.with_overrides(batched_execution="off"))
    big = config.with_overrides(
        num_clients=batched_mod.BATCHED_AUTO_MIN_CLIENTS,
        clients_per_round=batched_mod.BATCHED_AUTO_MIN_CLIENTS,
    )
    assert uses_batched_execution(big)


def test_trainable_params_cache_aliases_and_invalidates():
    """The legacy dict-view adapter is cached: repeated calls return the
    same alias of the flat buffers (no copies), and freeze/unfreeze or a
    flat-buffer rebuild invalidates it."""
    with using_dtype("float32"):
        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
    params, grads = model._trainable_params()
    again_params, again_grads = model._trainable_params()
    assert params is again_params and grads is again_grads  # cached, not rebuilt
    key = next(iter(params))
    section = (
        SplitCNN.FEATURE_PREFIX
        if key.startswith(SplitCNN.FEATURE_PREFIX)
        else SplitCNN.CLASSIFIER_PREFIX
    )
    flat = model.flat_parameters(section)
    # Mutating through the flat vector must be visible through the cached
    # dict view: the views alias the same buffer.
    before = params[key].copy()
    flat += 1.0
    assert not np.array_equal(params[key], before), "cached views must alias, not copy"

    full_count = len(params)
    model.freeze_features()
    frozen_params, _ = model._trainable_params()
    assert frozen_params is not params
    assert 0 < len(frozen_params) < full_count
    assert all(not name.startswith(SplitCNN.FEATURE_PREFIX) for name in frozen_params)
    model.unfreeze_features()
    restored, _ = model._trainable_params()
    assert len(restored) == full_count
