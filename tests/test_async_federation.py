"""Tests for the asynchronous federators (FedAsync / FedBuff).

Covers the staleness-weighted mixing math, the dispatch loop (concurrency,
re-dispatch on arrival, rejoin handling), FedBuff's buffer-flush semantics,
round-record bookkeeping, and the determinism guarantees: identical seeds
produce identical summaries, serially and across the process-pool runner,
with and without churn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fedasync import FedAsyncFederator
from repro.baselines.fedbuff import FedBuffFederator
from repro.experiments.parallel import run_configs_parallel
from repro.experiments.runner import run_configs
from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import available_algorithms, build_experiment, federator_class, run_experiment


def _async_config(algorithm: str, scenario: str = None, **overrides):
    return evaluation_config(
        "mnist", algorithm, "noniid", SCALES["smoke"], seed=42, scenario=scenario, **overrides
    )


class TestRegistration:
    def test_async_algorithms_are_registered(self):
        names = available_algorithms()
        assert "fedasync" in names
        assert "fedbuff" in names
        assert federator_class("fedasync") is FedAsyncFederator
        assert federator_class("fedbuff") is FedBuffFederator


class TestStalenessMath:
    def test_mixing_weight_decays_polynomially(self):
        handle = build_experiment(_async_config("fedasync"))
        federator = handle.federator
        alpha = handle.config.fedasync_alpha
        assert federator.mixing_weight(0) == pytest.approx(alpha)
        assert federator.mixing_weight(3) == pytest.approx(alpha * 4 ** -0.5)
        # Monotonically decreasing in staleness.
        weights = [federator.mixing_weight(s) for s in range(6)]
        assert weights == sorted(weights, reverse=True)

    def test_zero_power_ignores_staleness(self):
        handle = build_experiment(
            _async_config("fedasync", fedasync_staleness_power=0.0)
        )
        assert handle.federator.mixing_weight(0) == handle.federator.mixing_weight(99)

    def test_fedbuff_discount_matches_family(self):
        handle = build_experiment(_async_config("fedbuff"))
        federator = handle.federator
        power = handle.config.fedasync_staleness_power
        assert federator.staleness_discount(0) == pytest.approx(1.0)
        assert federator.staleness_discount(8) == pytest.approx(9.0 ** -power)


class TestFedAsyncRun:
    def test_emits_the_configured_number_of_rounds(self):
        config = _async_config("fedasync")
        result = run_experiment(config)
        assert result.num_rounds == config.rounds
        assert result.final_accuracy > 0

    def test_update_budget_matches_synchronous_work(self):
        config = _async_config("fedasync")
        handle = build_experiment(config)
        handle.run()
        federator = handle.federator
        assert federator._updates_applied == config.rounds * config.effective_clients_per_round
        assert federator.finished
        # Every applied update advanced the model version exactly once.
        assert federator.model_version == federator._updates_applied
        assert len(federator.staleness_history) == federator._updates_applied

    def test_staleness_actually_occurs(self):
        # With heterogeneous speeds, fast clients cycle while slow ones
        # compute, so some applied updates must be stale.
        handle = build_experiment(_async_config("fedasync"))
        handle.run()
        assert max(handle.federator.staleness_history) > 0

    def test_rounds_are_contiguous_windows(self):
        result = run_experiment(_async_config("fedasync"))
        for earlier, later in zip(result.rounds, result.rounds[1:]):
            assert later.start_time == pytest.approx(earlier.end_time)
            assert later.round_number == earlier.round_number + 1


class TestFedBuffRun:
    def test_buffer_flush_count(self):
        config = _async_config("fedbuff")
        handle = build_experiment(config)
        handle.run()
        federator = handle.federator
        expected_updates = config.rounds * federator.updates_per_record
        assert federator._updates_applied == expected_updates
        assert federator.aggregations == expected_updates // federator.buffer_size
        assert federator.model_version == federator.aggregations

    def test_explicit_buffer_size_is_honoured(self):
        config = _async_config("fedbuff", fedbuff_buffer_size=2)
        handle = build_experiment(config)
        assert handle.federator.buffer_size == 2
        handle.run()
        assert handle.federator.aggregations == handle.federator._updates_applied // 2

    def test_emits_the_configured_number_of_rounds(self):
        config = _async_config("fedbuff")
        result = run_experiment(config)
        assert result.num_rounds == config.rounds
        assert result.final_accuracy > 0

    def test_unflushed_tail_stays_buffered(self):
        # Budget not divisible by the buffer: the tail never aggregates.
        config = _async_config("fedbuff", fedbuff_buffer_size=3)
        handle = build_experiment(config)
        handle.run()
        assert len(handle.federator._buffer) == handle.federator._updates_applied % 3


class TestAsyncDeterminism:
    @pytest.mark.parametrize("algorithm", ["fedasync", "fedbuff"])
    def test_identical_seeds_identical_summaries(self, algorithm):
        config = _async_config(algorithm, scenario="churn")
        assert run_experiment(config).summary() == run_experiment(config).summary()

    def test_serial_and_parallel_agree_under_churn(self):
        configs = {
            algo: _async_config(algo, scenario="churn")
            for algo in ("fedasync", "fedbuff")
        }
        serial = run_configs(configs)
        parallel = run_configs_parallel(configs, workers=2)
        for label in configs:
            assert serial.results[label].summary() == parallel.results[label].summary()

    def test_different_seeds_differ(self):
        a = run_experiment(_async_config("fedasync"))
        b = run_experiment(
            evaluation_config("mnist", "fedasync", "noniid", SCALES["smoke"], seed=43)
        )
        assert a.summary() != b.summary()


class TestAsyncUnderChurn:
    @pytest.mark.parametrize("algorithm", ["fedasync", "fedbuff"])
    def test_churn_run_completes(self, algorithm):
        config = _async_config(algorithm, scenario="churn")
        result = run_experiment(config)
        assert result.num_rounds == config.rounds

    def test_dropouts_are_recorded(self):
        config = _async_config("fedasync", scenario="mega-churn")
        result = run_experiment(config)
        assert result.num_rounds == config.rounds
        # mega-churn at smoke scale reliably kills at least one task.
        assert result.total_dropped() > 0

    def test_no_in_flight_leak_after_run(self):
        handle = build_experiment(_async_config("fedbuff", scenario="churn"))
        handle.run()
        assert handle.cluster.network.in_flight_count() == 0
        assert handle.federator._in_flight == {}


class TestAsyncModelMath:
    def test_fedasync_first_update_is_exact_mix(self):
        """After the very first update, the global model must be exactly
        (1 - alpha) * init + alpha * client (staleness 0)."""
        config = _async_config("fedasync", async_concurrency=1)
        handle = build_experiment(config)
        federator = handle.federator
        init = federator.global_flat.copy()
        alpha = config.fedasync_alpha

        seen = {}
        original = federator.apply_update

        def capture(result, dispatch):
            if "first" not in seen:
                seen["first"] = result.flat_weights.copy()
                original(result, dispatch)
                seen["after"] = federator.global_flat.copy()
            else:
                original(result, dispatch)

        federator.apply_update = capture
        handle.run()
        expected = (1.0 - alpha) * init + alpha * seen["first"]
        np.testing.assert_allclose(seen["after"], expected, rtol=1e-6)

    def test_fedbuff_flush_applies_mean_delta(self):
        """With buffer size 1 and power 0, each flush adds the client's
        delta verbatim."""
        config = _async_config(
            "fedbuff",
            fedbuff_buffer_size=1,
            fedasync_staleness_power=0.0,
            async_concurrency=1,
        )
        handle = build_experiment(config)
        federator = handle.federator
        snapshots = {}
        original = federator.apply_update

        def capture(result, dispatch):
            before = federator.global_flat.copy()
            original(result, dispatch)
            if "checked" not in snapshots:
                snapshots["checked"] = True
                delta = result.flat_weights - dispatch.snapshot
                np.testing.assert_allclose(
                    federator.global_flat, before + delta, rtol=1e-6
                )

        federator.apply_update = capture
        handle.run()
        assert snapshots.get("checked")
