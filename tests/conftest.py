"""Shared fixtures for the test suite.

Tests always run at the tiny "smoke" scale so the whole suite stays fast;
the benchmark harness uses the larger "bench"/"full" scales.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make the repository root importable so the example scripts (which are not
# part of the installed package) can be exercised by the test suite.
REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.data.datasets import make_dataset
from repro.fl.config import ExperimentConfig, ResourceConfig
from repro.nn.architectures import build_model


@pytest.fixture(autouse=True)
def _smoke_scale(monkeypatch):
    """Force the smoke scale for any experiment-harness code under test."""
    monkeypatch.setenv("REPRO_SCALE", "smoke")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset():
    """A tiny but learnable 3-class image dataset (8x8 grayscale)."""
    return make_dataset(
        "tiny", (1, 8, 8), num_classes=3, train_size=90, test_size=30, noise=0.2, seed=5
    )


@pytest.fixture
def small_mnist():
    """A small MNIST-shaped dataset for model/integration tests."""
    return make_dataset(
        "mnist", (1, 28, 28), num_classes=10, train_size=200, test_size=60, noise=0.3, seed=3
    )


@pytest.fixture
def mnist_model(rng):
    return build_model("mnist-cnn", rng=rng)


@pytest.fixture
def smoke_config() -> ExperimentConfig:
    """A minimal end-to-end experiment configuration."""
    return ExperimentConfig(
        dataset="mnist",
        architecture="mnist-cnn",
        algorithm="fedavg",
        num_clients=4,
        rounds=2,
        local_updates=5,
        profile_batches=2,
        train_size=320,
        test_size=80,
        batch_size=16,
        resources=ResourceConfig(scheme="uniform", low=0.1, high=1.0),
        seed=7,
    )
