"""Unit tests for the numpy layers: shapes, gradients and FLOP accounting.

Gradient checks run in **both** supported compute dtypes.  ``float64``
checks use the tight tolerances of the original engine; ``float32`` checks
use a larger perturbation and looser tolerances because the function value
itself carries ~1e-7 relative rounding noise.  The scalar objective is
always accumulated in ``float64`` so the central differences measure the
layer's arithmetic, not the summation's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, ResidualBlock

#: Per-dtype (eps, atol, rtol) for central-difference checks.
GRADCHECK_SETTINGS = {
    np.float64: (1e-5, 1e-5, 1e-3),
    np.float32: (1e-2, 5e-3, 5e-2),
}

DTYPES = sorted(GRADCHECK_SETTINGS, key=lambda d: np.dtype(d).name)


def numerical_gradient(f, x, eps=1e-5):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros(x.shape, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = f()
        x[idx] = original - eps
        f_minus = f()
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_input_gradient(layer, x, dtype=np.float64, tol=None):
    """Verify the layer's input gradient against numerical differentiation."""
    eps, atol, rtol = GRADCHECK_SETTINGS[dtype]
    if tol is not None:
        atol = tol
    x = np.ascontiguousarray(x, dtype=dtype)
    out = layer.forward(x, training=True)
    upstream = np.random.default_rng(0).normal(size=out.shape).astype(dtype)

    def scalar():
        return float(np.sum(layer.forward(x, training=False) * upstream, dtype=np.float64))

    analytic = layer.backward(upstream)
    numeric = numerical_gradient(scalar, x, eps=eps)
    assert np.allclose(analytic, numeric, atol=atol, rtol=rtol)


def check_param_gradient(layer, x, param_key, dtype=np.float64, tol=None):
    """Verify a parameter gradient against numerical differentiation."""
    eps, atol, rtol = GRADCHECK_SETTINGS[dtype]
    if tol is not None:
        atol = tol
    x = np.ascontiguousarray(x, dtype=dtype)
    out = layer.forward(x, training=True)
    upstream = np.random.default_rng(1).normal(size=out.shape).astype(dtype)
    layer.zero_grad()
    layer.forward(x, training=True)
    layer.backward(upstream)
    analytic = layer.grads[param_key].copy()

    param = layer.params[param_key]

    def scalar():
        return float(np.sum(layer.forward(x, training=False) * upstream, dtype=np.float64))

    numeric = numerical_gradient(scalar, param, eps=eps)
    assert np.allclose(analytic, numeric, atol=atol, rtol=rtol)


# ---------------------------------------------------------------------------
# Gradient checks for every layer type, in float32 and float64
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
class TestGradientChecksBothDtypes:
    def test_dense_input_weight_bias(self, rng, dtype):
        layer = Dense(5, 3, rng=rng, dtype=dtype)
        x = rng.normal(size=(2, 5))
        check_input_gradient(layer, x, dtype=dtype)
        check_param_gradient(layer, x, "W", dtype=dtype)
        check_param_gradient(layer, x, "b", dtype=dtype)

    def test_conv2d_input_weight_bias(self, rng, dtype):
        layer = Conv2D(2, 3, 3, padding=1, rng=rng, dtype=dtype)
        x = rng.normal(size=(2, 2, 5, 5))
        check_input_gradient(layer, x, dtype=dtype)
        check_param_gradient(layer, x, "W", dtype=dtype)
        check_param_gradient(layer, x, "b", dtype=dtype)

    def test_conv2d_strided(self, rng, dtype):
        layer = Conv2D(1, 2, 3, stride=2, rng=rng, dtype=dtype)
        x = rng.normal(size=(2, 1, 7, 7))
        check_input_gradient(layer, x, dtype=dtype)
        check_param_gradient(layer, x, "W", dtype=dtype)

    def test_maxpool_input(self, rng, dtype):
        layer = MaxPool2D(2)
        # Well-separated values so the max is stable under the perturbation.
        x = rng.permutation(np.arange(32, dtype=np.float64)).reshape(1, 2, 4, 4)
        check_input_gradient(layer, x, dtype=dtype)

    def test_relu_input(self, rng, dtype):
        layer = ReLU()
        # Keep values away from the kink at zero.
        x = rng.normal(size=(3, 6))
        x = np.where(np.abs(x) < 0.2, x + 0.5, x)
        check_input_gradient(layer, x, dtype=dtype)

    def test_flatten_input(self, rng, dtype):
        layer = Flatten()
        check_input_gradient(layer, rng.normal(size=(2, 2, 3, 3)), dtype=dtype)

    def test_residual_block_input_and_params(self, rng, dtype):
        block = ResidualBlock(2, 3, rng=rng, dtype=dtype)  # projected skip
        x = rng.normal(size=(1, 2, 4, 4))
        check_input_gradient(block, x, dtype=dtype)
        check_param_gradient(block, x, "conv1.W", dtype=dtype)
        check_param_gradient(block, x, "conv2.b", dtype=dtype)
        check_param_gradient(block, x, "proj.W", dtype=dtype)

    def test_residual_block_identity_skip(self, rng, dtype):
        block = ResidualBlock(2, 2, rng=rng, dtype=dtype)
        x = rng.normal(size=(1, 2, 4, 4))
        check_input_gradient(block, x, dtype=dtype)
        check_param_gradient(block, x, "conv2.W", dtype=dtype)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(6, 4, rng=rng)
        out = layer.forward(rng.normal(size=(3, 6)))
        assert out.shape == (3, 4)

    def test_output_shape_metadata(self, rng):
        layer = Dense(6, 4, rng=rng)
        assert layer.output_shape((6,)) == (4,)

    def test_input_gradient(self, rng):
        layer = Dense(5, 3, rng=rng, dtype=np.float64)
        check_input_gradient(layer, rng.normal(size=(2, 5)))

    def test_weight_gradient(self, rng):
        layer = Dense(5, 3, rng=rng, dtype=np.float64)
        check_param_gradient(layer, rng.normal(size=(2, 5)), "W")

    def test_bias_gradient(self, rng):
        layer = Dense(5, 3, rng=rng, dtype=np.float64)
        check_param_gradient(layer, rng.normal(size=(2, 5)), "b")

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(5, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(2, 3)))

    def test_flops_accounting(self, rng):
        layer = Dense(5, 3, rng=rng)
        layer.forward(rng.normal(size=(4, 5)), training=True)
        assert layer.last_forward_flops == 2 * 4 * 5 * 3
        layer.backward(rng.normal(size=(4, 3)))
        assert layer.last_backward_flops == 4 * 4 * 5 * 3

    def test_num_parameters(self, rng):
        layer = Dense(5, 3, rng=rng)
        assert layer.num_parameters() == 5 * 3 + 3


class TestConv2D:
    def test_forward_shape_with_padding(self, rng):
        layer = Conv2D(2, 4, 3, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 2, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, rng=rng)
        out = layer.forward(rng.normal(size=(1, 1, 9, 9)))
        assert out.shape == (1, 2, 4, 4)

    def test_output_shape_metadata(self, rng):
        layer = Conv2D(2, 4, 3, padding=1, rng=rng)
        assert layer.output_shape((2, 8, 8)) == (4, 8, 8)

    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, 3, padding=1, rng=rng, dtype=np.float64)
        check_input_gradient(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_weight_gradient(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng, dtype=np.float64)
        check_param_gradient(layer, rng.normal(size=(2, 1, 5, 5)), "W")

    def test_bias_gradient(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng, dtype=np.float64)
        check_param_gradient(layer, rng.normal(size=(2, 1, 5, 5)), "b")

    def test_matches_manual_convolution(self, rng):
        layer = Conv2D(1, 1, 2, rng=rng, dtype=np.float64)
        x = rng.normal(size=(1, 1, 3, 3))
        out = layer.forward(x)
        w = layer.params["W"][0, 0]
        b = layer.params["b"][0]
        expected = np.array(
            [
                [np.sum(x[0, 0, i : i + 2, j : j + 2] * w) + b for j in range(2)]
                for i in range(2)
            ]
        )
        assert np.allclose(out[0, 0], expected)

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2D(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(1, 1, 3, 3)))

    def test_eval_forward_does_not_clobber_training_cache(self, rng):
        """Interleaved inference must not corrupt the cached activations."""
        layer = Conv2D(1, 2, 3, padding=1, rng=rng, dtype=np.float64)
        x = rng.normal(size=(2, 1, 4, 4))
        upstream = rng.normal(size=(2, 2, 4, 4))
        layer.forward(x, training=True)
        layer.zero_grad()
        layer.forward(x, training=True)
        layer.backward(upstream)
        reference = {key: grad.copy() for key, grad in layer.grads.items()}
        layer.zero_grad()
        layer.forward(x, training=True)
        layer.forward(rng.normal(size=(2, 1, 4, 4)), training=False)  # eval in between
        layer.backward(upstream)
        for key, grad in layer.grads.items():
            assert np.array_equal(grad, reference[key])

    def test_scratch_reuse_across_same_shape_batches(self, rng):
        """Two same-shape batches must reuse the im2col scratch buffer."""
        layer = Conv2D(2, 3, 3, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
        layer.forward(x, training=True)
        first = layer._cols_train
        layer.forward(x + 1.0, training=True)
        assert layer._cols_train is first

    def test_flops_positive(self, rng):
        layer = Conv2D(2, 3, 3, padding=1, rng=rng)
        layer.forward(rng.normal(size=(2, 2, 6, 6)), training=True)
        assert layer.last_forward_flops > 0
        layer.backward(rng.normal(size=(2, 3, 6, 6)))
        assert layer.last_backward_flops > layer.last_forward_flops


class TestMaxPool2D:
    def test_forward_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_training_and_eval_forward_agree(self, rng):
        layer = MaxPool2D(2)
        x = rng.normal(size=(2, 3, 8, 8))
        assert np.array_equal(layer.forward(x, training=True), layer.forward(x, training=False))

    def test_rejects_non_divisible_input(self):
        layer = MaxPool2D(2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 5, 5)))

    def test_output_shape_metadata(self):
        layer = MaxPool2D(2)
        assert layer.output_shape((3, 8, 8)) == (3, 4, 4)
        with pytest.raises(ValueError):
            layer.output_shape((3, 7, 7))

    def test_input_gradient(self, rng):
        layer = MaxPool2D(2)
        # Use well-separated values so the max is stable under perturbation.
        x = rng.permutation(np.arange(32, dtype=float)).reshape(1, 2, 4, 4)
        check_input_gradient(layer, x, tol=1e-4)

    def test_gradient_routed_to_single_max(self):
        layer = MaxPool2D(2)
        x = np.zeros((1, 1, 2, 2))  # all equal -> tie
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 1, 1)))
        # Only one element of the window receives the gradient despite the tie.
        assert grad.sum() == pytest.approx(1.0)
        assert (grad > 0).sum() == 1

    def test_tie_break_matches_first_window_position(self):
        """Ties resolve to the first max in row-major window order."""
        layer = MaxPool2D(2)
        x = np.zeros((1, 1, 4, 4))
        x[0, 0, 2:, 2:] = 7.0  # bottom-right window is all ties at 7
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        # The tied window routes to its top-left element (first in row-major).
        assert grad[0, 0, 2, 2] == 1.0
        assert grad[0, 0, 2:, 2:].sum() == 1.0


class TestReLUFlatten:
    def test_relu_forward_and_gradient(self, rng):
        layer = ReLU()
        x = rng.normal(size=(3, 4))
        out = layer.forward(x, training=True)
        assert np.all(out >= 0)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad, (x > 0).astype(float))

    def test_relu_mask_buffer_reused(self, rng):
        layer = ReLU()
        x = rng.normal(size=(3, 4))
        layer.forward(x, training=True)
        first = layer._cache_mask
        layer.forward(-x, training=True)
        assert layer._cache_mask is first
        assert np.array_equal(layer._cache_mask, -x > 0)

    def test_relu_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((2, 2)))

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        assert back.shape == x.shape
        assert np.allclose(back, x)

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((3, 4, 4)) == (48,)


class TestZeroGrad:
    def test_zero_grad_fills_in_place(self, rng):
        """zero_grad must reset values without reallocating the buffers."""
        layer = Dense(4, 2, rng=rng)
        x = rng.normal(size=(3, 4)).astype(layer.params["W"].dtype)
        layer.forward(x, training=True)
        layer.backward(np.ones((3, 2), dtype=layer.params["W"].dtype))
        buffers = {key: grad for key, grad in layer.grads.items()}
        assert any(np.abs(g).sum() > 0 for g in buffers.values())
        layer.zero_grad()
        for key, grad in layer.grads.items():
            assert grad is buffers[key]
            assert not grad.any()


class TestResidualBlock:
    def test_forward_shape_identity_skip(self, rng):
        block = ResidualBlock(3, 3, rng=rng)
        out = block.forward(rng.normal(size=(2, 3, 6, 6)))
        assert out.shape == (2, 3, 6, 6)
        assert block.proj is None

    def test_forward_shape_projection_skip(self, rng):
        block = ResidualBlock(2, 5, rng=rng)
        out = block.forward(rng.normal(size=(2, 2, 6, 6)))
        assert out.shape == (2, 5, 6, 6)
        assert block.proj is not None

    def test_param_namespacing(self, rng):
        block = ResidualBlock(2, 4, rng=rng)
        keys = set(block.params)
        assert {"conv1.W", "conv1.b", "conv2.W", "conv2.b", "proj.W", "proj.b"} == keys

    def test_input_gradient(self, rng):
        block = ResidualBlock(2, 2, rng=rng, dtype=np.float64)
        check_input_gradient(block, rng.normal(size=(1, 2, 4, 4)), tol=1e-4)

    def test_param_views_alias_sublayers(self, rng):
        block = ResidualBlock(2, 2, rng=rng)
        # In-place updates through the flattened view must reach the sub-layer.
        block.params["conv1.W"] -= 1.0
        assert np.allclose(block.params["conv1.W"], block.conv1.params["W"])

    def test_gradients_accumulate_after_backward(self, rng):
        block = ResidualBlock(2, 2, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4)).astype(block.params["conv1.W"].dtype)
        out = block.forward(x, training=True)
        block.backward(np.ones_like(out))
        assert any(np.abs(g).sum() > 0 for g in block.grads.values())
