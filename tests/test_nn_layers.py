"""Unit tests for the numpy layers: shapes, gradients and FLOP accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, ResidualBlock


def numerical_gradient(f, x, eps=1e-5):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = f()
        x[idx] = original - eps
        f_minus = f()
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_input_gradient(layer, x, tol=1e-5):
    """Verify the layer's input gradient against numerical differentiation."""
    out = layer.forward(x, training=True)
    upstream = np.random.default_rng(0).normal(size=out.shape)

    def scalar():
        return float(np.sum(layer.forward(x, training=False) * upstream))

    analytic = layer.backward(upstream)
    numeric = numerical_gradient(scalar, x)
    assert np.allclose(analytic, numeric, atol=tol, rtol=1e-3)


def check_param_gradient(layer, x, param_key, tol=1e-5):
    """Verify a parameter gradient against numerical differentiation."""
    out = layer.forward(x, training=True)
    upstream = np.random.default_rng(1).normal(size=out.shape)
    layer.zero_grad()
    layer.forward(x, training=True)
    layer.backward(upstream)
    analytic = layer.grads[param_key].copy()

    param = layer.params[param_key]

    def scalar():
        return float(np.sum(layer.forward(x, training=False) * upstream))

    numeric = numerical_gradient(scalar, param)
    assert np.allclose(analytic, numeric, atol=tol, rtol=1e-3)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(6, 4, rng=rng)
        out = layer.forward(rng.normal(size=(3, 6)))
        assert out.shape == (3, 4)

    def test_output_shape_metadata(self, rng):
        layer = Dense(6, 4, rng=rng)
        assert layer.output_shape((6,)) == (4,)

    def test_input_gradient(self, rng):
        layer = Dense(5, 3, rng=rng)
        check_input_gradient(layer, rng.normal(size=(2, 5)))

    def test_weight_gradient(self, rng):
        layer = Dense(5, 3, rng=rng)
        check_param_gradient(layer, rng.normal(size=(2, 5)), "W")

    def test_bias_gradient(self, rng):
        layer = Dense(5, 3, rng=rng)
        check_param_gradient(layer, rng.normal(size=(2, 5)), "b")

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(5, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(2, 3)))

    def test_flops_accounting(self, rng):
        layer = Dense(5, 3, rng=rng)
        layer.forward(rng.normal(size=(4, 5)), training=True)
        assert layer.last_forward_flops == 2 * 4 * 5 * 3
        layer.backward(rng.normal(size=(4, 3)))
        assert layer.last_backward_flops == 4 * 4 * 5 * 3

    def test_num_parameters(self, rng):
        layer = Dense(5, 3, rng=rng)
        assert layer.num_parameters() == 5 * 3 + 3


class TestConv2D:
    def test_forward_shape_with_padding(self, rng):
        layer = Conv2D(2, 4, 3, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 2, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, rng=rng)
        out = layer.forward(rng.normal(size=(1, 1, 9, 9)))
        assert out.shape == (1, 2, 4, 4)

    def test_output_shape_metadata(self, rng):
        layer = Conv2D(2, 4, 3, padding=1, rng=rng)
        assert layer.output_shape((2, 8, 8)) == (4, 8, 8)

    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, 3, padding=1, rng=rng)
        check_input_gradient(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_weight_gradient(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        check_param_gradient(layer, rng.normal(size=(2, 1, 5, 5)), "W")

    def test_bias_gradient(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        check_param_gradient(layer, rng.normal(size=(2, 1, 5, 5)), "b")

    def test_matches_manual_convolution(self, rng):
        layer = Conv2D(1, 1, 2, rng=rng)
        x = rng.normal(size=(1, 1, 3, 3))
        out = layer.forward(x)
        w = layer.params["W"][0, 0]
        b = layer.params["b"][0]
        expected = np.array(
            [
                [np.sum(x[0, 0, i : i + 2, j : j + 2] * w) + b for j in range(2)]
                for i in range(2)
            ]
        )
        assert np.allclose(out[0, 0], expected)

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2D(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(1, 1, 3, 3)))

    def test_flops_positive(self, rng):
        layer = Conv2D(2, 3, 3, padding=1, rng=rng)
        layer.forward(rng.normal(size=(2, 2, 6, 6)), training=True)
        assert layer.last_forward_flops > 0
        layer.backward(rng.normal(size=(2, 3, 6, 6)))
        assert layer.last_backward_flops > layer.last_forward_flops


class TestMaxPool2D:
    def test_forward_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_rejects_non_divisible_input(self):
        layer = MaxPool2D(2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 5, 5)))

    def test_output_shape_metadata(self):
        layer = MaxPool2D(2)
        assert layer.output_shape((3, 8, 8)) == (3, 4, 4)
        with pytest.raises(ValueError):
            layer.output_shape((3, 7, 7))

    def test_input_gradient(self, rng):
        layer = MaxPool2D(2)
        # Use well-separated values so the max is stable under perturbation.
        x = rng.permutation(np.arange(32, dtype=float)).reshape(1, 2, 4, 4)
        check_input_gradient(layer, x, tol=1e-4)

    def test_gradient_routed_to_single_max(self):
        layer = MaxPool2D(2)
        x = np.zeros((1, 1, 2, 2))  # all equal -> tie
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 1, 1, 1)))
        # Only one element of the window receives the gradient despite the tie.
        assert grad.sum() == pytest.approx(1.0)
        assert (grad > 0).sum() == 1


class TestReLUFlatten:
    def test_relu_forward_and_gradient(self, rng):
        layer = ReLU()
        x = rng.normal(size=(3, 4))
        out = layer.forward(x, training=True)
        assert np.all(out >= 0)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad, (x > 0).astype(float))

    def test_relu_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((2, 2)))

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        assert back.shape == x.shape
        assert np.allclose(back, x)

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((3, 4, 4)) == (48,)


class TestResidualBlock:
    def test_forward_shape_identity_skip(self, rng):
        block = ResidualBlock(3, 3, rng=rng)
        out = block.forward(rng.normal(size=(2, 3, 6, 6)))
        assert out.shape == (2, 3, 6, 6)
        assert block.proj is None

    def test_forward_shape_projection_skip(self, rng):
        block = ResidualBlock(2, 5, rng=rng)
        out = block.forward(rng.normal(size=(2, 2, 6, 6)))
        assert out.shape == (2, 5, 6, 6)
        assert block.proj is not None

    def test_param_namespacing(self, rng):
        block = ResidualBlock(2, 4, rng=rng)
        keys = set(block.params)
        assert {"conv1.W", "conv1.b", "conv2.W", "conv2.b", "proj.W", "proj.b"} == keys

    def test_input_gradient(self, rng):
        block = ResidualBlock(2, 2, rng=rng)
        check_input_gradient(block, rng.normal(size=(1, 2, 4, 4)), tol=1e-4)

    def test_param_views_alias_sublayers(self, rng):
        block = ResidualBlock(2, 2, rng=rng)
        # In-place updates through the flattened view must reach the sub-layer.
        block.params["conv1.W"] -= 1.0
        assert np.allclose(block.params["conv1.W"], block.conv1.params["W"])

    def test_gradients_accumulate_after_backward(self, rng):
        block = ResidualBlock(2, 2, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        out = block.forward(x, training=True)
        block.backward(np.ones_like(out))
        assert any(np.abs(g).sum() > 0 for g in block.grads.values())
