"""Old-vs-new engine parity: the optimised float64 path must be bit-identical.

The optimised engine (scratch reuse, flat-index pooling, fused optimiser
steps, stacked-vector aggregation) claims to preserve the exact
floating-point operation order of the seed implementation when running in
``float64``.  These tests hold it to that claim at three levels:

1. per-layer forward/backward against :mod:`repro.nn.reference`,
2. multi-step training and the fused optimiser/aggregation kernels,
3. whole serial experiment suites: per-label summaries produced with the
   reference layers must equal the ones produced with the optimised layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.aggregation import fedavg_aggregate, fednova_aggregate
from repro.nn import architectures
from repro.nn.architectures import ArchitectureSpec
from repro.nn.layers import Conv2D, Dense, MaxPool2D
from repro.nn.model import SplitCNN
from repro.nn.optim import SGD, ProximalSGD
from repro.nn.reference import (
    REFERENCE_ARCHITECTURES,
    ReferenceConv2D,
    ReferenceDense,
    ReferenceMaxPool2D,
    ReferenceSGD,
    reference_fedavg_aggregate,
    reference_fednova_aggregate,
    reference_mnist_cnn,
)


def _random_weight_sets(num_clients: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    shapes = {"features.0.W": (8, 1, 5, 5), "features.0.b": (8,), "classifier.1.W": (784, 10)}
    return [
        {key: rng.normal(size=shape) for key, shape in shapes.items()}
        for _ in range(num_clients)
    ]


class TestLayerParity:
    def _pair(self, new_layer, ref_layer, x, upstream):
        for key, value in new_layer.params.items():
            value[...] = ref_layer.params[key]
        out_new = new_layer.forward(x, training=True)
        out_ref = ref_layer.forward(x, training=True)
        assert np.array_equal(out_new, out_ref)
        new_layer.zero_grad()
        ref_layer.zero_grad()
        new_layer.forward(x, training=True)
        ref_layer.forward(x, training=True)
        gx_new = new_layer.backward(upstream)
        gx_ref = ref_layer.backward(upstream)
        assert np.array_equal(gx_new, gx_ref)
        for key in new_layer.grads:
            assert np.array_equal(new_layer.grads[key], ref_layer.grads[key])

    def test_conv2d_padded(self):
        rng = np.random.default_rng(3)
        new = Conv2D(2, 4, 5, padding=2, rng=np.random.default_rng(1), dtype=np.float64)
        ref = ReferenceConv2D(2, 4, 5, padding=2, rng=np.random.default_rng(1))
        x = rng.normal(size=(3, 2, 8, 8))
        self._pair(new, ref, x, rng.normal(size=(3, 4, 8, 8)))

    def test_conv2d_strided(self):
        rng = np.random.default_rng(4)
        new = Conv2D(1, 2, 3, stride=2, rng=np.random.default_rng(1), dtype=np.float64)
        ref = ReferenceConv2D(1, 2, 3, stride=2, rng=np.random.default_rng(1))
        x = rng.normal(size=(2, 1, 9, 9))
        self._pair(new, ref, x, rng.normal(size=(2, 2, 4, 4)))

    def test_maxpool_with_ties(self):
        rng = np.random.default_rng(5)
        x = rng.integers(0, 3, size=(2, 3, 8, 8)).astype(np.float64)  # many ties
        upstream = rng.normal(size=(2, 3, 4, 4))
        new, ref = MaxPool2D(2), ReferenceMaxPool2D(2)
        assert np.array_equal(new.forward(x, training=True), ref.forward(x, training=True))
        assert np.array_equal(new.backward(upstream), ref.backward(upstream))

    def test_dense(self):
        rng = np.random.default_rng(6)
        new = Dense(12, 5, rng=np.random.default_rng(1), dtype=np.float64)
        ref = ReferenceDense(12, 5, rng=np.random.default_rng(1))
        x = rng.normal(size=(4, 12))
        self._pair(new, ref, x, rng.normal(size=(4, 5)))


class TestOptimizerParity:
    @pytest.mark.parametrize("momentum,weight_decay", [(0.0, 0.0), (0.9, 0.0), (0.9, 1e-3)])
    def test_fused_sgd_matches_seed_loop(self, momentum, weight_decay):
        rng = np.random.default_rng(7)
        params_a = {k: rng.normal(size=(17,)) for k in ("a", "b", "c")}
        params_b = {k: v.copy() for k, v in params_a.items()}
        fused = SGD(lr=0.05, momentum=momentum, weight_decay=weight_decay)
        seed = ReferenceSGD(lr=0.05, momentum=momentum, weight_decay=weight_decay)
        for _ in range(5):
            grads = {k: rng.normal(size=(17,)) for k in params_a}
            fused.step(params_a, grads)
            seed.step(params_b, grads)
        for key in params_a:
            assert np.array_equal(params_a[key], params_b[key])

    def test_fused_proximal_sgd_matches_seed_formula(self):
        rng = np.random.default_rng(8)
        anchor = {"w": rng.normal(size=(9,))}
        params = {"w": rng.normal(size=(9,))}
        expected = params["w"].copy()
        grads = {"w": rng.normal(size=(9,))}
        prox = ProximalSGD(lr=0.1, mu=0.5)
        prox.set_anchor(anchor)
        prox.step(params, grads)
        # Seed formula: w -= lr * (g + mu * (w - anchor)).
        expected -= 0.1 * (grads["w"] + 0.5 * (expected - anchor["w"]))
        assert np.array_equal(params["w"], expected)


class TestAggregationParity:
    def test_fedavg_matches_seed_loop(self):
        weight_sets = _random_weight_sets(16, seed=11)
        updates = [(weights, 10 * (i + 1)) for i, weights in enumerate(weight_sets)]
        new = fedavg_aggregate(updates)
        ref = reference_fedavg_aggregate(updates)
        assert set(new) == set(ref)
        for key in new:
            assert np.array_equal(new[key], ref[key])

    def test_fednova_matches_seed_loop(self):
        weight_sets = _random_weight_sets(16, seed=12)
        global_weights = _random_weight_sets(1, seed=13)[0]
        updates = [
            (weights, 10 * (i + 1), 1 + (i % 5)) for i, weights in enumerate(weight_sets)
        ]
        new = fednova_aggregate(global_weights, updates)
        ref = reference_fednova_aggregate(global_weights, updates)
        for key in new:
            assert np.array_equal(new[key], ref[key])


class TestModelParity:
    def test_training_trajectory_bitwise_identical(self):
        """Several momentum+weight-decay steps on the full mnist-cnn stack."""
        new_model = architectures.mnist_cnn(rng=np.random.default_rng(2))
        ref_model = reference_mnist_cnn(rng=np.random.default_rng(9))
        new64 = SplitCNN(
            new_model.feature_layers, new_model.classifier_layers, "mnist-cnn", dtype=np.float64
        )
        new64.set_flat_weights(ref_model.get_flat_weights())
        rng = np.random.default_rng(10)
        x = rng.normal(size=(16, 1, 28, 28))
        y = rng.integers(0, 10, size=16)
        opt_new = SGD(lr=0.05, momentum=0.9, weight_decay=1e-4)
        opt_ref = ReferenceSGD(lr=0.05, momentum=0.9, weight_decay=1e-4, model=ref_model)
        for step in range(4):
            loss_new, trace_new = new64.train_batch(x, y, opt_new)
            loss_ref, trace_ref = ref_model.train_batch(x, y, opt_ref)
            assert loss_new == loss_ref
            assert trace_new.flops == trace_ref.flops
        assert np.array_equal(new64.get_flat_weights(), ref_model.get_flat_weights())


class TestSuiteParity:
    def _suite_summaries(self):
        from repro.experiments.runner import run_configs
        from repro.experiments.workloads import SCALES, evaluation_config

        cells = {
            f"mnist/{algorithm}": evaluation_config(
                "mnist", algorithm, "noniid", SCALES["smoke"], seed=42, dtype="float64"
            )
            for algorithm in ("fedavg", "fedprox")
        }
        suite = run_configs(cells)
        return {label: suite.results[label].summary() for label in cells}

    def test_serial_suite_summaries_match_reference_engine(self):
        """Per-label summaries: reference layers vs optimised layers (float64)."""
        spec = architectures.ARCHITECTURES["mnist-cnn"]
        architectures.ARCHITECTURES["mnist-cnn"] = ArchitectureSpec(
            spec.name,
            spec.input_shape,
            spec.num_classes,
            REFERENCE_ARCHITECTURES["mnist-cnn"],
        )
        try:
            reference_summaries = self._suite_summaries()
        finally:
            architectures.ARCHITECTURES["mnist-cnn"] = spec
        optimised_summaries = self._suite_summaries()
        assert reference_summaries == optimised_summaries
