"""Crash-injection harness for the checkpoint/resume tests.

Importable from the test suite *and* runnable as a subprocess entry
point::

    python tests/crash_harness.py <config.json> <store_dir> <crash_round>

The child starts a store-backed run of the given configuration and
SIGKILLs itself the instant the round listener sees ``crash_round``
finalize — a real, unclean death (no atexit handlers, no flushing, no
``finally`` blocks), exactly what the resume path must survive.  The
parent side (:func:`run_and_crash`) asserts the child actually died from
the signal, then resumes in-process and compares byte-for-byte against
an uninterrupted golden run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
for entry in (str(SRC_ROOT), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.fl.config import DynamicsConfig, ExperimentConfig, ResourceConfig, TransportConfig


# ----------------------------------------------------------- config transport
def config_to_dict(config: ExperimentConfig) -> dict:
    """JSON-safe dict round-trippable through :func:`config_from_dict`."""
    return dataclasses.asdict(config)


def config_from_dict(payload: dict) -> ExperimentConfig:
    payload = dict(payload)
    payload["resources"] = ResourceConfig(**payload["resources"])
    payload["dynamics"] = DynamicsConfig(**payload["dynamics"])
    payload["transport"] = TransportConfig(**payload["transport"])
    return ExperimentConfig(**payload)


# -------------------------------------------------------------- parent side
def run_and_crash(config: ExperimentConfig, store_dir: Path, crash_round: int) -> None:
    """Run ``config`` against ``store_dir`` in a subprocess killed with
    SIGKILL when round ``crash_round`` finalizes; asserts the kill landed."""
    store_dir = Path(store_dir).resolve()  # the child runs from REPO_ROOT
    store_dir.mkdir(parents=True, exist_ok=True)
    config_path = store_dir / "crash-config.json"
    config_path.write_text(json.dumps(config_to_dict(config)))
    env = dict(os.environ)
    env["REPRO_SCALE"] = "smoke"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_ROOT), str(REPO_ROOT), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), str(config_path), str(store_dir), str(crash_round)],
        env=env,
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == -signal.SIGKILL, (
        f"crash child should die from SIGKILL at round {crash_round}, got "
        f"returncode {completed.returncode}\nstdout: {completed.stdout}\n"
        f"stderr: {completed.stderr}"
    )


def read_rounds_bytes(store_dir: Path, key: str) -> bytes:
    from repro.api.store import RunStore

    return (RunStore(store_dir).run_dir(key) / "rounds.jsonl").read_bytes()


def round_dicts(result) -> List[dict]:
    return [dataclasses.asdict(record) for record in result.rounds]


# --------------------------------------------------------------- child side
def _child_main(argv: List[str]) -> int:
    from repro.api import RunStore
    from repro.api.handles import run

    config_path, store_dir, crash_round = argv[0], argv[1], int(argv[2])
    config = config_from_dict(json.loads(Path(config_path).read_text()))

    def crash_on_round(record) -> None:
        if record.round_number >= crash_round:
            os.kill(os.getpid(), signal.SIGKILL)

    handle = run(config, store=RunStore(store_dir), on_round=crash_on_round)
    handle.result()
    # Reachable only if crash_round was beyond the run's horizon.
    return 0


if __name__ == "__main__":
    sys.exit(_child_main(sys.argv[1:]))
