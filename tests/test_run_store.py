"""Tests for the persistent RunStore / Results layer (:mod:`repro.api.store`)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro.api as api
from repro.api.store import (
    LOCK_NAME,
    MANIFEST_NAME,
    ROUNDS_NAME,
    STORE_FORMAT,
    run_key,
)
from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import run_experiment


@pytest.fixture
def smoke_eval_config():
    return evaluation_config(
        "mnist", "fedsgd", "noniid", SCALES["smoke"], seed=11, dtype="float32"
    )


class TestRunStoreRoundTrip:
    def test_persisted_run_reloads_bitwise(self, tmp_path, smoke_eval_config):
        """Acceptance: summary survives the disk round-trip bit-for-bit."""
        handle = api.run(smoke_eval_config, store=tmp_path)
        original = handle.result()

        stored = api.RunStore(tmp_path).get(smoke_eval_config)
        assert stored is not None
        assert stored.config_hash == run_key(smoke_eval_config)
        reloaded = stored.load_result()
        assert reloaded.summary() == original.summary()  # bitwise, no approx
        assert [r.round_number for r in reloaded.rounds] == [
            r.round_number for r in original.rounds
        ]
        assert reloaded.config == original.config
        assert reloaded.setup_time == original.setup_time

    def test_manifest_is_typed_and_complete(self, tmp_path, smoke_eval_config):
        api.run(smoke_eval_config, store=tmp_path).result()
        run_dir = tmp_path / run_key(smoke_eval_config)
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert manifest["format"] == STORE_FORMAT
        assert manifest["status"] == "complete"
        assert manifest["config_hash"] == run_key(smoke_eval_config)
        assert manifest["algorithm"] == "fedsgd"
        assert manifest["dataset"] == "mnist"
        assert manifest["scenario"] == "stable"
        assert manifest["dtype"] == "float32"
        assert manifest["seed"] == 11
        assert manifest["config"]["num_clients"] == SCALES["smoke"].num_clients
        assert manifest["summary"]["rounds"] == float(manifest["num_rounds"])
        # One JSONL line per round, parseable back into records.
        lines = [
            json.loads(line)
            for line in (run_dir / ROUNDS_NAME).read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == int(manifest["num_rounds"])
        assert [line["round_number"] for line in lines] == list(
            range(1, len(lines) + 1)
        )

    def test_second_run_is_detected_as_already_present(self, tmp_path, smoke_eval_config):
        first = api.run(smoke_eval_config, store=tmp_path)
        assert not first.loaded_from_store
        summary = first.summary()
        assert first.wall_seconds > 0

        second = api.run(smoke_eval_config, store=tmp_path)
        assert second.loaded_from_store
        assert second.summary() == summary
        assert second.wall_seconds == 0.0
        # Still exactly one stored run.
        assert len(api.RunStore(tmp_path).runs()) == 1

    def test_different_seed_is_a_different_run(self, tmp_path, smoke_eval_config):
        api.run(smoke_eval_config, store=tmp_path).result()
        other = smoke_eval_config.with_overrides(seed=12)
        handle = api.run(other, store=tmp_path)
        assert not handle.loaded_from_store
        handle.result()
        assert len(api.RunStore(tmp_path).runs()) == 2

    def test_incomplete_run_is_not_served(self, tmp_path, smoke_eval_config):
        store = api.RunStore(tmp_path)
        writer = store.start_run(smoke_eval_config)
        # Abandon the run before finalize: status stays "running".
        assert store.get(smoke_eval_config) is None
        writer.abort()
        assert store.get(smoke_eval_config) is None
        # A real run afterwards overwrites the stale attempt.
        handle = api.run(smoke_eval_config, store=store)
        assert not handle.loaded_from_store
        handle.result()
        assert store.get(smoke_eval_config) is not None

    def test_truncated_rounds_file_is_not_replayed(self, tmp_path, smoke_eval_config):
        """A rounds file disagreeing with the manifest re-executes the run."""
        api.run(smoke_eval_config, store=tmp_path).result()
        store = api.RunStore(tmp_path)
        rounds_path = tmp_path / run_key(smoke_eval_config) / ROUNDS_NAME
        rounds_path.write_text("")  # simulate deletion/partial sync
        assert store.get(smoke_eval_config) is None
        handle = api.run(smoke_eval_config, store=tmp_path)
        assert not handle.loaded_from_store
        handle.result()
        assert store.get(smoke_eval_config) is not None

    def test_run_key_survives_version_and_cache_format_bumps(
        self, smoke_eval_config, monkeypatch
    ):
        """The store is an archive: releases must not orphan stored runs."""
        import repro
        from repro.experiments import parallel

        before = run_key(smoke_eval_config)
        cache_before = parallel.config_hash(smoke_eval_config)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        monkeypatch.setattr(parallel, "CACHE_FORMAT", 999)
        assert run_key(smoke_eval_config) == before
        # ... unlike the result cache's key, which deliberately changes.
        assert parallel.config_hash(smoke_eval_config) != cache_before

    def test_run_key_covers_the_effective_dtype(self, smoke_eval_config):
        assert run_key(smoke_eval_config) != run_key(
            smoke_eval_config.with_overrides(dtype="float64")
        )

    def test_store_summary_matches_direct_execution(self, tmp_path, smoke_eval_config):
        """The persisted summary equals the plain run_experiment path."""
        api.run(smoke_eval_config, store=tmp_path).result()
        stored = api.RunStore(tmp_path).get(smoke_eval_config)
        assert stored.load_result().summary() == run_experiment(smoke_eval_config).summary()


class TestResultsQueries:
    @pytest.fixture
    def populated(self, tmp_path):
        configs = {
            "mnist/fedsgd": evaluation_config(
                "mnist", "fedsgd", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
            "mnist/fedavg": evaluation_config(
                "mnist", "fedavg", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
        }
        handle = api.sweep(configs, store=tmp_path)
        return tmp_path, handle

    def test_open_filter_and_summaries(self, populated):
        tmp_path, handle = populated
        results = api.Results.open(tmp_path)
        assert len(results) == 2
        assert sorted(results.labels()) == ["mnist/fedavg", "mnist/fedsgd"]
        only_sgd = results.runs(algorithm="fedsgd")
        assert [run.algorithm for run in only_sgd] == ["fedsgd"]
        summaries = results.summaries()
        assert summaries["mnist/fedavg"] == handle["mnist/fedavg"].summary()

    def test_load_by_label(self, populated):
        tmp_path, handle = populated
        results = api.Results.open(tmp_path)
        result = results.load("mnist/fedavg")
        assert result.algorithm == "fedavg"
        with pytest.raises(KeyError, match="no stored run"):
            results.load("nope/nope")

    def test_render_from_store_alone(self, populated):
        tmp_path, _ = populated
        results = api.Results.open(tmp_path)
        rendering = results.render_summary()
        assert "mnist/fedavg" in rendering and "final_accuracy" in rendering
        durations = results.render_round_durations()
        assert "mean_round_duration_s" in durations

    def test_sweep_store_hits_on_rerun(self, populated, tmp_path):
        _, first = populated
        configs = {
            "mnist/fedsgd": evaluation_config(
                "mnist", "fedsgd", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
            "mnist/fedavg": evaluation_config(
                "mnist", "fedavg", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
        }
        second = api.sweep(configs, store=tmp_path)
        assert sorted(second.store_hits) == ["mnist/fedavg", "mnist/fedsgd"]
        assert second.summaries() == first.summaries()

class TestWriterLock:
    """The per-run writer lock (concurrent-server / crashed-writer safety)."""

    def test_second_simultaneous_writer_is_rejected(self, tmp_path, smoke_eval_config):
        store = api.RunStore(tmp_path)
        writer = store.start_run(smoke_eval_config)
        with pytest.raises(api.RunLockedError):
            store.start_run(smoke_eval_config)
        # A *different* configuration is a different lock: unaffected.
        other = smoke_eval_config.with_overrides(seed=12)
        store.start_run(other).abort()
        writer.abort()
        # Releasing the lock (abort or finalize) re-opens the run.
        store.start_run(smoke_eval_config).abort()

    def test_lock_survives_only_while_held(self, tmp_path, smoke_eval_config):
        store = api.RunStore(tmp_path)
        lock = tmp_path / run_key(smoke_eval_config) / LOCK_NAME
        writer = store.start_run(smoke_eval_config)
        assert lock.read_text().strip() == str(os.getpid())
        writer.abort()
        assert not lock.exists()

    def test_stale_lock_from_dead_writer_is_broken(self, tmp_path, smoke_eval_config):
        # A crashed writer (the SIGKILL crash-injection scenario) leaves a
        # lock whose pid is gone; the next writer must break it, not fail.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        run_dir = tmp_path / run_key(smoke_eval_config)
        run_dir.mkdir(parents=True)
        (run_dir / LOCK_NAME).write_text(str(proc.pid))

        store = api.RunStore(tmp_path)
        writer = store.start_run(smoke_eval_config)  # must not raise
        assert (run_dir / LOCK_NAME).read_text().strip() == str(os.getpid())
        writer.abort()

    def test_lock_held_by_live_foreign_pid_is_respected(
        self, tmp_path, smoke_eval_config
    ):
        run_dir = tmp_path / run_key(smoke_eval_config)
        run_dir.mkdir(parents=True)
        (run_dir / LOCK_NAME).write_text(str(os.getppid()))  # alive, not ours
        store = api.RunStore(tmp_path)
        with pytest.raises(api.RunLockedError, match="live writer"):
            store.start_run(smoke_eval_config)


class TestResultsToJson:
    def test_to_json_is_machine_readable_and_filtered(self, tmp_path, smoke_eval_config):
        api.run(smoke_eval_config, store=tmp_path).result()
        abandoned = smoke_eval_config.with_overrides(seed=12)
        api.RunStore(tmp_path).start_run(abandoned).abort()

        results = api.Results.open(tmp_path)
        document = results.to_json()
        assert document["results_dir"] == str(tmp_path)
        assert document["store_format"] == STORE_FORMAT
        assert document["count"] == 1
        (run,) = document["runs"]
        assert run["config_hash"] == run_key(smoke_eval_config)
        assert run["status"] == "complete"
        assert run["algorithm"] == "fedsgd"
        assert run["seed"] == 11
        assert run["summary"]["rounds"] == float(run["num_rounds"])
        # The whole document is JSON-serializable as-is.
        json.loads(json.dumps(document))

        everything = results.to_json(complete_only=False)
        assert everything["count"] == 2
        assert sorted(r["status"] for r in everything["runs"]) == [
            "complete",
            "incomplete",
        ]


class TestStaleBreakRace:
    """The two-breaker stale-lock race (writer-lock bugfix regression).

    Scenario: two processes both classify one lock stale; breaker A breaks
    it and re-acquires, then breaker B's *delayed* break fires.  The old
    bare ``os.unlink`` deleted A's fresh lock, opening the run to a second
    live writer on the same ``rounds.jsonl``.  The fixed break serializes
    through an flock guard and re-verifies pid+inode under it, so a break
    can only ever remove the exact stale inode it classified.
    """

    @staticmethod
    def _dead_pid() -> int:
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_delayed_break_spares_the_replacing_fresh_lock(self, tmp_path):
        from repro.api.store import (
            _acquire_run_lock,
            _break_stale_lock,
            _release_run_lock,
        )

        lock = tmp_path / LOCK_NAME
        lock.write_text(str(self._dead_pid()))
        stale_inode = os.stat(lock).st_ino

        # Breaker A: classifies stale, breaks, re-acquires.
        _acquire_run_lock(lock)
        try:
            assert lock.read_text().strip() == str(os.getpid())
            # Breaker B classified the *old* inode stale before A broke it;
            # its delayed break fires only now.  With the old logic this
            # unlinked A's fresh lock; now it must be a verified no-op.
            _break_stale_lock(lock, stale_inode)
            assert lock.exists()
            assert lock.read_text().strip() == str(os.getpid())
        finally:
            _release_run_lock(lock)

    def test_break_removes_exactly_the_verified_stale_inode(self, tmp_path):
        from repro.api.store import _break_stale_lock

        lock = tmp_path / LOCK_NAME
        lock.write_text(str(self._dead_pid()))
        _break_stale_lock(lock, os.stat(lock).st_ino)
        assert not lock.exists()

    def test_backoff_is_jittered_bounded_and_per_pid_deterministic(self, monkeypatch):
        import random as random_module

        from repro.api import store as store_module

        recorded = []
        monkeypatch.setattr(store_module.time, "sleep", recorded.append)

        def schedule(seed: int):
            recorded.clear()
            rng = random_module.Random(seed)
            for attempt in range(8):
                store_module._sleep_backoff(rng, attempt)
            return list(recorded)

        first = schedule(1234)
        assert schedule(1234) == first  # deterministic per seed (per pid)
        assert schedule(99) != first  # decorrelated across pids
        assert all(0.0 < delay <= 0.3 for delay in first)
        # The cap grows: late attempts back off harder than early ones.
        assert max(first[5:]) > max(first[:2])

    def test_multiprocess_stress_never_overlaps_writers(self, tmp_path):
        """N processes hammer one lock through the stale-break path.

        Every winner "crashes" (leaves a dead-pid lock instead of
        releasing), so each subsequent acquire must break a stale lock —
        the racy path.  An O_EXCL sentinel held while the lock is owned
        detects any two simultaneous writers.
        """
        dead_pid = self._dead_pid()
        lock = tmp_path / LOCK_NAME
        sentinel = tmp_path / "critical.sentinel"
        lock.write_text(str(dead_pid))
        src_root = str(
            __import__("pathlib").Path(__file__).resolve().parent.parent / "src"
        )
        worker = tmp_path / "lock_worker.py"
        worker.write_text(
            "import os, sys, time\n"
            f"sys.path.insert(0, {src_root!r})\n"
            "from pathlib import Path\n"
            "from repro.api.store import (RunLockedError, _HELD_LOCKS,\n"
            "    _HELD_LOCKS_GUARD, _acquire_run_lock)\n"
            "lock, sentinel, dead_pid = Path(sys.argv[1]), Path(sys.argv[2]), sys.argv[3]\n"
            "wins = overlaps = 0\n"
            "deadline = time.monotonic() + 6.0\n"
            "while time.monotonic() < deadline and wins < 12:\n"
            "    try:\n"
            "        _acquire_run_lock(lock)\n"
            "    except RunLockedError:\n"
            "        time.sleep(0.001)\n"
            "        continue\n"
            "    try:\n"
            "        fd = os.open(str(sentinel), os.O_CREAT | os.O_EXCL | os.O_WRONLY)\n"
            "    except FileExistsError:\n"
            "        overlaps += 1\n"
            "    else:\n"
            "        time.sleep(0.002)\n"
            "        os.close(fd)\n"
            "        os.unlink(str(sentinel))\n"
            "    wins += 1\n"
            "    # crash instead of releasing: leave a dead-pid (stale) lock\n"
            "    lock.write_text(dead_pid)\n"
            "    with _HELD_LOCKS_GUARD:\n"
            "        _HELD_LOCKS.discard(str(lock))\n"
            "print(wins, overlaps)\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, str(worker), str(lock), str(sentinel), str(dead_pid)],
                stdout=subprocess.PIPE,
                text=True,
            )
            for _ in range(4)
        ]
        total_wins = total_overlaps = 0
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            wins, overlaps = (int(part) for part in out.split())
            total_wins += wins
            total_overlaps += overlaps
        assert total_overlaps == 0
        assert total_wins >= 8  # the stale-break path really was contended
