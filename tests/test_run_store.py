"""Tests for the persistent RunStore / Results layer (:mod:`repro.api.store`)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro.api as api
from repro.api.store import (
    LOCK_NAME,
    MANIFEST_NAME,
    ROUNDS_NAME,
    STORE_FORMAT,
    run_key,
)
from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import run_experiment


@pytest.fixture
def smoke_eval_config():
    return evaluation_config(
        "mnist", "fedsgd", "noniid", SCALES["smoke"], seed=11, dtype="float32"
    )


class TestRunStoreRoundTrip:
    def test_persisted_run_reloads_bitwise(self, tmp_path, smoke_eval_config):
        """Acceptance: summary survives the disk round-trip bit-for-bit."""
        handle = api.run(smoke_eval_config, store=tmp_path)
        original = handle.result()

        stored = api.RunStore(tmp_path).get(smoke_eval_config)
        assert stored is not None
        assert stored.config_hash == run_key(smoke_eval_config)
        reloaded = stored.load_result()
        assert reloaded.summary() == original.summary()  # bitwise, no approx
        assert [r.round_number for r in reloaded.rounds] == [
            r.round_number for r in original.rounds
        ]
        assert reloaded.config == original.config
        assert reloaded.setup_time == original.setup_time

    def test_manifest_is_typed_and_complete(self, tmp_path, smoke_eval_config):
        api.run(smoke_eval_config, store=tmp_path).result()
        run_dir = tmp_path / run_key(smoke_eval_config)
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert manifest["format"] == STORE_FORMAT
        assert manifest["status"] == "complete"
        assert manifest["config_hash"] == run_key(smoke_eval_config)
        assert manifest["algorithm"] == "fedsgd"
        assert manifest["dataset"] == "mnist"
        assert manifest["scenario"] == "stable"
        assert manifest["dtype"] == "float32"
        assert manifest["seed"] == 11
        assert manifest["config"]["num_clients"] == SCALES["smoke"].num_clients
        assert manifest["summary"]["rounds"] == float(manifest["num_rounds"])
        # One JSONL line per round, parseable back into records.
        lines = [
            json.loads(line)
            for line in (run_dir / ROUNDS_NAME).read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == int(manifest["num_rounds"])
        assert [line["round_number"] for line in lines] == list(
            range(1, len(lines) + 1)
        )

    def test_second_run_is_detected_as_already_present(self, tmp_path, smoke_eval_config):
        first = api.run(smoke_eval_config, store=tmp_path)
        assert not first.loaded_from_store
        summary = first.summary()
        assert first.wall_seconds > 0

        second = api.run(smoke_eval_config, store=tmp_path)
        assert second.loaded_from_store
        assert second.summary() == summary
        assert second.wall_seconds == 0.0
        # Still exactly one stored run.
        assert len(api.RunStore(tmp_path).runs()) == 1

    def test_different_seed_is_a_different_run(self, tmp_path, smoke_eval_config):
        api.run(smoke_eval_config, store=tmp_path).result()
        other = smoke_eval_config.with_overrides(seed=12)
        handle = api.run(other, store=tmp_path)
        assert not handle.loaded_from_store
        handle.result()
        assert len(api.RunStore(tmp_path).runs()) == 2

    def test_incomplete_run_is_not_served(self, tmp_path, smoke_eval_config):
        store = api.RunStore(tmp_path)
        writer = store.start_run(smoke_eval_config)
        # Abandon the run before finalize: status stays "running".
        assert store.get(smoke_eval_config) is None
        writer.abort()
        assert store.get(smoke_eval_config) is None
        # A real run afterwards overwrites the stale attempt.
        handle = api.run(smoke_eval_config, store=store)
        assert not handle.loaded_from_store
        handle.result()
        assert store.get(smoke_eval_config) is not None

    def test_truncated_rounds_file_is_not_replayed(self, tmp_path, smoke_eval_config):
        """A rounds file disagreeing with the manifest re-executes the run."""
        api.run(smoke_eval_config, store=tmp_path).result()
        store = api.RunStore(tmp_path)
        rounds_path = tmp_path / run_key(smoke_eval_config) / ROUNDS_NAME
        rounds_path.write_text("")  # simulate deletion/partial sync
        assert store.get(smoke_eval_config) is None
        handle = api.run(smoke_eval_config, store=tmp_path)
        assert not handle.loaded_from_store
        handle.result()
        assert store.get(smoke_eval_config) is not None

    def test_run_key_survives_version_and_cache_format_bumps(
        self, smoke_eval_config, monkeypatch
    ):
        """The store is an archive: releases must not orphan stored runs."""
        import repro
        from repro.experiments import parallel

        before = run_key(smoke_eval_config)
        cache_before = parallel.config_hash(smoke_eval_config)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        monkeypatch.setattr(parallel, "CACHE_FORMAT", 999)
        assert run_key(smoke_eval_config) == before
        # ... unlike the result cache's key, which deliberately changes.
        assert parallel.config_hash(smoke_eval_config) != cache_before

    def test_run_key_covers_the_effective_dtype(self, smoke_eval_config):
        assert run_key(smoke_eval_config) != run_key(
            smoke_eval_config.with_overrides(dtype="float64")
        )

    def test_store_summary_matches_direct_execution(self, tmp_path, smoke_eval_config):
        """The persisted summary equals the plain run_experiment path."""
        api.run(smoke_eval_config, store=tmp_path).result()
        stored = api.RunStore(tmp_path).get(smoke_eval_config)
        assert stored.load_result().summary() == run_experiment(smoke_eval_config).summary()


class TestResultsQueries:
    @pytest.fixture
    def populated(self, tmp_path):
        configs = {
            "mnist/fedsgd": evaluation_config(
                "mnist", "fedsgd", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
            "mnist/fedavg": evaluation_config(
                "mnist", "fedavg", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
        }
        handle = api.sweep(configs, store=tmp_path)
        return tmp_path, handle

    def test_open_filter_and_summaries(self, populated):
        tmp_path, handle = populated
        results = api.Results.open(tmp_path)
        assert len(results) == 2
        assert sorted(results.labels()) == ["mnist/fedavg", "mnist/fedsgd"]
        only_sgd = results.runs(algorithm="fedsgd")
        assert [run.algorithm for run in only_sgd] == ["fedsgd"]
        summaries = results.summaries()
        assert summaries["mnist/fedavg"] == handle["mnist/fedavg"].summary()

    def test_load_by_label(self, populated):
        tmp_path, handle = populated
        results = api.Results.open(tmp_path)
        result = results.load("mnist/fedavg")
        assert result.algorithm == "fedavg"
        with pytest.raises(KeyError, match="no stored run"):
            results.load("nope/nope")

    def test_render_from_store_alone(self, populated):
        tmp_path, _ = populated
        results = api.Results.open(tmp_path)
        rendering = results.render_summary()
        assert "mnist/fedavg" in rendering and "final_accuracy" in rendering
        durations = results.render_round_durations()
        assert "mean_round_duration_s" in durations

    def test_sweep_store_hits_on_rerun(self, populated, tmp_path):
        _, first = populated
        configs = {
            "mnist/fedsgd": evaluation_config(
                "mnist", "fedsgd", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
            "mnist/fedavg": evaluation_config(
                "mnist", "fedavg", "noniid", SCALES["smoke"], seed=5, dtype="float32"
            ),
        }
        second = api.sweep(configs, store=tmp_path)
        assert sorted(second.store_hits) == ["mnist/fedavg", "mnist/fedsgd"]
        assert second.summaries() == first.summaries()

class TestWriterLock:
    """The per-run writer lock (concurrent-server / crashed-writer safety)."""

    def test_second_simultaneous_writer_is_rejected(self, tmp_path, smoke_eval_config):
        store = api.RunStore(tmp_path)
        writer = store.start_run(smoke_eval_config)
        with pytest.raises(api.RunLockedError):
            store.start_run(smoke_eval_config)
        # A *different* configuration is a different lock: unaffected.
        other = smoke_eval_config.with_overrides(seed=12)
        store.start_run(other).abort()
        writer.abort()
        # Releasing the lock (abort or finalize) re-opens the run.
        store.start_run(smoke_eval_config).abort()

    def test_lock_survives_only_while_held(self, tmp_path, smoke_eval_config):
        store = api.RunStore(tmp_path)
        lock = tmp_path / run_key(smoke_eval_config) / LOCK_NAME
        writer = store.start_run(smoke_eval_config)
        assert lock.read_text().strip() == str(os.getpid())
        writer.abort()
        assert not lock.exists()

    def test_stale_lock_from_dead_writer_is_broken(self, tmp_path, smoke_eval_config):
        # A crashed writer (the SIGKILL crash-injection scenario) leaves a
        # lock whose pid is gone; the next writer must break it, not fail.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        run_dir = tmp_path / run_key(smoke_eval_config)
        run_dir.mkdir(parents=True)
        (run_dir / LOCK_NAME).write_text(str(proc.pid))

        store = api.RunStore(tmp_path)
        writer = store.start_run(smoke_eval_config)  # must not raise
        assert (run_dir / LOCK_NAME).read_text().strip() == str(os.getpid())
        writer.abort()

    def test_lock_held_by_live_foreign_pid_is_respected(
        self, tmp_path, smoke_eval_config
    ):
        run_dir = tmp_path / run_key(smoke_eval_config)
        run_dir.mkdir(parents=True)
        (run_dir / LOCK_NAME).write_text(str(os.getppid()))  # alive, not ours
        store = api.RunStore(tmp_path)
        with pytest.raises(api.RunLockedError, match="live writer"):
            store.start_run(smoke_eval_config)


class TestResultsToJson:
    def test_to_json_is_machine_readable_and_filtered(self, tmp_path, smoke_eval_config):
        api.run(smoke_eval_config, store=tmp_path).result()
        abandoned = smoke_eval_config.with_overrides(seed=12)
        api.RunStore(tmp_path).start_run(abandoned).abort()

        results = api.Results.open(tmp_path)
        document = results.to_json()
        assert document["results_dir"] == str(tmp_path)
        assert document["store_format"] == STORE_FORMAT
        assert document["count"] == 1
        (run,) = document["runs"]
        assert run["config_hash"] == run_key(smoke_eval_config)
        assert run["status"] == "complete"
        assert run["algorithm"] == "fedsgd"
        assert run["seed"] == 11
        assert run["summary"]["rounds"] == float(run["num_rounds"])
        # The whole document is JSON-serializable as-is.
        json.loads(json.dumps(document))

        everything = results.to_json(complete_only=False)
        assert everything["count"] == 2
        assert sorted(r["status"] for r in everything["runs"]) == [
            "complete",
            "incomplete",
        ]
