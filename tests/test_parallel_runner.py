"""Tests for the parallel sweep runner, config hashing and the result cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import (
    ResultCache,
    config_hash,
    configure,
    reset_policy,
    run_configs_parallel,
    run_suite,
)
from repro.experiments.runner import run_configs
from repro.fl.config import ExperimentConfig, ResourceConfig


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    yield
    reset_policy()


@pytest.fixture
def sweep_configs(smoke_config):
    """A two-cell sweep small enough for the test suite."""
    fast = smoke_config.with_overrides(train_size=240, test_size=60, local_updates=4)
    return {
        "fedavg": fast,
        "fedsgd": fast.with_overrides(algorithm="fedsgd"),
    }


def _summaries_json(suite):
    return {label: json.dumps(result.summary(), sort_keys=True) for label, result in suite.results.items()}


class TestConfigHash:
    def test_stable_and_sensitive(self, smoke_config):
        assert config_hash(smoke_config) == config_hash(smoke_config)
        copy = smoke_config.with_overrides()
        assert config_hash(copy) == config_hash(smoke_config)
        assert config_hash(smoke_config.with_overrides(seed=8)) != config_hash(smoke_config)
        assert config_hash(smoke_config.with_overrides(algorithm="aergia")) != config_hash(
            smoke_config
        )

    def test_covers_nested_resource_config(self, smoke_config):
        tweaked = smoke_config.with_overrides(
            resources=ResourceConfig(scheme="uniform", low=0.2, high=1.0)
        )
        assert config_hash(tweaked) != config_hash(smoke_config)

    def test_is_hex_digest(self, smoke_config):
        digest = config_hash(smoke_config)
        assert len(digest) == 64
        int(digest, 16)

    def test_covers_dynamics_config(self, smoke_config):
        """Two configs differing only in their scenario dynamics must never
        collide — otherwise the result cache would serve a stable-cluster
        result for a churn run (or vice versa)."""
        from repro.fl.config import DynamicsConfig

        churny = smoke_config.with_overrides(
            dynamics=DynamicsConfig(scenario="churn", churn=True)
        )
        assert config_hash(churny) != config_hash(smoke_config)
        # Even a single knob inside the (active) dynamics must change the key.
        slower_churn = smoke_config.with_overrides(
            dynamics=DynamicsConfig(scenario="churn", churn=True, mean_offline_s=9.0)
        )
        assert config_hash(slower_churn) != config_hash(churny)
        # The label alone matters too: a scenario rename invalidates cleanly.
        relabelled = smoke_config.with_overrides(
            dynamics=DynamicsConfig(scenario="weird")
        )
        assert config_hash(relabelled) != config_hash(smoke_config)

    def test_covers_every_field_of_the_scale_profile(self, smoke_config):
        """The effective scale profile is spread across ExperimentConfig
        fields; every one of them must be part of the cache key."""
        perturbations = {
            "num_clients": 5,
            "clients_per_round": 2,
            "rounds": 3,
            "local_updates": 7,
            "profile_batches": 3,
            "train_size": 321,
            "test_size": 81,
            "batch_size": 8,
            "learning_rate": 0.04,
            "momentum": 0.8,
            "weight_decay": 1e-4,
            "fedasync_alpha": 0.5,
            "fedasync_staleness_power": 0.4,
            "fedbuff_buffer_size": 2,
            "async_concurrency": 2,
            "network_latency_s": 0.02,
            "network_bandwidth_bytes_per_s": 1e6,
            "deadline_seconds": 12.0,
        }
        # dtype=None hashes as the *effective* process-wide dtype, so the
        # perturbation must be the opposite of whatever is active.
        from repro.nn.dtype import resolve_dtype

        perturbations["dtype"] = (
            "float64" if resolve_dtype(None).name == "float32" else "float32"
        )
        base = config_hash(smoke_config)
        for field_name, value in perturbations.items():
            tweaked = smoke_config.with_overrides(**{field_name: value})
            assert config_hash(tweaked) != base, field_name


class TestParallelMatchesSerial:
    def test_two_workers_identical_summaries(self, sweep_configs):
        serial = run_configs(sweep_configs)
        parallel = run_configs_parallel(sweep_configs, workers=2)
        assert _summaries_json(serial) == _summaries_json(parallel)
        assert list(parallel.results) == list(sweep_configs)  # label order preserved
        assert parallel.cache_hits == []

    def test_progress_fires_for_every_label(self, sweep_configs):
        seen = []
        run_configs_parallel(sweep_configs, workers=2, progress=lambda label, _r: seen.append(label))
        assert sorted(seen) == sorted(sweep_configs)


class TestResultCache:
    def test_round_trip(self, smoke_config, tmp_path):
        suite = run_configs_parallel({"only": smoke_config}, workers=1, cache_dir=tmp_path)
        cache = ResultCache(tmp_path)
        cached = cache.get(smoke_config)
        assert cached is not None
        result, wall = cached
        assert wall > 0
        assert json.dumps(result.summary(), sort_keys=True) == json.dumps(
            suite.results["only"].summary(), sort_keys=True
        )
        assert result.num_rounds == suite.results["only"].num_rounds

    def test_warm_cache_short_circuits_execution(self, sweep_configs, tmp_path, monkeypatch):
        cold = run_configs_parallel(sweep_configs, workers=1, cache_dir=tmp_path)
        assert cold.cache_hits == []

        # A warm run must not execute anything: make execution explode.
        def _boom(item):
            raise AssertionError(f"cache miss executed {item[0]}")

        monkeypatch.setattr("repro.experiments.parallel._execute_labelled", _boom)
        warm = run_configs_parallel(sweep_configs, workers=1, cache_dir=tmp_path)
        assert sorted(warm.cache_hits) == sorted(sweep_configs)
        assert _summaries_json(warm) == _summaries_json(cold)

    @pytest.mark.parametrize("garbage", ["{not json", "null", "[]", '"a string"'])
    def test_corrupt_entry_is_a_miss(self, smoke_config, tmp_path, garbage):
        run_configs_parallel({"only": smoke_config}, workers=1, cache_dir=tmp_path)
        for path in tmp_path.glob("*.json"):
            path.write_text(garbage)
        assert ResultCache(tmp_path).get(smoke_config) is None

    def test_different_config_is_a_miss(self, smoke_config, tmp_path):
        run_configs_parallel({"only": smoke_config}, workers=1, cache_dir=tmp_path)
        assert ResultCache(tmp_path).get(smoke_config.with_overrides(seed=99)) is None


class TestRunSuitePolicy:
    def test_default_policy_is_serial(self, monkeypatch):
        from repro.experiments.parallel import active_policy

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert active_policy().is_serial

    def test_configure_routes_through_parallel(self, sweep_configs, tmp_path):
        configure(workers=2, cache_dir=tmp_path)
        first = run_suite(sweep_configs)
        assert first.cache_hits == []
        second = run_suite(sweep_configs)
        assert sorted(second.cache_hits) == sorted(sweep_configs)
        assert _summaries_json(first) == _summaries_json(second)

    def test_env_policy(self, monkeypatch, tmp_path):
        from repro.experiments.parallel import active_policy

        reset_policy()
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        policy = active_policy()
        assert policy.workers == 3
        assert policy.cache_dir == tmp_path

    def test_resolve_workers_precedence(self, monkeypatch):
        from repro.experiments.parallel import resolve_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 1
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert resolve_workers(None) == 2  # env fills in an unset flag
        assert resolve_workers(5) == 5  # explicit flag beats env
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_configure_falls_back_to_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        policy = configure()
        assert policy.workers == 2
        assert policy.cache_dir == tmp_path
