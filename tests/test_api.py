"""End-to-end tests of the public :mod:`repro.api` layer.

The acceptance-critical test here drives
``repro.api.experiment(...).run()`` streaming per-round records and checks
that the final summary is bit-for-bit identical to the golden-baseline
path (:func:`repro.fl.runtime.run_experiment` under the ``stable``
scenario, which `tests/test_golden_baselines.py` pins to the pre-refactor
values), persisted and reloaded through the RunStore.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.metrics import RoundRecord
from repro.fl.runtime import run_experiment


class TestFluentSpec:
    def test_spec_builds_the_same_config_as_the_harness(self):
        spec = (
            api.experiment("aergia")
            .dataset("fmnist")
            .partition("noniid")
            .scale("smoke")
            .scenario("churn")
            .seed(3)
        )
        config = spec.build()
        assert config == evaluation_config(
            "fmnist", "aergia", "noniid", SCALES["smoke"], seed=3, scenario="churn"
        )

    def test_specs_are_immutable_and_forkable(self):
        base = api.experiment("fedavg").dataset("fmnist").scale("smoke")
        forked = base.seed(7).scenario("churn")
        assert base.describe()["seed"] == 42
        assert base.describe()["scenario"] == "stable"
        assert forked.describe()["seed"] == 7
        assert forked.describe()["scenario"] == "churn"
        with pytest.raises(AttributeError, match="immutable"):
            base._seed = 1

    def test_invalid_names_fail_fast_with_full_listings(self):
        with pytest.raises(ValueError, match="valid algorithms: .*fedavg"):
            api.experiment("bogus")
        spec = api.experiment("fedavg")
        with pytest.raises(ValueError, match="valid datasets: .*mnist"):
            spec.dataset("bogus")
        with pytest.raises(ValueError, match="valid scenarios: .*churn"):
            spec.scenario("bogus")
        with pytest.raises(ValueError, match="valid scales: .*smoke"):
            spec.scale("bogus")
        with pytest.raises(ValueError, match="valid partitions"):
            spec.partition("bogus")

    def test_scale_defaults_to_the_environment(self):
        # conftest forces REPRO_SCALE=smoke for the whole suite.
        config = api.experiment("fedsgd").build()
        assert config.num_clients == SCALES["smoke"].num_clients

    def test_overrides_reach_the_config(self):
        config = (
            api.experiment("fedprox")
            .scale("smoke")
            .rounds(3)
            .dtype("float64")
            .override(fedprox_mu=0.2)
            .build()
        )
        assert config.rounds == 3
        assert config.dtype == "float64"
        assert config.fedprox_mu == 0.2

    def test_repr_reads_as_the_fluent_chain(self):
        spec = api.experiment("tifl").scale("smoke").seed(9)
        assert "experiment('tifl')" in repr(spec)
        assert "seed(9)" in repr(spec)


class TestStreamingRun:
    def test_streaming_summary_is_bitwise_identical_to_golden_path(self, tmp_path):
        """The acceptance criterion, end to end."""
        config = evaluation_config(
            "mnist",
            "fedavg",
            "noniid",
            SCALES["smoke"],
            seed=42,
            scenario="stable",
            dtype="float32",
        )
        spec = (
            api.experiment("fedavg")
            .dataset("mnist")
            .partition("noniid")
            .scale("smoke")
            .scenario("stable")
            .seed(42)
            .dtype("float32")
        )
        assert spec.build() == config

        streamed = []
        handle = spec.run(store=tmp_path, on_round=streamed.append)
        records = list(handle.stream())

        # Rounds streamed as they finalized, in order.
        assert [r.round_number for r in records] == [1, 2]
        assert records == streamed
        assert all(isinstance(r, RoundRecord) for r in records)

        golden = run_experiment(config).summary()
        assert handle.summary() == golden  # bit-for-bit, no approx

        # Persisted and reloaded through the RunStore: still bit-for-bit.
        stored = api.RunStore(tmp_path).get(config)
        assert stored is not None
        assert stored.load_result().summary() == golden
        replay = api.run(config, store=tmp_path)
        assert replay.loaded_from_store
        assert replay.summary() == golden

    def test_stream_yields_rounds_before_completion(self):
        """The first record is available while later rounds are unplayed."""
        handle = api.experiment("fedsgd").scale("smoke").run()
        iterator = handle.stream()
        first = next(iterator)
        assert first.round_number == 1
        assert not handle.done  # round 2 has not been simulated yet
        rest = list(iterator)
        assert handle.done
        assert [r.round_number for r in rest] == [2]

    def test_async_federator_streams_virtual_rounds(self):
        handle = api.experiment("fedbuff").scale("smoke").scenario("churn").run()
        records = list(handle.stream())
        assert len(records) == handle.result().num_rounds
        assert records[0].round_number == 1

    def test_result_drains_the_stream(self):
        handle = api.experiment("fedsgd").scale("smoke").run()
        result = handle.result()
        assert result.num_rounds == 2
        assert handle.summary() == result.summary()

    def test_run_accepts_a_plain_config(self):
        config = evaluation_config(
            "mnist", "fedsgd", "iid", SCALES["smoke"], seed=4, dtype="float32"
        )
        assert api.run(config).summary() == run_experiment(config).summary()


class TestSweep:
    def test_sweep_matches_serial_execution(self):
        configs = {
            algorithm: evaluation_config(
                "mnist", algorithm, "noniid", SCALES["smoke"], seed=6, dtype="float32"
            )
            for algorithm in ("fedavg", "fedsgd")
        }
        handle = api.sweep(configs)
        for label, config in configs.items():
            assert handle[label].summary() == run_experiment(config).summary()
        assert list(handle.labels()) == list(configs)

    def test_sweep_accepts_specs(self, tmp_path):
        specs = [
            api.experiment("fedsgd").scale("smoke").seed(s).label(f"seed{s}")
            for s in (1, 2)
        ]
        handle = api.sweep(specs, store=tmp_path)
        assert sorted(handle.labels()) == ["seed1", "seed2"]
        assert len(api.RunStore(tmp_path).runs()) == 2

    def test_duplicate_labels_rejected(self):
        specs = [api.experiment("fedsgd").scale("smoke") for _ in range(2)]
        with pytest.raises(ValueError, match="duplicate sweep label"):
            api.sweep(specs)
