"""Golden-summary regression guard for the synchronous baselines.

The round-engine refactor (dynamics/async PR) is required to be
*behaviour-preserving by default*: under the ``stable`` scenario every
synchronous baseline must reproduce its pre-refactor smoke-scale summary
bit-for-bit.  The values below were captured from the pre-refactor code
(commit 454c1d3) at smoke scale, seed 42, mnist/noniid, float32 — any
drift in them means the engine changed observable behaviour for static
clusters, which is a regression even if all behavioural tests still pass.

The configs pin ``dtype="float32"`` explicitly so the guard holds under
the CI dtype matrix (``REPRO_DTYPE=float64`` runs).
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import run_experiment

#: Pre-refactor summaries: smoke scale, mnist, noniid, seed 42, float32.
GOLDEN_SMOKE_SUMMARIES = {
    "aergia": {
        "final_accuracy": 0.25,
        "mean_round_duration_s": 1.0141021664892678,
        "peak_accuracy": 0.25,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 4.0,
        "total_time_s": 2.0282043329785355,
    },
    "deadline": {
        "final_accuracy": 0.20833333333333334,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.20833333333333334,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fedavg": {
        "final_accuracy": 0.20833333333333334,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.20833333333333334,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fednova": {
        "final_accuracy": 0.20833333333333334,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.20833333333333334,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fedprox": {
        "final_accuracy": 0.225,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.225,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fedsgd": {
        "final_accuracy": 0.19166666666666668,
        "mean_round_duration_s": 0.2892015015294536,
        "peak_accuracy": 0.225,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 0.5784030030589072,
    },
    "tifl": {
        "final_accuracy": 0.175,
        "mean_round_duration_s": 0.8634911477290501,
        "peak_accuracy": 0.175,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 7.055610987304624,
    },
}


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_SMOKE_SUMMARIES))
def test_stable_scenario_reproduces_pre_refactor_summary(algorithm):
    config = evaluation_config(
        "mnist",
        algorithm,
        "noniid",
        SCALES["smoke"],
        seed=42,
        scenario="stable",
        dtype="float32",
    )
    summary = run_experiment(config).summary()
    expected = GOLDEN_SMOKE_SUMMARIES[algorithm]
    for key, value in expected.items():
        # Exact in practice on the reference platform; the tiny tolerance
        # only absorbs cross-platform libm differences.
        assert summary[key] == pytest.approx(value, rel=1e-9, abs=1e-12), (
            algorithm,
            key,
        )
