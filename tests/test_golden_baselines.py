"""Golden-summary regression guards: sync baselines, async baselines, and
a virtualized large-cohort run.

The round-engine refactor (dynamics/async PR) is required to be
*behaviour-preserving by default*: under the ``stable`` scenario every
synchronous baseline must reproduce its pre-refactor smoke-scale summary
bit-for-bit.  The values below were captured from the pre-refactor code
(commit 454c1d3) at smoke scale, seed 42, mnist/noniid, float32 — any
drift in them means the engine changed observable behaviour for static
clusters, which is a regression even if all behavioural tests still pass.

The configs pin ``dtype="float32"`` explicitly so the guard holds under
the CI dtype matrix (``REPRO_DTYPE=float64`` runs).
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import run_experiment

#: Pre-refactor summaries: smoke scale, mnist, noniid, seed 42, float32.
GOLDEN_SMOKE_SUMMARIES = {
    "aergia": {
        "final_accuracy": 0.25,
        "mean_round_duration_s": 1.0141021664892678,
        "peak_accuracy": 0.25,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 4.0,
        "total_time_s": 2.0282043329785355,
    },
    "deadline": {
        "final_accuracy": 0.20833333333333334,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.20833333333333334,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fedavg": {
        "final_accuracy": 0.20833333333333334,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.20833333333333334,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fednova": {
        "final_accuracy": 0.20833333333333334,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.20833333333333334,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fedprox": {
        "final_accuracy": 0.225,
        "mean_round_duration_s": 1.4731316759193174,
        "peak_accuracy": 0.225,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 2.9462633518386347,
    },
    "fedsgd": {
        "final_accuracy": 0.19166666666666668,
        "mean_round_duration_s": 0.2892015015294536,
        "peak_accuracy": 0.225,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 0.5784030030589072,
    },
    "tifl": {
        "final_accuracy": 0.175,
        "mean_round_duration_s": 0.8634911477290501,
        "peak_accuracy": 0.175,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 7.055610987304624,
    },
}


#: Async-federation summaries pinned at the same workload (captured from
#: commit 94fc80d): the dispatch loop, staleness weighting and buffered
#: aggregation are deterministic, so these hold bit-for-bit too.
GOLDEN_ASYNC_SMOKE_SUMMARIES = {
    "fedasync": {
        "final_accuracy": 0.275,
        "mean_round_duration_s": 0.7656353887382176,
        "peak_accuracy": 0.275,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 1.5312707774764351,
    },
    "fedbuff": {
        "final_accuracy": 0.21666666666666667,
        "mean_round_duration_s": 0.7656353887382176,
        "peak_accuracy": 0.21666666666666667,
        "rounds": 2.0,
        "total_dropped": 0.0,
        "total_offloads": 0.0,
        "total_time_s": 1.5312707774764351,
    },
}

#: A virtualized large-cohort run pinned end-to-end: city scale (1000
#: clients, 32 per round, virtual client pool), churn scenario, reduced to
#: 2 rounds so the guard stays test-suite fast.  Any drift here means the
#: pool, the lazy partition plan or the descriptor-level churn handling
#: changed observable behaviour.
GOLDEN_CITY_CHURN_SUMMARY = {
    "final_accuracy": 0.225,
    "mean_round_duration_s": 0.7581320862172818,
    "peak_accuracy": 0.225,
    "rounds": 2.0,
    "total_dropped": 5.0,
    "total_offloads": 0.0,
    "total_time_s": 1.5162641724345636,
}


def _assert_matches(summary, expected, label):
    for key, value in expected.items():
        # Exact in practice on the reference platform; the tiny tolerance
        # only absorbs cross-platform libm differences.
        assert summary[key] == pytest.approx(value, rel=1e-9, abs=1e-12), (label, key)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_SMOKE_SUMMARIES))
def test_stable_scenario_reproduces_pre_refactor_summary(algorithm):
    config = evaluation_config(
        "mnist",
        algorithm,
        "noniid",
        SCALES["smoke"],
        seed=42,
        scenario="stable",
        dtype="float32",
    )
    summary = run_experiment(config).summary()
    _assert_matches(summary, GOLDEN_SMOKE_SUMMARIES[algorithm], algorithm)


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_ASYNC_SMOKE_SUMMARIES))
def test_async_baselines_reproduce_pinned_summary(algorithm):
    config = evaluation_config(
        "mnist",
        algorithm,
        "noniid",
        SCALES["smoke"],
        seed=42,
        scenario="stable",
        dtype="float32",
    )
    summary = run_experiment(config).summary()
    _assert_matches(summary, GOLDEN_ASYNC_SMOKE_SUMMARIES[algorithm], algorithm)


def test_city_scale_virtualized_churn_reproduces_pinned_summary():
    config = evaluation_config(
        "mnist",
        "fedavg",
        "noniid",
        SCALES["city"],
        seed=42,
        scenario="churn",
        dtype="float32",
        rounds=2,
    )
    from repro.fl.runtime import build_experiment, uses_virtual_pool

    assert uses_virtual_pool(config), "city scale must route through the virtual pool"
    handle = build_experiment(config)
    summary = handle.run().summary()
    _assert_matches(summary, GOLDEN_CITY_CHURN_SUMMARY, "city/churn")
    # The cohort never fully materializes: the arena stays bounded by the
    # participant count (+ headroom and any mid-flight stragglers).
    stats = handle.pool.describe()
    assert stats["cohort"] == 1000
    assert stats["peak_hydrated"] <= 2 * config.effective_clients_per_round
