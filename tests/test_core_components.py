"""Tests for the Aergia core components: profiler, freezing, scheduler,
similarity and the simulated SGX enclave."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enclave import (
    EXPECTED_MEASUREMENT,
    AttestationReport,
    EnclaveError,
    SGXEnclave,
    seal_distribution,
)
from repro.core.freezing import (
    FrozenModelPackage,
    merge_weights,
    recombine_offloaded_model,
    split_weights,
)
from repro.core.offloading import OffloadAssignment, OffloadPlan
from repro.core.profiler import OnlineProfiler, PhaseProfile, profile_model_phases
from repro.core.scheduler import ClientPerformance, calc_op, schedule_offloading
from repro.core.similarity import compute_similarity_matrix
from repro.nn.architectures import build_model
from repro.nn.model import Phase


# ---------------------------------------------------------------------------
# Online profiler
# ---------------------------------------------------------------------------
class TestOnlineProfiler:
    def _durations(self, scale=1.0):
        return {
            Phase.FORWARD_FEATURES: 0.3 * scale,
            Phase.FORWARD_CLASSIFIER: 0.05 * scale,
            Phase.BACKWARD_CLASSIFIER: 0.1 * scale,
            Phase.BACKWARD_FEATURES: 0.55 * scale,
        }

    def test_profile_means(self):
        profiler = OnlineProfiler()
        profiler.record_batch(self._durations(1.0))
        profiler.record_batch(self._durations(3.0))
        profile = profiler.profile()
        assert profile.batches_measured == 2
        assert profile.phase_seconds[Phase.BACKWARD_FEATURES] == pytest.approx(0.55 * 2.0)

    def test_overhead_is_small_and_proportional(self):
        profiler = OnlineProfiler(overhead_fraction=0.005)
        overhead = profiler.record_batch(self._durations())
        assert overhead == pytest.approx(0.005 * 1.0)

    def test_stop_prevents_recording(self):
        profiler = OnlineProfiler()
        profiler.record_batch(self._durations())
        profiler.stop()
        assert profiler.record_batch(self._durations()) == 0.0
        assert profiler.batches_recorded == 1

    def test_reset(self):
        profiler = OnlineProfiler()
        profiler.record_batch(self._durations())
        profiler.reset()
        assert profiler.batches_recorded == 0
        assert profiler.active

    def test_profile_without_batches_raises(self):
        with pytest.raises(RuntimeError):
            OnlineProfiler().profile()

    def test_negative_duration_rejected(self):
        profiler = OnlineProfiler()
        with pytest.raises(ValueError):
            profiler.record_batch({Phase.FORWARD_FEATURES: -1.0})

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ValueError):
            OnlineProfiler(overhead_fraction=0.5)

    def test_fractions_and_dominant_phase(self):
        profile = PhaseProfile(phase_seconds=self._durations(), batches_measured=1)
        fractions = profile.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert profile.dominant_phase() == Phase.BACKWARD_FEATURES

    def test_profile_model_phases_bf_dominates(self, small_mnist):
        """The paper's key observation (Figure 4): bf is the dominant phase."""
        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        profile = profile_model_phases(
            model, small_mnist.x_train, small_mnist.y_train, batches=2, batch_size=16
        )
        fractions = profile.fractions()
        assert fractions[Phase.BACKWARD_FEATURES] > 0.4
        assert profile.dominant_phase() == Phase.BACKWARD_FEATURES

    def test_profile_model_phases_preserves_weights(self, small_mnist):
        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        before = model.get_weights()
        profile_model_phases(model, small_mnist.x_train, small_mnist.y_train, batches=2, batch_size=8)
        after = model.get_weights()
        for key in before:
            assert np.allclose(before[key], after[key])


# ---------------------------------------------------------------------------
# Freezing / recombination
# ---------------------------------------------------------------------------
class TestFreezing:
    def _weights(self):
        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        return model.get_weights()

    def test_split_and_merge_roundtrip(self):
        weights = self._weights()
        features, classifier = split_weights(weights)
        merged = merge_weights(features, classifier)
        assert set(merged) == set(weights)
        for key in weights:
            assert np.allclose(merged[key], weights[key])

    def test_split_rejects_unknown_section(self):
        with pytest.raises(KeyError):
            split_weights({"bogus.W": np.zeros(2)})

    def test_merge_rejects_misplaced_keys(self):
        weights = self._weights()
        features, classifier = split_weights(weights)
        with pytest.raises(KeyError):
            merge_weights(classifier, classifier)

    def test_recombination_takes_features_from_strong_client(self):
        weak = self._weights()
        strong_model = build_model("mnist-cnn", rng=np.random.default_rng(9))
        strong_features, _ = split_weights(strong_model.get_weights())
        combined = recombine_offloaded_model(weak, strong_features)
        _, weak_classifier = split_weights(weak)
        for key, value in strong_features.items():
            assert np.allclose(combined[key], value)
        for key, value in weak_classifier.items():
            assert np.allclose(combined[key], value)

    def test_recombination_requires_feature_weights(self):
        weak = self._weights()
        with pytest.raises(ValueError):
            recombine_offloaded_model(weak, {})

    def test_recombination_ignores_strong_client_classifier_keys(self):
        """Strong-client classifier keys are dropped in favour of the weak's."""
        weak = self._weights()
        strong_model = build_model("mnist-cnn", rng=np.random.default_rng(9))
        strong_full = strong_model.get_weights()  # includes classifier keys
        combined = recombine_offloaded_model(weak, strong_full)
        strong_features, strong_classifier = split_weights(strong_full)
        _, weak_classifier = split_weights(weak)
        assert set(combined) == set(weak)
        for key, value in strong_features.items():
            assert np.allclose(combined[key], value)
        for key, value in weak_classifier.items():
            # The weak client's classifier wins over the strong client's.
            assert np.allclose(combined[key], value)
            if not np.allclose(value, strong_classifier[key]):  # skip zero-init biases
                assert not np.allclose(combined[key], strong_classifier[key])

    def test_frozen_package_validation(self):
        weights = self._weights()
        package = FrozenModelPackage(1, 3, weights, batches_to_train=5)
        assert package.payload_bytes() > 0
        with pytest.raises(ValueError):
            FrozenModelPackage(1, 3, weights, batches_to_train=-1)
        with pytest.raises(ValueError):
            FrozenModelPackage(1, 3, {}, batches_to_train=1)

    def test_frozen_package_flat_snapshot_roundtrip(self):
        """from_model packages the flat vector; load_into restores it exactly."""
        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        package = FrozenModelPackage.from_model(
            model, source_client_id=1, round_number=3, batches_to_train=5
        )
        assert package.flat_weights is not None
        assert package.num_parameters() == model.num_parameters()
        other = build_model("mnist-cnn", rng=np.random.default_rng(42))
        package.load_into(other)
        assert np.array_equal(other.get_flat_weights(), model.get_flat_weights())

    def test_payload_bytes_independent_of_compute_dtype(self):
        """Wire size is charged at the canonical width in both dtypes."""
        from repro.nn.dtype import using_dtype
        from repro.simulation.network import WIRE_BYTES_PER_PARAM

        sizes = {}
        for dtype in ("float32", "float64"):
            with using_dtype(dtype):
                model = build_model("mnist-cnn", rng=np.random.default_rng(0))
            package = FrozenModelPackage.from_model(model, 1, 3, batches_to_train=2)
            sizes[dtype] = package.payload_bytes()
        assert sizes["float32"] == sizes["float64"]
        assert sizes["float64"] == model.num_parameters() * WIRE_BYTES_PER_PARAM


# ---------------------------------------------------------------------------
# Offload plan containers
# ---------------------------------------------------------------------------
class TestOffloadPlan:
    def test_add_and_lookup(self):
        plan = OffloadPlan(round_number=1, mean_compute_time=10.0)
        plan.add(OffloadAssignment(1, 2, 4, 8.0, 8.0))
        assert plan.assignment_for(1).strong_client == 2
        assert plan.assignment_received_by(2).weak_client == 1
        assert plan.assignment_for(99) is None
        assert plan.as_dict() == {1: 2}
        assert plan.num_offloads == 1

    def test_duplicate_sender_rejected(self):
        plan = OffloadPlan(round_number=1, mean_compute_time=10.0)
        plan.add(OffloadAssignment(1, 2, 4, 8.0, 8.0))
        with pytest.raises(ValueError):
            plan.add(OffloadAssignment(1, 3, 4, 8.0, 8.0))

    def test_strong_client_used_once(self):
        plan = OffloadPlan(round_number=1, mean_compute_time=10.0)
        plan.add(OffloadAssignment(1, 2, 4, 8.0, 8.0))
        with pytest.raises(ValueError):
            plan.add(OffloadAssignment(3, 2, 4, 8.0, 8.0))

    def test_assignment_validation(self):
        with pytest.raises(ValueError):
            OffloadAssignment(1, 1, 4, 8.0, 8.0)
        with pytest.raises(ValueError):
            OffloadAssignment(1, 2, -4, 8.0, 8.0)
        with pytest.raises(ValueError):
            OffloadAssignment(1, 2, 4, -8.0, 8.0)


# ---------------------------------------------------------------------------
# Algorithm 2 (calc_op)
# ---------------------------------------------------------------------------
class TestCalcOp:
    def test_no_offloading_when_no_remaining_updates(self):
        ct, d = calc_op(1.0, 0.5, 0.3, weak_remaining=0, strong_remaining=10)
        assert d == 0
        assert ct == pytest.approx(0.0)

    def test_offloading_helps_slow_client(self):
        ct, d = calc_op(2.0, 0.5, 0.3, weak_remaining=20, strong_remaining=20)
        assert d > 0
        assert ct < 20 * 2.0

    def test_returned_ct_matches_objective_at_d(self):
        weak_t, strong_t, strong_x, ra, rb = 2.0, 0.5, 0.3, 16, 12
        ct, d = calc_op(weak_t, strong_t, strong_x, ra, rb)
        expected = max((ra - d) * weak_t + d * strong_x, (rb - d) * strong_t)
        assert ct == pytest.approx(expected)

    def test_result_is_global_minimum(self):
        weak_t, strong_t, strong_x, ra, rb = 3.0, 0.4, 0.25, 24, 30
        ct, _ = calc_op(weak_t, strong_t, strong_x, ra, rb)
        brute_force = min(
            max((ra - d) * weak_t + d * strong_x, (rb - d) * strong_t)
            for d in range(0, min(ra, rb) + 1)
        )
        assert ct == pytest.approx(brute_force)

    def test_validation(self):
        with pytest.raises(ValueError):
            calc_op(-1.0, 1.0, 1.0, 5, 5)
        with pytest.raises(ValueError):
            calc_op(1.0, 1.0, 1.0, -5, 5)

    @given(
        weak_t=st.floats(min_value=0.5, max_value=5.0),
        strong_t=st.floats(min_value=0.05, max_value=0.5),
        x_factor=st.floats(min_value=0.3, max_value=1.0),
        ra=st.integers(min_value=1, max_value=40),
        rb=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_calc_op_never_worse_than_no_offloading(self, weak_t, strong_t, x_factor, ra, rb):
        """Property: the optimal offloading point never hurts the weak client."""
        strong_x = strong_t * x_factor
        ct, d = calc_op(weak_t, strong_t, strong_x, ra, rb)
        assert 0 <= d <= min(ra, rb)
        assert ct <= ra * weak_t + 1e-9


# ---------------------------------------------------------------------------
# Algorithm 1 (schedule_offloading)
# ---------------------------------------------------------------------------
def _performance(client_id: int, batch_seconds: float, remaining: int = 20) -> ClientPerformance:
    head = batch_seconds * 0.35
    tail = batch_seconds * 0.65
    return ClientPerformance(
        client_id=client_id,
        head_seconds=head,
        tail_seconds=tail,
        feature_training_seconds=batch_seconds * 0.9,
        remaining_batches=remaining,
    )


class TestScheduleOffloading:
    def test_empty_input_gives_empty_plan(self):
        decision = schedule_offloading([])
        assert decision.plan.num_offloads == 0

    def test_homogeneous_clients_need_no_offloading(self):
        performances = [_performance(i, 1.0) for i in range(4)]
        decision = schedule_offloading(performances)
        assert decision.plan.num_offloads == 0

    def test_slow_client_offloads_to_fast_client(self):
        performances = [
            _performance(0, 4.0),
            _performance(1, 0.5),
            _performance(2, 0.6),
        ]
        decision = schedule_offloading(performances)
        plan = decision.plan
        assert plan.num_offloads >= 1
        assignment = plan.assignment_for(0)
        assert assignment is not None
        assert assignment.strong_client in (1, 2)
        assert assignment.offload_batches > 0
        assert assignment.estimated_duration < performances[0].estimated_completion

    def test_each_strong_client_used_at_most_once(self):
        performances = [
            _performance(0, 5.0),
            _performance(1, 4.0),
            _performance(2, 3.5),
            _performance(3, 0.4),
        ]
        decision = schedule_offloading(performances)
        receivers = decision.plan.receiving_clients()
        assert len(receivers) == len(set(receivers))
        assert decision.plan.num_offloads <= 1  # only one strong client available

    def test_weakest_client_is_served_first(self):
        performances = [
            _performance(0, 3.0),
            _performance(1, 6.0),   # the weakest
            _performance(2, 0.4),
        ]
        decision = schedule_offloading(performances)
        # With a single strong client, the weakest sender (client 1) gets it.
        assert decision.plan.assignment_for(1) is not None

    def test_similarity_steers_choice_of_strong_client(self):
        performances = [
            _performance(0, 4.0),
            _performance(1, 0.5),
            _performance(2, 0.5),
        ]
        # Client 2's data is identical to client 0's; client 1's is disjoint.
        similarity = np.array(
            [
                [0.0, 0.9, 0.0],
                [0.9, 0.0, 0.9],
                [0.0, 0.9, 0.0],
            ]
        )
        decision = schedule_offloading(
            performances,
            similarity=similarity,
            similarity_client_ids=[0, 1, 2],
            similarity_factor=5.0,
        )
        assignment = decision.plan.assignment_for(0)
        assert assignment is not None
        assert assignment.strong_client == 2

    def test_zero_similarity_factor_ignores_matrix(self):
        performances = [
            _performance(0, 4.0),
            _performance(1, 0.4),
            _performance(2, 0.6),
        ]
        similarity = np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 1.0],
                [0.0, 1.0, 0.0],
            ]
        )
        with_sim = schedule_offloading(
            performances, similarity=similarity, similarity_client_ids=[0, 1, 2], similarity_factor=0.0
        )
        without = schedule_offloading(performances, similarity=None)
        assert with_sim.plan.as_dict() == without.plan.as_dict()

    def test_mean_compute_time_matches_definition(self):
        performances = [_performance(0, 2.0, remaining=10), _performance(1, 1.0, remaining=10)]
        decision = schedule_offloading(performances)
        expected = np.mean([p.estimated_completion for p in performances])
        assert decision.mean_compute_time == pytest.approx(expected)

    def test_duplicate_client_ids_rejected(self):
        with pytest.raises(ValueError):
            schedule_offloading([_performance(0, 1.0), _performance(0, 2.0)])

    def test_similarity_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            schedule_offloading(
                [_performance(0, 1.0), _performance(1, 2.0)],
                similarity=np.zeros((3, 3)),
                similarity_client_ids=[0, 1],
            )

    def test_negative_similarity_factor_rejected(self):
        with pytest.raises(ValueError):
            schedule_offloading([_performance(0, 1.0)], similarity_factor=-1.0)

    @given(
        speeds=st.lists(st.floats(min_value=0.2, max_value=6.0), min_size=2, max_size=10),
        remaining=st.integers(min_value=4, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_invariants(self, speeds, remaining):
        """Property: the plan never pairs a client with itself, never reuses a
        strong client, and only offloads when it improves the weak client's
        projected completion time."""
        performances = [_performance(i, s, remaining=remaining) for i, s in enumerate(speeds)]
        decision = schedule_offloading(performances)
        plan = decision.plan
        strong_clients = plan.receiving_clients()
        assert len(strong_clients) == len(set(strong_clients))
        by_id = {p.client_id: p for p in performances}
        for assignment in plan:
            assert assignment.weak_client != assignment.strong_client
            assert assignment.offload_batches > 0
            assert assignment.estimated_duration <= by_id[assignment.weak_client].estimated_completion


# ---------------------------------------------------------------------------
# Similarity + enclave
# ---------------------------------------------------------------------------
class TestSimilarityAndEnclave:
    def _counts(self):
        return {
            0: np.array([10, 0, 0, 0]),
            1: np.array([0, 10, 0, 0]),
            2: np.array([5, 5, 0, 0]),
        }

    def test_similarity_matrix_structure(self):
        similarity = compute_similarity_matrix(self._counts())
        assert similarity.client_ids == (0, 1, 2)
        assert similarity.matrix.shape == (3, 3)
        assert similarity.value(0, 0) == pytest.approx(0.0)
        assert similarity.value(0, 1) > similarity.value(0, 2)

    def test_submatrix(self):
        similarity = compute_similarity_matrix(self._counts())
        sub = similarity.submatrix([2, 0])
        assert sub.client_ids == (2, 0)
        assert sub.value(2, 0) == pytest.approx(similarity.value(0, 2))
        with pytest.raises(KeyError):
            similarity.submatrix([0, 99])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compute_similarity_matrix({0: np.ones(3), 1: np.ones(4)})
        with pytest.raises(ValueError):
            compute_similarity_matrix({})

    def test_attestation_and_submission_flow(self):
        enclave = SGXEnclave(seed=3)
        report = enclave.attest()
        assert report.verify()
        for client_id, counts in self._counts().items():
            enclave.submit_distribution(seal_distribution(client_id, counts, report))
        assert enclave.num_submissions == 3
        similarity = enclave.similarity_matrix()
        expected = compute_similarity_matrix(self._counts())
        assert np.allclose(similarity.matrix, expected.matrix)

    def test_ciphertext_differs_from_plaintext(self):
        enclave = SGXEnclave(seed=3)
        report = enclave.attest()
        counts = np.array([1, 2, 3, 4], dtype=np.int64)
        sealed = seal_distribution(0, counts, report)
        assert sealed.ciphertext != counts.tobytes()

    def test_clients_refuse_unverified_enclave(self):
        bogus = AttestationReport(measurement="not-the-right-enclave", session_key=b"0" * 32)
        with pytest.raises(EnclaveError):
            seal_distribution(0, np.array([1, 2]), bogus)
        assert not bogus.verify(EXPECTED_MEASUREMENT)

    def test_raw_distributions_never_leave_the_enclave(self):
        enclave = SGXEnclave(seed=1)
        report = enclave.attest()
        enclave.submit_distribution(seal_distribution(0, np.array([1, 2, 3]), report))
        with pytest.raises(EnclaveError):
            _ = enclave.distributions
        with pytest.raises(EnclaveError):
            _ = enclave.raw_distributions

    def test_similarity_before_submissions_raises(self):
        with pytest.raises(EnclaveError):
            SGXEnclave().similarity_matrix()

    def test_tampered_ciphertext_detected_or_rejected(self):
        enclave = SGXEnclave(seed=3)
        report = enclave.attest()
        sealed = seal_distribution(0, np.array([3, 4, 5], dtype=np.int64), report)
        tampered = type(sealed)(
            client_id=sealed.client_id,
            ciphertext=sealed.ciphertext[:-4],
            num_classes=sealed.num_classes,
        )
        with pytest.raises(EnclaveError):
            enclave.submit_distribution(tampered)

    def test_seal_validation(self):
        report = SGXEnclave().attest()
        with pytest.raises(ValueError):
            seal_distribution(0, np.array([[1, 2]]), report)
        with pytest.raises(ValueError):
            seal_distribution(0, np.array([-1, 2]), report)
