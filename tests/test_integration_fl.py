"""End-to-end integration tests of the federated-learning runtime.

These tests run complete (tiny) experiments through the simulator and check
the invariants that the paper's system guarantees: synchronous rounds,
correct participation accounting, deadline drops, tier-based selection,
and so on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig, ResourceConfig
from repro.fl.runtime import build_experiment, federator_class, run_experiment


def smoke(algorithm: str, **overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        dataset="mnist",
        architecture="mnist-cnn",
        algorithm=algorithm,
        num_clients=4,
        rounds=2,
        local_updates=5,
        profile_batches=2,
        train_size=320,
        test_size=80,
        batch_size=16,
        resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.1, 0.3, 0.8, 1.0)),
        seed=11,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestRuntimeAssembly:
    def test_build_experiment_creates_all_parts(self):
        handle = build_experiment(smoke("fedavg"))
        assert handle.cluster.num_clients == 4
        assert len(handle.clients) == 4
        assert len(handle.partitions) == 4
        assert handle.federator.algorithm_name == "fedavg"

    def test_partition_data_reaches_clients(self):
        handle = build_experiment(smoke("fedavg"))
        total = sum(client.num_samples for client in handle.clients)
        assert total == handle.config.train_size

    def test_federator_class_registry(self):
        for name in ("fedavg", "fedprox", "fednova", "fedsgd", "tifl", "deadline", "aergia"):
            assert federator_class(name).algorithm_name == name
        with pytest.raises(ValueError):
            federator_class("not-an-algorithm")

    def test_unknown_algorithm_error_lists_valid_names(self):
        from repro.fl.runtime import available_algorithms

        assert {"fedavg", "tifl", "aergia"} <= set(available_algorithms())
        with pytest.raises(ValueError, match="valid algorithms: .*aergia.*tifl"):
            federator_class("not-an-algorithm")

    def test_explicit_speeds_too_short_rejected(self):
        config = smoke(
            "fedavg",
            resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.5,)),
        )
        with pytest.raises(ValueError):
            build_experiment(config)


class TestFedAvgRounds:
    def test_runs_requested_number_of_rounds(self):
        result = run_experiment(smoke("fedavg"))
        assert result.num_rounds == 2
        assert [r.round_number for r in result.rounds] == [1, 2]

    def test_all_clients_complete_every_round(self):
        result = run_experiment(smoke("fedavg"))
        for record in result.rounds:
            assert sorted(record.completed_clients) == sorted(record.selected_clients)
            assert not record.dropped_clients

    def test_round_times_are_monotone(self):
        result = run_experiment(smoke("fedavg"))
        for record in result.rounds:
            assert record.end_time > record.start_time
        assert result.rounds[1].start_time >= result.rounds[0].end_time

    def test_accuracy_is_probability(self):
        result = run_experiment(smoke("fedavg"))
        for record in result.rounds:
            assert 0.0 <= record.test_accuracy <= 1.0

    def test_deterministic_given_seed(self):
        a = run_experiment(smoke("fedavg"))
        b = run_experiment(smoke("fedavg"))
        assert a.total_time == pytest.approx(b.total_time)
        assert a.final_accuracy == pytest.approx(b.final_accuracy)

    def test_client_subset_selection(self):
        result = run_experiment(smoke("fedavg", clients_per_round=2))
        for record in result.rounds:
            assert len(record.selected_clients) == 2

    def test_straggler_determines_round_duration(self):
        """With one very slow client, the round must last about as long as that
        client needs, confirming the synchronous-bottleneck behaviour that
        motivates the paper (Figure 1(a))."""
        slow = run_experiment(
            smoke("fedavg", resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.05, 1.0, 1.0, 1.0)))
        )
        fast = run_experiment(
            smoke("fedavg", resources=ResourceConfig(scheme="explicit", explicit_speeds=(1.0, 1.0, 1.0, 1.0)))
        )
        assert slow.mean_round_duration() > 3 * fast.mean_round_duration()


class TestBaselineBehaviours:
    def test_fedsgd_runs_single_local_update(self):
        handle = build_experiment(smoke("fedsgd"))
        result = handle.run()
        assert result.num_rounds == 2
        # Every client performed exactly one local step per round.
        for client in handle.clients:
            assert client.total_batches_trained == 2

    def test_fedprox_clients_use_proximal_optimizer(self):
        from repro.nn.optim import ProximalSGD

        handle = build_experiment(smoke("fedprox"))
        assert all(isinstance(c.optimizer, ProximalSGD) for c in handle.clients)
        result = handle.run()
        assert result.num_rounds == 2

    def test_fednova_completes_and_aggregates(self):
        result = run_experiment(smoke("fednova"))
        assert result.num_rounds == 2
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_tifl_selects_within_a_tier(self):
        handle = build_experiment(smoke("tifl", num_clients=6, clients_per_round=2,
                                        resources=ResourceConfig(scheme="uniform", low=0.1, high=1.0)))
        federator = handle.federator
        result = handle.run()
        # Every round's selection must be a subset of a single tier.
        for record in result.rounds:
            tiers_used = {federator.tier_of(cid) for cid in record.selected_clients}
            assert len(tiers_used) == 1

    def test_tifl_charges_offline_profiling_setup_time(self):
        handle = build_experiment(smoke("tifl"))
        result = handle.run()
        assert handle.federator.setup_time > 0
        assert result.total_time >= handle.federator.setup_time

    def test_deadline_drops_slow_clients(self):
        # Deadline chosen so the slowest client (speed 0.1) cannot finish.
        fast_only = run_experiment(smoke("deadline", deadline_seconds=None))
        typical_round = fast_only.mean_round_duration()
        tight = run_experiment(smoke("deadline", deadline_seconds=typical_round * 0.3))
        assert tight.total_dropped() > 0
        assert tight.mean_round_duration() < fast_only.mean_round_duration()

    def test_deadline_none_behaves_like_fedavg(self):
        deadline = run_experiment(smoke("deadline", deadline_seconds=None))
        fedavg = run_experiment(smoke("fedavg"))
        assert deadline.total_time == pytest.approx(fedavg.total_time)
        assert deadline.final_accuracy == pytest.approx(fedavg.final_accuracy)

    def test_deadline_drops_exclude_straggler_contributions_on_noniid(self):
        """The mechanism behind Figure 1(c): with non-IID data, dropped
        stragglers' (unique) contributions never reach the aggregation.  The
        accuracy impact itself is measured at bench scale by
        ``benchmarks/bench_fig1_motivation.py``."""
        base = smoke(
            "deadline",
            partition="noniid",
            classes_per_client=2,
            rounds=3,
            num_clients=5,
            resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.08, 0.9, 1.0, 1.0, 1.0)),
        )
        unbounded = run_experiment(base.with_overrides(deadline_seconds=None))
        tight = run_experiment(
            base.with_overrides(deadline_seconds=unbounded.mean_round_duration() * 0.25)
        )
        assert tight.total_dropped() > 0
        # The slow client (id 0) is the one being dropped.
        dropped_ids = {cid for record in tight.rounds for cid in record.dropped_clients}
        assert 0 in dropped_ids
        completed_tight = sum(len(r.completed_clients) for r in tight.rounds)
        completed_unbounded = sum(len(r.completed_clients) for r in unbounded.rounds)
        assert completed_tight < completed_unbounded
