"""Seeded randomized invariant tests across federators and scenarios.

Rather than pinning values, these tests draw *random but reproducible*
configurations (all randomness from one seeded generator) and assert the
structural invariants every run must satisfy:

* serial and process-pool execution produce identical summaries,
* aggregation is a proper weighted average (weights sum to 1),
* clients dropped from a round never contribute to its aggregate,
* a run replayed from the persistent RunStore matches the live run
  bit for bit,
* scale profiles reject impossible participation counts at resolution
  time (regression for the ``clients_per_round > num_clients`` gap).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments.parallel import run_configs_parallel
from repro.experiments.runner import run_configs
from repro.experiments.workloads import SCALES, ScaleProfile, evaluation_config, scenario_dynamics
from repro.fl.aggregation import fedavg_aggregate_flat, fednova_aggregate_flat
from repro.fl.config import ExperimentConfig
from repro.fl.runtime import run_experiment

SYNC_ALGORITHMS = ("fedavg", "fedprox", "fednova", "fedsgd", "tifl", "deadline", "aergia")
ASYNC_ALGORITHMS = ("fedasync", "fedbuff")
SCENARIOS_UNDER_TEST = ("stable", "churn", "straggler-burst")


def _random_config(rng: np.random.Generator) -> ExperimentConfig:
    """Draw one small random configuration (deterministic given the rng)."""
    algorithm = str(rng.choice(SYNC_ALGORITHMS + ASYNC_ALGORITHMS))
    scenario = str(rng.choice(SCENARIOS_UNDER_TEST))
    num_clients = int(rng.integers(4, 9))
    return evaluation_config(
        "mnist",
        algorithm,
        str(rng.choice(["iid", "noniid"])),
        SCALES["smoke"],
        seed=int(rng.integers(0, 10_000)),
        scenario=scenario,
        dtype="float32",
        num_clients=num_clients,
        clients_per_round=int(rng.integers(2, num_clients + 1)),
        rounds=int(rng.integers(2, 4)),
        local_updates=int(rng.integers(3, 6)),
        client_pool=str(rng.choice(["eager", "virtual"])),
    )


def _random_configs(seed: int, count: int):
    rng = np.random.default_rng(seed)
    return {f"cfg{i}": _random_config(rng) for i in range(count)}


# ---------------------------------------------------------------------------
# Serial == parallel
# ---------------------------------------------------------------------------
def test_random_configs_serial_equals_parallel():
    configs = _random_configs(seed=2026, count=3)
    serial = run_configs(configs)
    parallel = run_configs_parallel(configs, workers=2)
    for label in configs:
        assert serial[label].summary() == parallel[label].summary(), (
            label,
            configs[label].describe(),
        )


# ---------------------------------------------------------------------------
# Aggregation weight properties
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("trial", range(5))
def test_fedavg_aggregation_weights_sum_to_one(trial):
    rng = np.random.default_rng(100 + trial)
    num_clients = int(rng.integers(2, 7))
    dim = int(rng.integers(3, 40))
    rows = [rng.normal(size=dim) for _ in range(num_clients)]
    sizes = [int(rng.integers(1, 50)) for _ in range(num_clients)]
    aggregated = fedavg_aggregate_flat(rows, sizes)
    weights = np.asarray(sizes, dtype=np.float64) / sum(sizes)
    assert weights.sum() == pytest.approx(1.0)
    expected = sum(w * row for w, row in zip(weights, rows))
    np.testing.assert_allclose(aggregated, expected, rtol=1e-6, atol=1e-9)


@pytest.mark.parametrize("trial", range(3))
def test_fednova_aggregation_is_convex_in_normalized_updates(trial):
    rng = np.random.default_rng(300 + trial)
    num_clients = int(rng.integers(2, 6))
    dim = 12
    global_flat = rng.normal(size=dim)
    rows = [global_flat + rng.normal(scale=0.1, size=dim) for _ in range(num_clients)]
    sizes = [int(rng.integers(1, 30)) for _ in range(num_clients)]
    steps = [int(rng.integers(1, 8)) for _ in range(num_clients)]
    aggregated = fednova_aggregate_flat(global_flat, rows, sizes, steps)
    assert aggregated.shape == global_flat.shape
    # With homogeneous step counts FedNova degenerates to a weighted
    # average: identical client updates must be reproduced exactly (the
    # weights form a distribution).  Heterogeneous steps deliberately
    # rescale, so the fixed point only holds in the homogeneous case.
    same_steps = [steps[0]] * num_clients
    same = fednova_aggregate_flat(global_flat, [rows[0]] * num_clients, sizes, same_steps)
    np.testing.assert_allclose(same, rows[0], rtol=1e-7, atol=1e-10)


# ---------------------------------------------------------------------------
# Dropped clients never contribute
# ---------------------------------------------------------------------------
def test_dropped_clients_never_contribute():
    rng = np.random.default_rng(77)
    seen_drops = 0
    for _ in range(4):
        config = _random_config(rng)
        # Churn + a tight per-client timeout maximises dropout pressure.
        config = config.with_overrides(dynamics=scenario_dynamics("churn", SCALES["smoke"]))
        result = run_experiment(config)
        for record in result.rounds:
            completed, dropped = set(record.completed_clients), set(record.dropped_clients)
            assert not completed & dropped, (
                f"round {record.round_number} of {config.describe()} counts "
                f"{completed & dropped} as both completed and dropped"
            )
            assert set(record.selected_clients) >= completed | dropped
            seen_drops += len(dropped)
    assert seen_drops > 0, "churn configs produced no dropouts at all"


# ---------------------------------------------------------------------------
# Store replay == live run
# ---------------------------------------------------------------------------
def test_replayed_rounds_match_live_rounds(tmp_path):
    import repro.api as api

    rng = np.random.default_rng(11)
    for _ in range(2):
        config = _random_config(rng)
        live = api.run(config, store=tmp_path)
        live_records = list(live.stream())
        assert not live.loaded_from_store
        replay = api.run(config, store=tmp_path)
        replay_records = list(replay.stream())
        assert replay.loaded_from_store, "second run must be served from the store"
        assert replay.summary() == live.summary()
        assert len(replay_records) == len(live_records)
        for a, b in zip(live_records, replay_records):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)


# ---------------------------------------------------------------------------
# Materialization knobs are not part of a run's identity
# ---------------------------------------------------------------------------
def test_materialization_knobs_do_not_change_cache_or_store_keys():
    """Virtual and eager runs are bit-identical, so they share keys — and
    archives written before the knobs existed keep theirs."""
    from repro.api.store import run_key
    from repro.experiments.parallel import config_hash

    config = evaluation_config(
        "mnist", "fedavg", "noniid", SCALES["smoke"], seed=1, dtype="float32"
    )
    for variant in (
        config.with_overrides(client_pool="eager"),
        config.with_overrides(client_pool="virtual"),
        config.with_overrides(client_pool="virtual", pool_slots=5),
    ):
        assert run_key(variant) == run_key(config)
        assert config_hash(variant) == config_hash(config)
    # Result-relevant fields still distinguish runs.
    assert run_key(config.with_overrides(seed=2)) != run_key(config)


# ---------------------------------------------------------------------------
# Profile-resolution validation (regression: clients_per_round gap)
# ---------------------------------------------------------------------------
class TestScaleProfileValidation:
    def _profile(self, **overrides):
        fields = dict(
            name="bogus",
            num_clients=4,
            clients_per_round=4,
            rounds=2,
            local_updates=2,
            profile_batches=0,
            train_size=64,
            test_size=16,
            batch_size=8,
        )
        fields.update(overrides)
        return ScaleProfile(**fields)

    def test_clients_per_round_beyond_cohort_is_rejected(self):
        with pytest.raises(ValueError, match="clients_per_round"):
            self._profile(clients_per_round=5)

    def test_non_positive_sizes_are_rejected(self):
        for field_name in ("num_clients", "rounds", "local_updates", "batch_size"):
            with pytest.raises(ValueError, match=field_name):
                self._profile(**{field_name: 0})
        with pytest.raises(ValueError, match="cifar"):
            self._profile(cifar_client_fraction=0.0)

    def test_cifar_rounding_keeps_configs_valid(self):
        # Regression: cifar_client_fraction shrinks the cohort after the
        # profile was validated; the resolved config must still satisfy
        # clients_per_round <= num_clients for every registered scale.
        for name, profile in SCALES.items():
            config = evaluation_config("cifar10", "fedavg", "iid", profile, seed=1)
            assert config.clients_per_round <= config.num_clients, name

    def test_valid_profile_accepted(self):
        profile = self._profile()
        assert not profile.is_partial_participation
        assert self._profile(num_clients=8).is_partial_participation
