"""Sharded multi-process simulation: bitwise parity and integration.

The contract under test (docs/architecture.md, "Sharded simulation &
hierarchical federation"): partitioning the virtual cohort across worker
processes — with per-shard seeded RNG streams, edge aggregators and a
root federator merge — produces **bitwise identical** round records,
weights and summaries to the single-process run, for every registered
federator under stable and churn scenarios.  ``shards`` is therefore a
pure execution knob, excluded from ``run_key``/``config_hash`` exactly
like ``batched_execution`` (only the opt-in ``shard_aggregate="partial"``
mode, which reorders the floating-point reduction, is hash-relevant).

Also pinned here: deterministic contiguous shard ownership
(:class:`ShardPlan`), remote-shard cancellation on churn, worker-death
respawn with identical results, SIGKILL crash/resume byte-identity on
the sharded path, and bounded executor lifecycle (pool release).
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal

import numpy as np
import pytest

import repro.api as api
from crash_harness import read_rounds_bytes, run_and_crash
from repro.api import RunStore, run, run_key
from repro.experiments.parallel import canonical_config
from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import (
    available_algorithms,
    build_experiment,
    uses_sharded_execution,
)
from repro.simulation.shard import (
    HierarchicalAggregator,
    ShardedClientExecutor,
    ShardPlan,
)


def _round_dicts(result):
    return [dataclasses.asdict(record) for record in result.rounds]


def _smoke_config(algorithm, partition, scenario, seed=42, **overrides):
    return evaluation_config(
        "mnist",
        algorithm,
        partition,
        SCALES["smoke"],
        seed=seed,
        scenario=scenario,
        dtype="float32",
        **overrides,
    )


def _run_with_stats(config):
    handle = build_experiment(config)
    result = handle.run()
    executor = handle.cluster.batched_executor
    return result, (dict(executor.stats) if executor is not None else None), handle


def _assert_bitwise_equal_runs(config_sharded, config_off):
    result_sharded, stats, handle = _run_with_stats(config_sharded)
    result_off, stats_off, _ = _run_with_stats(config_off)
    assert stats_off is None, "batched_execution='off' must not install an executor"
    assert _round_dicts(result_sharded) == _round_dicts(result_off)
    assert json.dumps(result_sharded.summary(), sort_keys=True) == json.dumps(
        result_off.summary(), sort_keys=True
    )
    return result_sharded, stats, handle


# ---------------------------------------------------------------------------
# Shard ownership: deterministic, contiguous, O(1) lookup
# ---------------------------------------------------------------------------
class TestShardPlan:
    def test_ranges_are_contiguous_and_cover_everything(self):
        for num_clients, num_shards in [(10, 3), (100, 7), (4, 4), (5, 2), (9, 1)]:
            plan = ShardPlan(num_clients, num_shards)
            seen = []
            for shard in range(num_shards):
                owned = plan.owned(shard)
                seen.extend(owned)
                for cid in owned:
                    assert plan.shard_of(cid) == shard
            assert seen == list(range(num_clients))

    def test_split_matches_array_split_convention(self):
        # First (num_clients % num_shards) shards get the extra client —
        # the same convention as np.array_split, so sorted-cid order IS
        # shard-block concatenation order (the "exact" hierarchy relies
        # on this).
        plan = ShardPlan(10, 3)
        assert [len(plan.owned(s)) for s in range(3)] == [4, 3, 3]
        expected = np.array_split(np.arange(10), 3)
        for shard, block in enumerate(expected):
            assert list(plan.owned(shard)) == list(block)

    def test_out_of_range_client_rejected(self):
        plan = ShardPlan(10, 2)
        with pytest.raises(ValueError):
            plan.shard_of(10)
        with pytest.raises(ValueError):
            plan.shard_of(-1)


# ---------------------------------------------------------------------------
# The headline invariant: sharded == single-process, bitwise, everywhere
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scenario", ["stable", "churn"])
@pytest.mark.parametrize("algorithm", available_algorithms())
def test_sharded_run_is_bitwise_identical_to_single_process(algorithm, scenario):
    kwargs = dict(train_size=384)
    _assert_bitwise_equal_runs(
        _smoke_config(
            algorithm, "iid", scenario, batched_execution="on", shards=2, **kwargs
        ),
        _smoke_config(algorithm, "iid", scenario, batched_execution="off", **kwargs),
    )


def test_sharded_cohorts_really_run_on_workers():
    kwargs = dict(train_size=384)
    _, stats, handle = _assert_bitwise_equal_runs(
        _smoke_config("fedavg", "iid", "stable", batched_execution="on", shards=2, **kwargs),
        _smoke_config("fedavg", "iid", "stable", batched_execution="off", **kwargs),
    )
    assert isinstance(handle.cluster.batched_executor, ShardedClientExecutor)
    assert stats["shard_jobs"] > 0
    assert stats["fast_materializations"] > 0
    assert stats["edge_reduces"] > 0
    assert stats["root_merges"] > 0


def test_ragged_shard_counts_stay_bitwise():
    # 4 clients over 3 shards: ownership [2, 1, 1] — uneven sub-cohorts.
    kwargs = dict(train_size=384)
    _, stats, _ = _assert_bitwise_equal_runs(
        _smoke_config("fedprox", "iid", "stable", batched_execution="on", shards=3, **kwargs),
        _smoke_config("fedprox", "iid", "stable", batched_execution="off", **kwargs),
    )
    assert stats["shard_jobs"] > 0


def test_more_shards_than_clients_per_round_is_fine():
    kwargs = dict(train_size=384)
    _assert_bitwise_equal_runs(
        _smoke_config("fedavg", "iid", "stable", batched_execution="on", shards=4, **kwargs),
        _smoke_config("fedavg", "iid", "stable", batched_execution="off", **kwargs),
    )


# ---------------------------------------------------------------------------
# Churn: events targeting clients owned by a remote shard
# ---------------------------------------------------------------------------
def test_churn_cancels_reach_the_owning_shard():
    kwargs = dict(train_size=384, rounds=4)
    config_sharded = _smoke_config(
        "fedavg", "iid", "churn", batched_execution="on", shards=2, **kwargs
    )
    config_off = _smoke_config("fedavg", "iid", "churn", batched_execution="off", **kwargs)

    # Drive the sharded run manually so the worker pool can be inspected
    # before the executor releases it.  Workers are cached across runs, so
    # their counters are cumulative: compare against a pre-run baseline.
    handle = build_experiment(config_sharded)
    executor = handle.cluster.batched_executor
    try:
        before = sum(
            entry["stats"]["cancels_received"]
            for entry in executor.pool.snapshot() or []
            if entry
        )
        handle.federator.start()
        handle.cluster.run()
        stats = dict(executor.stats)
        snapshot = executor.shard_snapshot()
    finally:
        executor.close()
    result_off, _, _ = _run_with_stats(config_off)
    assert _round_dicts(handle.federator.result) == _round_dicts(result_off)

    # Mid-round disconnects abandoned lanes whose work had already been
    # dispatched to a worker: the owning shard must have been told.
    assert stats["abandons"] > 0
    assert stats["remote_cancels"] > 0
    received = sum(
        entry["stats"]["cancels_received"]
        for entry in snapshot["workers"] or []
        if entry
    )
    assert received - before == stats["remote_cancels"]


# ---------------------------------------------------------------------------
# Worker failure: SIGKILLed worker respawns, results unchanged
# ---------------------------------------------------------------------------
def test_worker_sigkill_mid_run_respawns_and_stays_bitwise():
    kwargs = dict(train_size=384, rounds=3)
    config_off = _smoke_config("fedavg", "iid", "stable", batched_execution="off", **kwargs)
    config_on = _smoke_config(
        "fedavg", "iid", "stable", batched_execution="on", shards=2, **kwargs
    )
    golden, _, _ = _run_with_stats(config_off)

    handle = build_experiment(config_on)
    executor = handle.cluster.batched_executor
    killed = []

    def kill_worker(record):
        if not killed:
            pid = executor.pool.worker_pid(0)
            os.kill(pid, signal.SIGKILL)
            # Join so the death lands before the next round dispatches:
            # the respawn path, not scheduling luck, is what's under test.
            executor.pool._workers[0].process.join(timeout=30)
            killed.append(pid)

    handle.federator.result.add_round_listener(kill_worker)
    result = handle.run()
    assert killed, "the kill listener never fired"
    stats = dict(executor.stats)
    assert stats["worker_restarts"] >= 1
    assert _round_dicts(result) == _round_dicts(golden)


# ---------------------------------------------------------------------------
# Crash/resume: SIGKILL on the sharded path, byte-identical continuation
# ---------------------------------------------------------------------------
def test_sharded_sigkill_crash_resumes_bitwise_identical(tmp_path):
    """A sharded run crash-resumed must converge to the same bytes as an
    uninterrupted *single-process* run: checkpoints carry only the merged
    shard bookkeeping, never worker state (workers are stateless)."""
    base = dict(checkpoint_interval=1, rounds=4, train_size=384)
    config_off = (
        api.experiment("fedavg")
        .dataset("mnist")
        .partition("iid")
        .scale("smoke")
        .scenario("stable")
        .seed(7)
        .override(batched_execution="off", **base)
        .build()
    )
    config_sharded = config_off.with_overrides(batched_execution="on", shards=2)
    golden_store = RunStore(tmp_path / "golden")
    golden = run(config_off, store=golden_store).result()

    store_dir = tmp_path / "crashed"
    run_and_crash(config_sharded, store_dir, crash_round=2)
    store = RunStore(store_dir)
    resumed = run(config_sharded, store=store, resume=True)
    result = resumed.result()
    assert resumed.resumed_from_round is not None, "run did not resume"
    assert _round_dicts(result) == _round_dicts(golden)
    key = run_key(config_sharded)
    assert key == run_key(config_off)
    assert read_rounds_bytes(store.root, key) == read_rounds_bytes(golden_store.root, key)


def test_shard_snapshot_round_trips_through_checkpoint():
    config = _smoke_config(
        "fedavg", "iid", "stable", batched_execution="on", shards=2, train_size=384
    )
    _, stats, handle = _run_with_stats(config)
    executor = handle.cluster.batched_executor
    snapshot = executor.shard_snapshot()
    assert snapshot["num_shards"] == 2
    assert snapshot["aggregate_mode"] == "exact"
    assert len(snapshot["shard_seeds"]) == 2
    assert snapshot["stats"]["shard_jobs"] == stats["shard_jobs"]

    # Restoring merges the persisted counters into a fresh executor.
    fresh = ShardedClientExecutor(
        num_shards=2,
        num_clients=config.num_clients,
        architecture=config.architecture,
        seed=config.seed,
    )
    try:
        assert fresh._shard_seeds == executor._shard_seeds  # seed-derived
        fresh.restore_shard_snapshot(snapshot)
        assert fresh.stats["shard_jobs"] == stats["shard_jobs"]
        fresh.restore_shard_snapshot(None)  # unsharded snapshot: no-op
    finally:
        fresh.close()


# ---------------------------------------------------------------------------
# Hierarchical aggregation: exact vs partial
# ---------------------------------------------------------------------------
def test_exact_hierarchy_is_bitwise_flat_reduction():
    rng = np.random.default_rng(0)
    rows = [rng.standard_normal(32).astype(np.float32) for _ in range(6)]
    sizes = [3, 1, 4, 1, 5, 9]
    client_ids = [0, 1, 2, 5, 7, 9]
    from repro.fl.aggregation import fedavg_aggregate_flat

    stats = {"edge_reduces": 0, "root_merges": 0}
    hierarchy = HierarchicalAggregator(ShardPlan(10, 3), "exact", stats)
    merged = hierarchy.aggregate_flat(rows, sizes, client_ids)
    flat = fedavg_aggregate_flat(rows, sizes)
    np.testing.assert_array_equal(merged, flat)
    assert stats["root_merges"] == 1


def test_partial_hierarchy_is_close_but_need_not_be_bitwise():
    rng = np.random.default_rng(1)
    rows = [rng.standard_normal(64).astype(np.float32) for _ in range(8)]
    sizes = [2, 3, 5, 7, 1, 4, 6, 8]
    client_ids = list(range(8))
    from repro.fl.aggregation import fedavg_aggregate_flat

    stats = {"edge_reduces": 0, "root_merges": 0}
    hierarchy = HierarchicalAggregator(ShardPlan(8, 3), "partial", stats)
    merged = hierarchy.aggregate_flat(rows, sizes, client_ids)
    flat = fedavg_aggregate_flat(rows, sizes)
    np.testing.assert_allclose(merged, flat, rtol=1e-5, atol=1e-6)
    assert stats["edge_reduces"] == 3  # one partial per owning shard


def test_partial_mode_runs_close_to_exact():
    config_exact = _smoke_config(
        "fedavg", "iid", "stable", batched_execution="on", shards=2, train_size=384
    )
    config_partial = config_exact.with_overrides(shard_aggregate="partial")
    result_exact, _, _ = _run_with_stats(config_exact)
    result_partial, stats, _ = _run_with_stats(config_partial)
    assert stats["edge_reduces"] > 0
    summary_exact = result_exact.summary()
    summary_partial = result_partial.summary()
    assert summary_exact.keys() == summary_partial.keys()
    np.testing.assert_allclose(
        summary_partial["final_accuracy"],
        summary_exact["final_accuracy"],
        atol=1e-3,
    )


# ---------------------------------------------------------------------------
# Hashing: shards is an execution knob; partial mode is hash-relevant
# ---------------------------------------------------------------------------
def test_shards_are_excluded_from_run_key():
    config = _smoke_config("fedavg", "iid", "stable")
    sharded = config.with_overrides(batched_execution="on", shards=4)
    assert run_key(config) == run_key(sharded)
    canonical = canonical_config(sharded)
    assert "shards" not in canonical
    assert "shard_aggregate" not in canonical
    assert "batched_execution" not in canonical


def test_partial_aggregation_changes_the_run_key():
    config = _smoke_config("fedavg", "iid", "stable", batched_execution="on", shards=2)
    partial = config.with_overrides(shard_aggregate="partial")
    assert run_key(config) != run_key(partial)
    canonical = canonical_config(partial)
    # Partial reductions depend on the shard topology, so both knobs are
    # part of the identity in that mode.
    assert canonical["shard_aggregate"] == "partial"
    assert canonical["shards"] == 2


def test_config_validation_rejects_bad_shard_knobs():
    with pytest.raises(ValueError, match="shards"):
        _smoke_config("fedavg", "iid", "stable", shards=0)
    with pytest.raises(ValueError, match="shard_aggregate"):
        _smoke_config("fedavg", "iid", "stable", shard_aggregate="fuzzy")


# ---------------------------------------------------------------------------
# Gating: when the sharded executor is (not) installed
# ---------------------------------------------------------------------------
def test_sharded_execution_gating():
    base = _smoke_config("fedavg", "iid", "stable", batched_execution="on")
    assert not uses_sharded_execution(base)  # shards=1
    assert uses_sharded_execution(base.with_overrides(shards=2))
    off = _smoke_config("fedavg", "iid", "stable", batched_execution="off", shards=2)
    assert not uses_sharded_execution(off)  # no batched engine, no shards
    # Async federators never plan synchronous cohorts: sharding is inert.
    for algorithm in ("fedbuff", "fedasync"):
        config = _smoke_config(algorithm, "iid", "stable", batched_execution="on", shards=2)
        assert not uses_sharded_execution(config)
        handle = build_experiment(config)
        assert not isinstance(handle.cluster.batched_executor, ShardedClientExecutor)


def test_executor_pool_is_released_after_run():
    from repro.simulation import shard as shard_mod

    config = _smoke_config(
        "fedavg", "iid", "stable", batched_execution="on", shards=2, train_size=384
    )
    _, _, handle = _run_with_stats(config)
    executor = handle.cluster.batched_executor
    # run() closed the executor; its pool slot is back in the cache (or
    # closed), and the executor no longer references it.
    assert executor._pool is None
    cached = shard_mod._POOL_CACHE.get(2)
    if cached is not None:
        assert cached.idle()
