"""Tests for the dataset substrate: generation, partitioning, EMD, loading."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import (
    DATASETS,
    load_dataset,
    make_dataset,
    synthetic_cifar10,
    synthetic_mnist,
)
from repro.data.distribution import (
    class_distribution,
    earth_movers_distance,
    heterogeneity_index,
    normalized_class_distribution,
    similarity_matrix,
)
from repro.data.loader import BatchLoader
from repro.data.partition import (
    partition_dataset,
    partition_dirichlet,
    partition_iid,
    partition_noniid_label_skew,
)


class TestDatasets:
    def test_mnist_shapes(self):
        dataset = synthetic_mnist(train_size=120, test_size=40)
        assert dataset.x_train.shape == (120, 1, 28, 28)
        assert dataset.x_test.shape == (40, 1, 28, 28)
        assert dataset.input_shape == (1, 28, 28)
        assert dataset.num_classes == 10

    def test_cifar_shapes(self):
        dataset = synthetic_cifar10(train_size=60, test_size=20)
        assert dataset.x_train.shape == (60, 3, 32, 32)

    def test_labels_in_range(self):
        dataset = synthetic_mnist(train_size=150, test_size=30)
        assert dataset.y_train.min() >= 0
        assert dataset.y_train.max() < 10

    def test_determinism(self):
        a = synthetic_mnist(train_size=50, test_size=10, seed=11)
        b = synthetic_mnist(train_size=50, test_size=10, seed=11)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = synthetic_mnist(train_size=50, test_size=10, seed=1)
        b = synthetic_mnist(train_size=50, test_size=10, seed=2)
        assert not np.allclose(a.x_train, b.x_train)

    def test_values_standardised(self):
        dataset = synthetic_mnist(train_size=100, test_size=10)
        assert dataset.x_train.min() >= -1.0 - 1e-9
        assert dataset.x_train.max() <= 1.0 + 1e-9

    def test_subset(self):
        dataset = synthetic_mnist(train_size=100, test_size=10)
        subset = dataset.subset(np.arange(10))
        assert subset.train_size == 10
        assert subset.test_size == dataset.test_size
        assert np.array_equal(subset.y_train, dataset.y_train[:10])

    def test_dataset_is_learnable(self):
        """A linear probe beats chance comfortably, so FL accuracy is meaningful.

        With a single prototype per class the problem is nearly linearly
        separable; the default multi-mode datasets are intentionally harder
        (a CNN is needed to do well, see TestRealArchitectureTraining).
        """
        dataset = make_dataset(
            "probe", (1, 12, 12), 4, 400, 100, noise=0.3, seed=2, modes_per_class=1
        )
        x = np.hstack([dataset.x_train.reshape(dataset.train_size, -1), np.ones((400, 1))])
        x_test = np.hstack([dataset.x_test.reshape(dataset.test_size, -1), np.ones((100, 1))])
        # One-vs-all least squares probe.
        targets = np.eye(4)[dataset.y_train]
        w, *_ = np.linalg.lstsq(x, targets, rcond=None)
        predictions = np.argmax(x_test @ w, axis=1)
        assert np.mean(predictions == dataset.y_test) > 0.5

    def test_registry_and_loader_function(self):
        assert set(DATASETS) == {"mnist", "fmnist", "cifar10", "cifar100"}
        dataset = load_dataset("fmnist", train_size=40, test_size=10, seed=3)
        assert dataset.name == "fmnist"
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            make_dataset("x", (1, 8, 8), 3, 0, 10)
        with pytest.raises(ValueError):
            make_dataset("x", (1, 8, 8), 1, 10, 10)
        with pytest.raises(ValueError):
            make_dataset("x", (1, 8, 8), 3, 10, 10, modes_per_class=0)


class TestPartitioning:
    def test_iid_partitions_are_disjoint_and_cover(self, tiny_dataset):
        partitions = partition_iid(tiny_dataset, 5, rng=np.random.default_rng(0))
        all_indices = np.concatenate([p.indices for p in partitions])
        assert len(all_indices) == tiny_dataset.train_size
        assert len(np.unique(all_indices)) == tiny_dataset.train_size

    def test_iid_sizes_balanced(self, tiny_dataset):
        partitions = partition_iid(tiny_dataset, 4, rng=np.random.default_rng(0))
        sizes = [p.size for p in partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_iid_class_counts_match_indices(self, tiny_dataset):
        partitions = partition_iid(tiny_dataset, 3, rng=np.random.default_rng(0))
        for p in partitions:
            counts = np.bincount(tiny_dataset.y_train[p.indices], minlength=3)
            assert np.array_equal(counts, p.class_counts)

    def test_noniid_respects_classes_per_client(self, tiny_dataset):
        partitions = partition_noniid_label_skew(
            tiny_dataset, 4, classes_per_client=2, rng=np.random.default_rng(0)
        )
        for p in partitions:
            classes_owned = np.count_nonzero(p.class_counts)
            assert classes_owned <= 2

    def test_noniid_partitions_are_disjoint(self, tiny_dataset):
        partitions = partition_noniid_label_skew(
            tiny_dataset, 4, classes_per_client=2, rng=np.random.default_rng(1)
        )
        all_indices = np.concatenate([p.indices for p in partitions if p.size])
        assert len(all_indices) == len(np.unique(all_indices))

    def test_noniid_invalid_classes_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            partition_noniid_label_skew(tiny_dataset, 3, classes_per_client=0)
        with pytest.raises(ValueError):
            partition_noniid_label_skew(tiny_dataset, 3, classes_per_client=99)

    def test_noniid_is_more_heterogeneous_than_iid(self, small_mnist):
        iid = partition_iid(small_mnist, 6, rng=np.random.default_rng(0))
        noniid = partition_noniid_label_skew(
            small_mnist, 6, classes_per_client=2, rng=np.random.default_rng(0)
        )
        iid_h = heterogeneity_index([p.class_counts for p in iid])
        noniid_h = heterogeneity_index([p.class_counts for p in noniid])
        assert noniid_h > iid_h

    def test_dirichlet_partition_covers_all_samples(self, tiny_dataset):
        partitions = partition_dirichlet(tiny_dataset, 4, alpha=0.5, rng=np.random.default_rng(0))
        total = sum(p.size for p in partitions)
        assert total == tiny_dataset.train_size

    def test_dirichlet_invalid_alpha(self, tiny_dataset):
        with pytest.raises(ValueError):
            partition_dirichlet(tiny_dataset, 4, alpha=0.0)

    def test_dispatch_by_scheme(self, tiny_dataset):
        for scheme in ("iid", "noniid", "dirichlet"):
            partitions = partition_dataset(tiny_dataset, 3, scheme=scheme)
            assert len(partitions) == 3
        with pytest.raises(ValueError):
            partition_dataset(tiny_dataset, 3, scheme="bogus")

    def test_too_many_clients_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            partition_iid(tiny_dataset, tiny_dataset.train_size + 1)


class TestDistributionAndEMD:
    def test_class_distribution_counts(self):
        labels = np.array([0, 0, 1, 2, 2, 2])
        assert np.array_equal(class_distribution(labels, 4), [2, 1, 3, 0])

    def test_class_distribution_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            class_distribution(np.array([0, 5]), 3)

    def test_normalisation(self):
        dist = normalized_class_distribution(np.array([2.0, 2.0]))
        assert np.allclose(dist, [0.5, 0.5])

    def test_normalisation_of_empty_counts_is_uniform(self):
        dist = normalized_class_distribution(np.zeros(4))
        assert np.allclose(dist, 0.25)

    def test_emd_identity(self):
        p = np.array([3.0, 1.0, 0.0])
        assert earth_movers_distance(p, p) == pytest.approx(0.0)

    def test_emd_symmetry(self):
        p = np.array([3.0, 1.0, 0.0])
        q = np.array([0.0, 1.0, 3.0])
        assert earth_movers_distance(p, q) == pytest.approx(earth_movers_distance(q, p))

    def test_emd_disjoint_greater_than_overlapping(self):
        a = np.array([1.0, 0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 0.0, 1.0])
        c = np.array([0.5, 0.5, 0.0, 0.0])
        assert earth_movers_distance(a, b) > earth_movers_distance(a, c)

    def test_emd_shape_mismatch(self):
        with pytest.raises(ValueError):
            earth_movers_distance(np.ones(3), np.ones(4))

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=8),
        st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_emd_properties(self, counts_a, counts_b):
        """EMD is non-negative, bounded by 1 and symmetric for equal lengths."""
        size = min(len(counts_a), len(counts_b))
        a = np.array(counts_a[:size], dtype=float)
        b = np.array(counts_b[:size], dtype=float)
        d_ab = earth_movers_distance(a, b)
        d_ba = earth_movers_distance(b, a)
        assert 0.0 <= d_ab <= 1.0
        assert d_ab == pytest.approx(d_ba)

    def test_similarity_matrix_properties(self):
        counts = [np.array([5, 0, 0]), np.array([0, 5, 0]), np.array([2, 2, 1])]
        matrix = similarity_matrix(counts)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_similarity_metric_validation(self):
        with pytest.raises(ValueError):
            similarity_matrix([np.ones(3)], metric="cosine")

    def test_heterogeneity_index_empty_raises(self):
        with pytest.raises(ValueError):
            heterogeneity_index([])


class TestBatchLoader:
    def test_epoch_covers_all_samples(self):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        loader = BatchLoader(x, y, batch_size=3, seed=0)
        seen = []
        for xb, _ in loader.epoch():
            seen.extend(xb.ravel().astype(int).tolist())
        assert sorted(seen) == list(range(10))

    def test_len_counts_partial_batch(self):
        loader = BatchLoader(np.zeros((10, 1)), np.zeros(10, dtype=int), batch_size=4)
        assert len(loader) == 3

    def test_reshuffles_between_epochs(self):
        x = np.arange(32).reshape(32, 1).astype(float)
        y = np.arange(32)
        loader = BatchLoader(x, y, batch_size=32, seed=3)
        first = loader.next_batch()[0].ravel().tolist()
        second = loader.next_batch()[0].ravel().tolist()
        assert sorted(first) == sorted(second)
        assert first != second

    def test_without_shuffle_order_is_stable(self):
        x = np.arange(6).reshape(6, 1).astype(float)
        y = np.arange(6)
        loader = BatchLoader(x, y, batch_size=2, shuffle=False)
        assert loader.next_batch()[0].ravel().tolist() == [0.0, 1.0]

    def test_batches_per_epochs(self):
        loader = BatchLoader(np.zeros((10, 1)), np.zeros(10, dtype=int), batch_size=5)
        assert loader.batches_per_epochs(3) == 6
        with pytest.raises(ValueError):
            loader.batches_per_epochs(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((3, 1)), np.zeros(2, dtype=int), batch_size=1)
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((3, 1)), np.zeros(3, dtype=int), batch_size=0)
        empty = BatchLoader(np.zeros((0, 1)), np.zeros(0, dtype=int), batch_size=2)
        with pytest.raises(ValueError):
            empty.next_batch()
