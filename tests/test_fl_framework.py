"""Tests for configuration, aggregation, selection and metrics of the FL runtime."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import (
    average_metric,
    fedavg_aggregate,
    fednova_aggregate,
    weighted_average,
)
from repro.fl.config import ExperimentConfig, ResourceConfig
from repro.fl.messages import ProfileReport
from repro.fl.metrics import ExperimentResult, RoundRecord, round_duration_density
from repro.fl.selection import select_all, select_random, select_weighted
from repro.nn.model import Phase


class TestExperimentConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.effective_clients_per_round == config.num_clients

    def test_clients_per_round_override(self):
        config = ExperimentConfig(num_clients=10, clients_per_round=3)
        assert config.effective_clients_per_round == 3

    def test_with_overrides_returns_new_object(self):
        config = ExperimentConfig()
        other = config.with_overrides(rounds=9)
        assert other.rounds == 9
        assert config.rounds != 9 or config.rounds == other.rounds  # original untouched
        assert other is not config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clients": 0},
            {"rounds": 0},
            {"local_updates": 0},
            {"batch_size": 0},
            {"clients_per_round": 50},
            {"profile_batches": 99},
            {"partition": "bogus"},
            {"deadline_seconds": -1.0},
            {"aergia_similarity_factor": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_resource_config_validation(self):
        with pytest.raises(ValueError):
            ResourceConfig(scheme="bogus")
        with pytest.raises(ValueError):
            ResourceConfig(scheme="explicit", explicit_speeds=None)

    def test_describe_contains_key_fields(self):
        description = ExperimentConfig(algorithm="aergia").describe()
        assert description["algorithm"] == "aergia"
        assert "rounds" in description and "dataset" in description


def _weights(value: float):
    return {"a": np.full((2, 2), value), "b": np.full((3,), value)}


class TestAggregation:
    def test_weighted_average_simple(self):
        result = weighted_average([_weights(0.0), _weights(2.0)], [1.0, 1.0])
        assert np.allclose(result["a"], 1.0)

    def test_weighted_average_respects_coefficients(self):
        result = weighted_average([_weights(0.0), _weights(4.0)], [3.0, 1.0])
        assert np.allclose(result["a"], 1.0)

    def test_weighted_average_validation(self):
        with pytest.raises(ValueError):
            weighted_average([], [])
        with pytest.raises(ValueError):
            weighted_average([_weights(1.0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_average([_weights(1.0), _weights(2.0)], [0.0, 0.0])
        with pytest.raises(ValueError):
            weighted_average([_weights(1.0), {"a": np.zeros((2, 2))}], [1.0, 1.0])

    def test_weighted_average_of_empty_dicts_is_empty(self):
        assert weighted_average([{}, {}], [1.0, 1.0]) == {}

    def test_fedavg_weighting_by_samples(self):
        result = fedavg_aggregate([(_weights(0.0), 100), (_weights(10.0), 300)])
        assert np.allclose(result["a"], 7.5)

    def test_fedavg_zero_sizes_fall_back_to_uniform(self):
        result = fedavg_aggregate([(_weights(0.0), 0), (_weights(10.0), 0)])
        assert np.allclose(result["a"], 5.0)

    def test_fedavg_empty_raises(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([])

    def test_fednova_reduces_to_fedavg_for_equal_steps(self):
        global_weights = _weights(1.0)
        updates = [(_weights(0.0), 50, 10), (_weights(2.0), 50, 10)]
        nova = fednova_aggregate(global_weights, updates)
        avg = fedavg_aggregate([(w, n) for w, n, _ in updates])
        for key in nova:
            assert np.allclose(nova[key], avg[key])

    def test_fednova_removes_step_count_dominance(self):
        """A client that runs many steps must not dominate the update *direction*.

        Client A runs 100 steps towards +10 (small per-step progress); client
        B runs a single step towards -1.  FedAvg is dragged towards A, while
        FedNova weights the per-step directions equally and therefore moves
        the global model in B's (negative) direction.
        """
        global_weights = _weights(0.0)
        many_steps = _weights(10.0)
        one_step = _weights(-1.0)
        nova = fednova_aggregate(global_weights, [(many_steps, 50, 100), (one_step, 50, 1)])
        avg = fedavg_aggregate([(many_steps, 50), (one_step, 50)])
        assert np.all(avg["a"] > 0)
        assert np.all(nova["a"] < 0)

    def test_fednova_empty_raises(self):
        with pytest.raises(ValueError):
            fednova_aggregate(_weights(0.0), [])

    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_fedavg_average_is_within_bounds(self, values):
        """Property: the FedAvg aggregate of scalars lies within their range."""
        updates = [({"w": np.array([v])}, 10) for v in values]
        aggregated = fedavg_aggregate(updates)["w"][0]
        assert min(values) - 1e-9 <= aggregated <= max(values) + 1e-9

    def test_average_metric(self):
        assert average_metric([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
        assert average_metric([1.0, 3.0], [0.0, 0.0]) == pytest.approx(2.0)
        assert average_metric([], []) == 0.0


class TestSelection:
    def test_select_all_sorted(self):
        assert select_all([3, 1, 2]) == [1, 2, 3]

    def test_select_random_size_and_membership(self):
        chosen = select_random(range(10), 4, rng=np.random.default_rng(0))
        assert len(chosen) == 4
        assert all(c in range(10) for c in chosen)
        assert chosen == sorted(chosen)

    def test_select_random_validation(self):
        with pytest.raises(ValueError):
            select_random(range(3), 0)
        with pytest.raises(ValueError):
            select_random(range(3), 5)

    def test_select_random_is_deterministic_given_rng(self):
        a = select_random(range(20), 5, rng=np.random.default_rng(7))
        b = select_random(range(20), 5, rng=np.random.default_rng(7))
        assert a == b

    def test_select_weighted_prefers_heavy_clients(self):
        counts = {i: 0 for i in range(4)}
        rng = np.random.default_rng(0)
        for _ in range(200):
            for c in select_weighted(range(4), [10.0, 1.0, 1.0, 1.0], 1, rng=rng):
                counts[c] += 1
        assert counts[0] > counts[1]

    def test_select_weighted_validation(self):
        with pytest.raises(ValueError):
            select_weighted(range(3), [1.0], 1)
        with pytest.raises(ValueError):
            select_weighted(range(3), [0.0, 0.0, 0.0], 1)
        with pytest.raises(ValueError):
            select_weighted(range(3), [1.0, 1.0, 1.0], 9)


def _record(round_number: int, start: float, end: float, accuracy: float, dropped=0) -> RoundRecord:
    return RoundRecord(
        round_number=round_number,
        start_time=start,
        end_time=end,
        selected_clients=[0, 1, 2],
        completed_clients=[0, 1, 2],
        dropped_clients=list(range(dropped)),
        test_accuracy=accuracy,
        test_loss=1.0 - accuracy,
    )


class TestMetrics:
    def test_round_duration(self):
        assert _record(1, 2.0, 5.0, 0.5).duration == pytest.approx(3.0)

    def test_experiment_result_totals(self):
        result = ExperimentResult(algorithm="fedavg", dataset="mnist", config={})
        result.setup_time = 10.0
        result.add_round(_record(1, 10.0, 20.0, 0.4))
        result.add_round(_record(2, 20.0, 35.0, 0.6))
        assert result.total_time == pytest.approx(10.0 + 25.0)
        assert result.final_accuracy == pytest.approx(0.6)
        assert result.peak_accuracy == pytest.approx(0.6)
        assert result.mean_round_duration() == pytest.approx(12.5)

    def test_empty_result(self):
        result = ExperimentResult(algorithm="x", dataset="y", config={})
        assert result.total_time == 0.0
        assert result.final_accuracy == 0.0
        assert result.mean_round_duration() == 0.0

    def test_accuracy_timeline_monotone_time(self):
        result = ExperimentResult(algorithm="x", dataset="y", config={})
        result.add_round(_record(1, 0.0, 3.0, 0.3))
        result.add_round(_record(2, 3.0, 7.0, 0.5))
        timeline = result.accuracy_timeline()
        assert timeline[0][0] < timeline[1][0]
        assert timeline[1][1] == pytest.approx(0.5)

    def test_summary_keys(self):
        result = ExperimentResult(algorithm="x", dataset="y", config={})
        result.add_round(_record(1, 0.0, 3.0, 0.3, dropped=2))
        summary = result.summary()
        assert summary["total_dropped"] == 2.0
        assert set(summary) >= {"final_accuracy", "total_time_s", "mean_round_duration_s"}

    def test_round_duration_density(self):
        fast = ExperimentResult(algorithm="fast", dataset="d", config={})
        slow = ExperimentResult(algorithm="slow", dataset="d", config={})
        for i in range(6):
            fast.add_round(_record(i, i * 1.0, i * 1.0 + 1.0, 0.5))
            slow.add_round(_record(i, i * 4.0, i * 4.0 + 4.0, 0.5))
        densities = round_duration_density([fast, slow], bins=8)
        centers_fast, density_fast = densities["fast"]
        centers_slow, density_slow = densities["slow"]
        assert np.array_equal(centers_fast, centers_slow)
        # The fast algorithm's mass sits at smaller durations than the slow one's.
        fast_mean = np.average(centers_fast, weights=density_fast + 1e-12)
        slow_mean = np.average(centers_slow, weights=density_slow + 1e-12)
        assert fast_mean < slow_mean

    def test_round_duration_density_empty_raises(self):
        with pytest.raises(ValueError):
            round_duration_density([])


class TestProfileReport:
    def _report(self):
        return ProfileReport(
            client_id=3,
            round_number=1,
            phase_seconds={
                Phase.FORWARD_FEATURES: 0.2,
                Phase.FORWARD_CLASSIFIER: 0.05,
                Phase.BACKWARD_CLASSIFIER: 0.1,
                Phase.BACKWARD_FEATURES: 0.65,
            },
            batches_measured=4,
            batches_completed=5,
            remaining_batches=11,
        )

    def test_derived_quantities(self):
        report = self._report()
        assert report.batch_seconds == pytest.approx(1.0)
        assert report.head_seconds == pytest.approx(0.35)
        assert report.tail_seconds == pytest.approx(0.65)
        assert report.feature_training_seconds == pytest.approx(0.9)
        assert report.estimated_remaining_seconds == pytest.approx(11.0)
