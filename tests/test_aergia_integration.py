"""Integration tests of the full Aergia pipeline: profiling, scheduling,
freezing, offloading, recombination and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig, ResourceConfig
from repro.fl.runtime import build_experiment, run_experiment


def aergia_config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        dataset="mnist",
        architecture="mnist-cnn",
        algorithm="aergia",
        num_clients=4,
        rounds=2,
        local_updates=6,
        profile_batches=2,
        train_size=320,
        test_size=80,
        batch_size=16,
        # One clear straggler and three strong clients.
        resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.1, 0.8, 0.9, 1.0)),
        seed=13,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestAergiaEndToEnd:
    def test_offloads_happen_in_heterogeneous_cluster(self):
        handle = build_experiment(aergia_config())
        result = handle.run()
        assert result.total_offloads() >= 1
        assert handle.federator.total_offloads() >= 1

    def test_offloading_plans_target_the_straggler(self):
        handle = build_experiment(aergia_config())
        handle.run()
        plans = handle.federator.plans
        assert plans, "at least one round should produce a plan"
        for plan in plans.values():
            for assignment in plan:
                # Client 0 is the only clear straggler in this cluster.
                assert assignment.weak_client == 0
                assert assignment.strong_client != 0

    def test_weak_client_froze_and_strong_client_trained_offloaded_model(self):
        handle = build_experiment(aergia_config(rounds=1))
        handle.run()
        weak = handle.clients[0]
        assert weak.total_offloads_sent >= 1
        trained = sum(c.total_offloads_trained for c in handle.clients[1:])
        assert trained == weak.total_offloads_sent

    def test_faster_than_fedavg_on_heterogeneous_cluster(self):
        aergia = run_experiment(aergia_config(rounds=2))
        fedavg = run_experiment(aergia_config(rounds=2, algorithm="fedavg"))
        assert aergia.total_time < fedavg.total_time

    def test_accuracy_comparable_to_fedavg(self):
        aergia = run_experiment(aergia_config(rounds=3))
        fedavg = run_experiment(aergia_config(rounds=3, algorithm="fedavg"))
        assert aergia.final_accuracy >= fedavg.final_accuracy - 0.15

    def test_no_offloading_in_homogeneous_cluster(self):
        config = aergia_config(
            resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.5, 0.5, 0.5, 0.5))
        )
        handle = build_experiment(config)
        result = handle.run()
        assert result.total_offloads() == 0
        # Without offloading Aergia degenerates to FedAvg-style rounds.
        for record in result.rounds:
            assert sorted(record.completed_clients) == sorted(record.selected_clients)

    def test_all_rounds_complete_and_every_client_contributes(self):
        handle = build_experiment(aergia_config(rounds=3))
        result = handle.run()
        assert result.num_rounds == 3
        for record in result.rounds:
            assert sorted(record.completed_clients) == sorted(record.selected_clients)

    def test_results_deterministic_given_seed(self):
        a = run_experiment(aergia_config())
        b = run_experiment(aergia_config())
        assert a.total_time == pytest.approx(b.total_time)
        assert a.final_accuracy == pytest.approx(b.final_accuracy)

    def test_similarity_factor_zero_still_runs(self):
        result = run_experiment(aergia_config(aergia_similarity_factor=0.0))
        assert result.num_rounds == 2

    def test_noniid_partition_with_similarity(self):
        result = run_experiment(
            aergia_config(partition="noniid", classes_per_client=3, rounds=2)
        )
        assert result.num_rounds == 2
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_global_model_changes_across_rounds(self):
        handle = build_experiment(aergia_config(rounds=2))
        initial = {k: v.copy() for k, v in handle.federator.global_weights.items()}
        handle.run()
        final = handle.federator.global_weights
        changed = any(not np.allclose(initial[k], final[k]) for k in initial)
        assert changed

    def test_subset_selection_with_offloading(self):
        config = aergia_config(
            num_clients=6,
            clients_per_round=3,
            resources=ResourceConfig(
                scheme="explicit", explicit_speeds=(0.1, 0.15, 0.9, 0.95, 1.0, 1.0)
            ),
        )
        result = run_experiment(config)
        assert result.num_rounds == 2
        for record in result.rounds:
            assert len(record.selected_clients) == 3


class TestAergiaAgainstTiFL:
    def test_aergia_beats_tifl_total_time_with_high_intra_tier_variance(self):
        """§5.2 observes that TiFL cannot equalise rounds when the intra-tier
        CPU variance is high; Aergia's per-round offloading can."""
        config = aergia_config(
            num_clients=6,
            rounds=3,
            resources=ResourceConfig(
                scheme="explicit", explicit_speeds=(0.08, 0.55, 0.6, 0.65, 0.9, 1.0)
            ),
        )
        aergia = run_experiment(config)
        tifl = run_experiment(config.with_overrides(algorithm="tifl"))
        assert aergia.total_time < tifl.total_time
