"""Checkpoint/resume: crash injection and bitwise-identical continuation.

The contract under test (docs/architecture.md, "Checkpoint & resume"): a
run interrupted at any point after a checkpoint and resumed with
``resume=True`` produces **byte-for-byte** the same ``rounds.jsonl`` and
the same summary as the same configuration run uninterrupted.

Two interruption modes are exercised:

* *in-process*: the streaming iterator is closed mid-run (the writer
  aborts, the manifest stays ``running``), covering every federator;
* *crash-injection*: a subprocess SIGKILLs itself at a seeded-random
  round (see ``tests/crash_harness.py``) — no cleanup code runs at all —
  for the paper's headline algorithms across stable and churning
  clusters.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

import repro.api as api
from crash_harness import read_rounds_bytes, round_dicts, run_and_crash
from repro.api import RunStore, run, run_key
from repro.api.store import CHECKPOINT_NAME
from repro.fl.checkpoint import capture_snapshot, load_checkpoint
from repro.fl.runtime import build_experiment

ALL_ALGORITHMS = [
    "aergia",
    "deadline",
    "fedavg",
    "fedasync",
    "fedbuff",
    "fednova",
    "fedprox",
    "fedsgd",
    "tifl",
]

#: Algorithms pinned through the full subprocess SIGKILL harness (the
#: paper's system plus one sync and one async baseline).
CRASH_ALGORITHMS = ["aergia", "fedavg", "fedbuff"]

ROUNDS = 4


def make_config(algorithm, scenario="churn", **overrides):
    merged = {"checkpoint_interval": 1, "rounds": ROUNDS, **overrides}
    return (
        api.experiment(algorithm)
        .dataset("mnist")
        .partition("iid")
        .scale("smoke")
        .scenario(scenario)
        .seed(7)
        .override(**merged)
        .build()
    )


def golden_run(config, tmp_path):
    store = RunStore(tmp_path / "golden")
    return run(config, store=store).result(), store


def interrupt_after(config, store, consumed_rounds):
    """Start a store-backed run, consume a few rounds, abandon the stream."""
    handle = run(config, store=store)
    iterator = handle.stream()
    for _ in range(consumed_rounds):
        next(iterator)
    iterator.close()  # writer aborts; manifest stays "running"
    return handle


def assert_bitwise_resume(config, golden, golden_store, resumed_handle, store):
    result = resumed_handle.result()
    assert resumed_handle.resumed_from_round is not None, "run did not resume"
    assert round_dicts(result) == round_dicts(golden)
    assert json.dumps(result.summary(), sort_keys=True) == json.dumps(
        golden.summary(), sort_keys=True
    )
    key = run_key(config)
    assert read_rounds_bytes(store.root, key) == read_rounds_bytes(golden_store.root, key)
    stored = store.get(config)
    assert stored is not None, "resumed run should be complete in the store"
    assert not stored.has_checkpoint, "finalize must remove the checkpoint"


# ---------------------------------------------------------------------------
# In-process interruption: the full federator matrix
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_interrupted_run_resumes_bitwise_identical(algorithm, tmp_path):
    config = make_config(algorithm)
    golden, golden_store = golden_run(config, tmp_path)

    store = RunStore(tmp_path / "resumed")
    interrupt_after(config, store, consumed_rounds=2)
    assert store.get(config) is None, "interrupted run must not read as complete"

    resumed = run(config, store=store, resume=True)
    assert_bitwise_resume(config, golden, golden_store, resumed, store)


def test_virtual_pool_run_resumes_bitwise_identical(tmp_path):
    config = make_config("aergia", client_pool="virtual", pool_slots=3)
    golden, golden_store = golden_run(config, tmp_path)

    store = RunStore(tmp_path / "resumed")
    interrupt_after(config, store, consumed_rounds=2)
    resumed = run(config, store=store, resume=True)
    assert_bitwise_resume(config, golden, golden_store, resumed, store)


# ---------------------------------------------------------------------------
# Crash injection: SIGKILL at a seeded-random round, resume, compare bytes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scenario", ["stable", "churn", "lossy"])
@pytest.mark.parametrize("algorithm", CRASH_ALGORITHMS)
def test_sigkill_crash_resumes_bitwise_identical(algorithm, scenario, tmp_path):
    config = make_config(algorithm, scenario=scenario)
    golden, golden_store = golden_run(config, tmp_path)

    # The crash round is random but derived from a fixed per-case seed, so
    # failures reproduce; >= 2 guarantees at least one written checkpoint
    # (interval 1) before the kill.
    rng = random.Random(f"{algorithm}/{scenario}")
    crash_round = rng.randint(2, ROUNDS - 1)

    store_dir = tmp_path / "crashed"
    run_and_crash(config, store_dir, crash_round)

    store = RunStore(store_dir)
    assert store.get(config) is None, "crashed run must not read as complete"
    scan = store.scan()
    key = run_key(config)
    assert key in [stored.config_hash for stored in scan["resumable"]]

    resumed = run(config, store=store, resume=True)
    assert_bitwise_resume(config, golden, golden_store, resumed, store)


# ---------------------------------------------------------------------------
# Resume edge cases
# ---------------------------------------------------------------------------
def test_resume_without_checkpoint_runs_from_scratch(tmp_path):
    config = make_config("fedavg", checkpoint_interval=None)
    golden, _ = golden_run(config, tmp_path)

    store = RunStore(tmp_path / "resumed")
    interrupt_after(config, store, consumed_rounds=1)  # no checkpoint written
    resumed = run(config, store=store, resume=True)
    result = resumed.result()
    assert resumed.resumed_from_round is None
    assert round_dicts(result) == round_dicts(golden)


def test_resume_ignores_checkpoint_for_other_run_key(tmp_path):
    config = make_config("fedavg")
    store = RunStore(tmp_path / "store")
    interrupt_after(config, store, consumed_rounds=2)
    checkpoint_path = store.run_dir(run_key(config)) / CHECKPOINT_NAME
    assert checkpoint_path.exists()
    assert load_checkpoint(checkpoint_path, run_key="not-this-run") is None
    assert load_checkpoint(checkpoint_path, run_key=run_key(config)) is not None


def test_corrupt_checkpoint_is_ignored(tmp_path):
    config = make_config("fedavg")
    golden, _ = golden_run(config, tmp_path)
    store = RunStore(tmp_path / "resumed")
    interrupt_after(config, store, consumed_rounds=2)
    checkpoint_path = store.run_dir(run_key(config)) / CHECKPOINT_NAME
    payload = checkpoint_path.read_bytes()
    checkpoint_path.write_bytes(payload[: len(payload) // 2])  # torn write

    resumed = run(config, store=store, resume=True)
    result = resumed.result()
    assert resumed.resumed_from_round is None  # fell back to scratch
    assert round_dicts(result) == round_dicts(golden)


def test_capture_refuses_busy_client_and_unaccounted_events():
    config = make_config("fedavg")
    experiment = build_experiment(config)
    assert capture_snapshot(experiment) is not None

    # A stray event the snapshot cannot attribute makes the cut incomplete.
    stray = experiment.cluster.env.schedule(1.0, lambda: None)
    assert capture_snapshot(experiment) is None
    stray.cancel()

    # A client mid-offload-training refuses capture outright.
    client = experiment.clients[0]
    client._offload_training_active = True
    assert client.capture_execution_state() is None
    assert capture_snapshot(experiment) is None
    client._offload_training_active = False


def test_checkpoint_interval_excluded_from_run_key():
    base = make_config("fedavg", checkpoint_interval=None)
    assert run_key(base) == run_key(base.with_overrides(checkpoint_interval=1))
    assert run_key(base) == run_key(base.with_overrides(checkpoint_interval=7))

    from repro.experiments.parallel import canonical_config

    canonical = canonical_config(base.with_overrides(checkpoint_interval=3))
    assert "checkpoint_interval" not in canonical


# ---------------------------------------------------------------------------
# Torn-file hardening: truncated JSONL / cache entries are misses, not errors
# ---------------------------------------------------------------------------
def test_store_treats_torn_rounds_line_as_incomplete(tmp_path):
    config = make_config("fedavg")
    store = RunStore(tmp_path / "store")
    run(config, store=store).result()
    assert store.get(config) is not None

    rounds_path = store.run_dir(run_key(config)) / "rounds.jsonl"
    payload = rounds_path.read_bytes()
    rounds_path.write_bytes(payload[:-25])  # tear the last record mid-line

    stored = store.get(config)
    assert stored is None, "a torn rounds file must read as a miss, not raise"

    # The longest clean prefix still parses for inspection tools.
    from repro.api.store import StoredRun

    damaged = StoredRun(store.run_dir(run_key(config)))
    parsed = damaged.rounds()
    assert len(parsed) == ROUNDS - 1
    with pytest.raises(ValueError):
        damaged.load_result()  # count mismatch stays loud on the strict path


def test_store_treats_corrupt_manifest_as_missing(tmp_path):
    config = make_config("fedavg")
    store = RunStore(tmp_path / "store")
    run(config, store=store).result()
    manifest = store.run_dir(run_key(config)) / "manifest.json"
    manifest.write_text(manifest.read_text()[:40])
    assert store.get(config) is None


def test_result_cache_treats_truncated_entry_as_miss(tmp_path):
    from repro.experiments.parallel import ResultCache
    from repro.fl.runtime import run_experiment

    config = make_config("fedavg", checkpoint_interval=None, rounds=1)
    cache = ResultCache(tmp_path / "cache")
    result = run_experiment(config)
    cache.put(config, result, wall_seconds=1.0)
    assert cache.get(config) is not None

    (entry,) = cache.cache_dir.glob("*.json")
    payload = entry.read_bytes()
    entry.write_bytes(payload[: len(payload) // 2])
    assert cache.get(config) is None, "truncated cache entries are misses"
