"""Lazy vs. eager partition parity.

The virtualized client pool derives shards on demand from a
:class:`repro.data.partition.PartitionPlan`; the contract is that for every
dataset x distribution combination the plan is *byte-identical* to the
eager reference functions — same indices, same class counts, whether the
plan is materialized wholesale or queried per client in any order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.data.partition import (
    partition_dataset,
    partition_dirichlet,
    partition_iid,
    partition_noniid_label_skew,
    plan_partition,
)
from repro.experiments.workloads import known_datasets

SCHEMES = ("iid", "noniid", "dirichlet")


def _eager_reference(dataset, num_clients, scheme, rng):
    """The historical eager implementations, kept as the parity oracle."""
    if scheme == "iid":
        return partition_iid(dataset, num_clients, rng=rng)
    if scheme == "noniid":
        return partition_noniid_label_skew(dataset, num_clients, classes_per_client=3, rng=rng)
    return partition_dirichlet(dataset, num_clients, alpha=0.5, rng=rng)


@pytest.mark.parametrize("dataset_name", sorted(known_datasets()))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_plan_matches_eager_for_every_dataset_and_scheme(dataset_name, scheme):
    dataset = load_dataset(dataset_name, train_size=300, test_size=40, seed=11)
    for num_clients in (1, 5, 12):
        eager = _eager_reference(dataset, num_clients, scheme, np.random.default_rng(77))
        plan = plan_partition(
            dataset,
            num_clients,
            scheme=scheme,
            classes_per_client=3,
            alpha=0.5,
            rng=np.random.default_rng(77),
        )
        materialized = plan.materialize()
        assert len(materialized) == len(eager) == num_clients
        for reference, lazy in zip(eager, materialized):
            assert reference.client_id == lazy.client_id
            assert np.array_equal(reference.indices, lazy.indices)
            assert np.array_equal(reference.class_counts, lazy.class_counts)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_plan_random_access_is_order_independent(scheme):
    dataset = load_dataset("mnist", train_size=240, test_size=30, seed=4)
    eager = _eager_reference(dataset, 8, scheme, np.random.default_rng(5))
    plan = plan_partition(dataset, 8, scheme=scheme, rng=np.random.default_rng(5))
    # Query clients out of order, repeatedly: each derivation is pure.
    for client_id in (7, 0, 3, 7, 1):
        lazy = plan.partition(client_id)
        assert np.array_equal(lazy.indices, eager[client_id].indices)
        assert np.array_equal(lazy.class_counts, eager[client_id].class_counts)
        assert plan.size_of(client_id) == eager[client_id].size
        assert np.array_equal(plan.class_counts_for(client_id), eager[client_id].class_counts)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_partition_dataset_routes_through_the_plan(scheme):
    dataset = load_dataset("fmnist", train_size=200, test_size=20, seed=9)
    via_dispatch = partition_dataset(dataset, 6, scheme=scheme, rng=np.random.default_rng(13))
    via_plan = plan_partition(dataset, 6, scheme=scheme, rng=np.random.default_rng(13)).materialize()
    for a, b in zip(via_dispatch, via_plan):
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.class_counts, b.class_counts)


def test_plan_shards_stay_disjoint_and_cover_sizes():
    dataset = load_dataset("mnist", train_size=200, test_size=20, seed=2)
    plan = plan_partition(dataset, 7, scheme="iid", rng=np.random.default_rng(0))
    all_indices = np.concatenate([plan.indices_for(cid) for cid in range(7)])
    assert len(np.unique(all_indices)) == len(all_indices), "shards must be disjoint"
    assert sum(plan.sizes()) == len(all_indices)
    assert plan.sizes() == [plan.partition(cid).size for cid in range(7)]


def test_plan_validates_inputs():
    dataset = load_dataset("mnist", train_size=50, test_size=10, seed=1)
    with pytest.raises(ValueError):
        plan_partition(dataset, 0, scheme="iid")
    with pytest.raises(ValueError):
        plan_partition(dataset, 60, scheme="iid")  # fewer samples than clients
    with pytest.raises(ValueError):
        plan_partition(dataset, 4, scheme="noniid", classes_per_client=0)
    with pytest.raises(ValueError):
        plan_partition(dataset, 4, scheme="dirichlet", alpha=0.0)
    with pytest.raises(ValueError):
        plan_partition(dataset, 4, scheme="bogus")
    plan = plan_partition(dataset, 4, scheme="iid")
    with pytest.raises(IndexError):
        plan.partition(4)
