"""Tests for the service mode (:mod:`repro.serve`).

Covers the wire protocol (validation fail-fast with the registry's own
errors, JSONL framing, error codes), the hosted-run lifecycle (submit /
stream / status / cancel / check-ins / dedupe), server-vs-library parity
(a served run's ``rounds.jsonl`` is byte-identical to a direct
:mod:`repro.api` run), and the graceful-drain contract (checkpoint on
drain, bitwise-identical resume on restart) — in-process and through a
real ``repro serve`` subprocess killed with SIGTERM.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.api as api
from repro.fl.metrics import ExperimentResult, RoundRecord
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    ERR_INVALID_SPEC,
    ERR_NO_DYNAMICS,
    ERR_UNKNOWN_RUN,
    ProtocolError,
    parse_spec_payload,
)
from repro.serve.server import ExperimentServer
from repro.serve.session import SessionManager

#: A tiny spec that exercises scenario dynamics (check-ins need them).
CHURN_SPEC = {
    "algorithm": "fedavg",
    "dataset": "mnist",
    "scale": "smoke",
    "scenario": "churn",
    "seed": 7,
    "overrides": {"rounds": 3},
}


def _record(round_number: int) -> RoundRecord:
    return RoundRecord(
        round_number=round_number,
        start_time=0.0,
        end_time=1.0,
        selected_clients=[0],
        completed_clients=[0],
    )


class Client:
    """Minimal keep-alive test client against an in-process server."""

    def __init__(self, server: ExperimentServer) -> None:
        host, port = server.address
        self.conn = http.client.HTTPConnection(host, port, timeout=60)
        self.conn.connect()
        self.conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def request(self, method: str, path: str, body: bytes = None):
        self.conn.request(method, path, body=body)
        response = self.conn.getresponse()
        return response.status, response.read()

    def json(self, method: str, path: str, payload: object = None):
        body = None if payload is None else json.dumps(payload).encode()
        status, data = self.request(method, path, body)
        return status, json.loads(data)

    def close(self) -> None:
        self.conn.close()


@pytest.fixture
def server(tmp_path):
    srv = ExperimentServer(tmp_path / "results", workers=2)
    srv.start_background()
    yield srv
    # Abort anything a failed test left running: worker threads are
    # non-daemon, and a forgotten 100000-round run would hang exit.
    for hosted in srv.manager.sessions():
        if hosted.active:
            hosted.handle.request_stop("abort")
            hosted.wait_terminal(timeout=60)
    srv.close()


@pytest.fixture
def client(server):
    c = Client(server)
    yield c
    c.close()


def _wait_state(client: Client, run_id: str, states, timeout: float = 60.0) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, doc = client.json("GET", f"/runs/{run_id}")
        if doc.get("state") in states:
            return doc["state"]
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} never reached {states}; last: {doc}")


# ---------------------------------------------------------------------------
# Protocol: validation fail-fast, framing, error codes
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_spec_validation_uses_registry_errors(self):
        """The server-side error is the library's error, verbatim."""
        with pytest.raises(ValueError) as library_error:
            api.experiment("not-an-algorithm")
        with pytest.raises(ProtocolError) as wire_error:
            parse_spec_payload({"algorithm": "not-an-algorithm"})
        assert wire_error.value.code == ERR_INVALID_SPEC
        assert wire_error.value.message == str(library_error.value)

    def test_unknown_spec_field_is_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_spec_payload({"dataest": "mnist"})
        assert excinfo.value.code == ERR_INVALID_SPEC
        assert "dataest" in excinfo.value.message

    def test_non_object_payload_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_spec_payload(["not", "an", "object"])
        assert excinfo.value.code == ERR_BAD_REQUEST

    def test_valid_payload_builds_the_library_config(self):
        config, label = parse_spec_payload(CHURN_SPEC)
        spec = (
            api.experiment("fedavg")
            .dataset("mnist")
            .scale("smoke")
            .scenario("churn")
            .seed(7)
            .rounds(3)
        )
        assert config == spec.build()
        assert label == "mnist/fedavg"


# ---------------------------------------------------------------------------
# Request-body framing (the _read_body short-read bugfix)
# ---------------------------------------------------------------------------
class TestRequestBodyFraming:
    """``_read_body`` must honour Content-Length exactly.

    A single ``rfile.read(length)`` can legally return fewer bytes than
    asked (segmented delivery, slow client); the old code then parsed a
    truncated body.  The fixed reader loops to the declared length, maps a
    genuinely short body to ``bad_request``, and rejects oversized or
    malformed Content-Length headers before reading anything.
    """

    @staticmethod
    def _raw_request(server, head: bytes, body: bytes, shut: bool = True) -> bytes:
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=30)
        try:
            sock.sendall(head + body)
            if shut:
                sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                response = b"".join(chunks)
                if b"\r\n\r\n" in response and not shut:
                    break
            return b"".join(chunks)
        finally:
            sock.close()

    def test_truncated_body_is_bad_request(self, server):
        head = (
            b"POST /runs HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n"
            b"Connection: close\r\n\r\n"
        )
        response = self._raw_request(server, head, b"0123456789")
        status_line = response.split(b"\r\n", 1)[0]
        assert b" 400 " in status_line
        assert b"bad_request" in response
        assert b"truncated" in response
        assert b"10 of 100" in response

    def test_oversized_content_length_rejected_before_reading(self, server):
        from repro.serve.server import MAX_BODY_BYTES

        head = (
            b"POST /runs HTTP/1.1\r\nHost: t\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n".encode()
            + b"Connection: close\r\n\r\n"
        )
        # No body bytes are ever sent: the server must answer regardless.
        response = self._raw_request(server, head, b"")
        assert b" 400 " in response.split(b"\r\n", 1)[0]
        assert b"too large" in response

    def test_negative_content_length_is_bad_request(self, server):
        head = (
            b"POST /runs HTTP/1.1\r\nHost: t\r\nContent-Length: -5\r\n"
            b"Connection: close\r\n\r\n"
        )
        response = self._raw_request(server, head, b"")
        assert b" 400 " in response.split(b"\r\n", 1)[0]

    def test_segmented_body_is_reassembled(self, server):
        body = json.dumps({"spec": {"algorithm": "not-an-algorithm"}}).encode()
        head = (
            b"POST /runs HTTP/1.1\r\nHost: t\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: close\r\n\r\n"
        )
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=30)
        try:
            sock.sendall(head + body[:3])
            time.sleep(0.05)  # force a short first read server-side
            sock.sendall(body[3:])
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            response = b"".join(chunks)
        finally:
            sock.close()
        # The whole body arrived: the spec validator saw the full algorithm
        # name (a short read would have surfaced as invalid JSON instead).
        assert b"truncated" not in response
        assert b"not-an-algorithm" in response


# ---------------------------------------------------------------------------
# Hosted-run lifecycle over HTTP
# ---------------------------------------------------------------------------
class TestServerLifecycle:
    def test_submit_stream_status(self, server, client):
        status, doc = client.json("POST", "/runs", {"spec": CHURN_SPEC})
        assert status == 202
        assert doc["created"] is True
        run_id = doc["run_id"]

        status, data = client.request("GET", f"/runs/{run_id}/rounds")
        assert status == 200
        lines = data.decode().strip().splitlines()
        trailer = json.loads(lines[-1])
        assert trailer == {"event": "end", "rounds": 3, "state": "complete"}
        records = [json.loads(line) for line in lines[:-1]]
        assert [r["round_number"] for r in records] == [1, 2, 3]
        assert all("event" not in r for r in records)

        _, doc = client.json("GET", f"/runs/{run_id}")
        assert doc["state"] == "complete"
        assert doc["rounds"] == 3

        _, listing = client.json("GET", "/runs")
        assert any(run["run_id"] == run_id for run in listing["active"])
        # The persisted side is visible through the ordinary store scan.
        assert any(
            run["run_id"] == run_id for run in listing["stored"]["complete"]
        )

    def test_invalid_spec_fails_fast_without_state(self, server, client):
        status, doc = client.json(
            "POST", "/runs", {"spec": {"algorithm": "not-an-algorithm"}}
        )
        assert status == 422
        assert doc["error"] == ERR_INVALID_SPEC
        assert "valid algorithms" in doc["message"]
        # Fail-fast: nothing was created, hosted or stored.
        _, listing = client.json("GET", "/runs")
        assert listing["active"] == []
        assert list(server.store.root.iterdir()) == []

    def test_unknown_run_is_404(self, server, client):
        status, doc = client.json("GET", "/runs/deadbeef")
        assert status == 404
        assert doc["error"] == ERR_UNKNOWN_RUN
        status, doc = client.json("GET", "/runs/deadbeef/rounds")
        assert status == 404

    def test_submit_is_idempotent_per_config(self, server, client):
        long_spec = dict(CHURN_SPEC, overrides={"rounds": 100000})
        _, first = client.json("POST", "/runs", {"spec": long_spec})
        _, second = client.json("POST", "/runs", {"spec": long_spec})
        assert second["run_id"] == first["run_id"]
        assert second["created"] is False
        client.json("POST", f"/runs/{first['run_id']}/cancel")
        _wait_state(client, first["run_id"], ("cancelled",))

    def test_cancel_drops_checkpoint(self, server, client):
        long_spec = dict(CHURN_SPEC, overrides={"rounds": 100000})
        _, doc = client.json("POST", "/runs", {"spec": long_spec})
        run_id = doc["run_id"]
        _wait_state(client, run_id, ("running",))
        status, doc = client.json("POST", f"/runs/{run_id}/cancel")
        assert status == 200
        assert _wait_state(client, run_id, ("cancelled",)) == "cancelled"
        run_dir = server.store.run_dir(run_id)
        assert not (run_dir / "checkpoint.pkl").exists()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "incomplete"
        # A cancelled run must not come back on restart.
        assert server.store.scan()["resumable"] == []

    def test_checkins_reach_the_running_scenario(self, server, client):
        long_spec = dict(CHURN_SPEC, overrides={"rounds": 100000})
        _, doc = client.json("POST", "/runs", {"spec": long_spec})
        run_id, num_clients = doc["run_id"], doc["num_clients"]
        _wait_state(client, run_id, ("running",))

        lines = "".join(
            json.dumps({"run": run_id, "client": i % num_clients, "online": i % 2 == 0})
            + "\n"
            for i in range(40)
        )
        status, data = client.request("POST", "/checkin", lines.encode())
        doc = json.loads(data)
        assert status == 200
        assert doc["accepted"] == 40
        assert doc["rejected"] == 0

        # The events were admitted into the live ScenarioDynamics.
        deadline = time.monotonic() + 30
        hosted = server.manager.get(run_id)
        while time.monotonic() < deadline:
            experiment = hosted.handle.experiment  # None until the build ran
            if experiment is not None and experiment.dynamics is not None:
                if experiment.dynamics.checkin_events > 0:
                    break
            time.sleep(0.05)
        assert hosted.handle.experiment.dynamics.checkin_events > 0
        _, stats = client.json("GET", "/stats")
        assert stats["checkins"] == 40

        client.json("POST", f"/runs/{run_id}/cancel")
        _wait_state(client, run_id, ("cancelled",))

    def test_checkin_rejections(self, server, client):
        # Unknown run.
        status, data = client.request(
            "POST", "/checkin", json.dumps({"run": "nope", "client": 0}).encode()
        )
        doc = json.loads(data)
        assert doc["rejected"] == 1
        assert doc["errors"][0]["error"] == ERR_UNKNOWN_RUN

        # A stable-scenario run has no dynamics to check into.
        stable = dict(CHURN_SPEC, scenario="stable", overrides={"rounds": 100000})
        _, submitted = client.json("POST", "/runs", {"spec": stable})
        run_id = submitted["run_id"]
        status, data = client.request(
            "POST", "/checkin", json.dumps({"run": run_id, "client": 0}).encode()
        )
        doc = json.loads(data)
        assert doc["errors"][0]["error"] == ERR_NO_DYNAMICS

        # Out-of-range client ids are rejected at the protocol layer.
        churn = dict(CHURN_SPEC, overrides={"rounds": 100000})
        _, submitted2 = client.json("POST", "/runs", {"spec": churn})
        status, data = client.request(
            "POST",
            "/checkin",
            json.dumps({"run": submitted2["run_id"], "client": 10_000}).encode(),
        )
        doc = json.loads(data)
        assert doc["errors"][0]["error"] == ERR_BAD_REQUEST

        for rid in (run_id, submitted2["run_id"]):
            client.json("POST", f"/runs/{rid}/cancel")
            _wait_state(client, rid, ("cancelled",))

    def test_draining_rejects_submissions(self, tmp_path):
        manager = SessionManager(api.RunStore(tmp_path / "r"), workers=1)
        manager._draining = True
        config, label = parse_spec_payload(CHURN_SPEC)
        with pytest.raises(ProtocolError) as excinfo:
            manager.submit(config, label=label)
        assert excinfo.value.code == ERR_DRAINING


# ---------------------------------------------------------------------------
# Parity: a served run is the library run, byte for byte
# ---------------------------------------------------------------------------
class TestServerLibraryParity:
    def test_served_rounds_jsonl_matches_direct_api_run(self, server, client, tmp_path):
        _, doc = client.json("POST", "/runs", {"spec": CHURN_SPEC})
        run_id = doc["run_id"]
        status, streamed = client.request("GET", f"/runs/{run_id}/rounds")
        lines = streamed.decode().splitlines(keepends=True)
        streamed_records = "".join(lines[:-1])

        direct_store = tmp_path / "direct"
        config, label = parse_spec_payload(CHURN_SPEC)
        handle = api.run(config, store=direct_store, label=label)
        handle.result()

        assert run_id == handle.config_hash
        served_bytes = (server.store.run_dir(run_id) / "rounds.jsonl").read_bytes()
        direct_bytes = (
            api.RunStore(direct_store).run_dir(run_id) / "rounds.jsonl"
        ).read_bytes()
        assert served_bytes == direct_bytes  # bitwise, no approx
        # And the live stream's framing IS the storage framing.
        assert streamed_records.encode() == direct_bytes

        served_manifest = json.loads(
            (server.store.run_dir(run_id) / "manifest.json").read_text()
        )
        direct_manifest = json.loads(
            (api.RunStore(direct_store).run_dir(run_id) / "manifest.json").read_text()
        )
        assert served_manifest["summary"] == direct_manifest["summary"]


# ---------------------------------------------------------------------------
# Graceful drain + restart resume
# ---------------------------------------------------------------------------
class TestDrainResume:
    def test_drain_checkpoints_and_restart_resumes_bitwise(self, tmp_path):
        spec = dict(CHURN_SPEC, overrides={"rounds": 40})
        config, label = parse_spec_payload(spec)

        results_dir = tmp_path / "served"
        server = ExperimentServer(results_dir, workers=1)
        server.start_background()
        client = Client(server)
        _, doc = client.json("POST", "/runs", {"spec": spec})
        run_id = doc["run_id"]
        # Let it make some progress, then drain mid-run.
        status, data = client.request("GET", f"/runs/{run_id}/rounds?from=0&max=3")
        assert len(data.decode().strip().splitlines()) == 4  # 3 records + trailer
        client.close()
        summary = server.drain(timeout=120)
        assert summary[run_id] == "checkpointed"

        scan = api.RunStore(results_dir).scan()
        assert [run.config_hash for run in scan["resumable"]] == [run_id]

        # Restart: a fresh server resumes the run and completes it.
        server2 = ExperimentServer(results_dir, workers=1)
        resumed = server2.manager.resume_all()
        assert [hosted.run_id for hosted in resumed] == [run_id]
        hosted = resumed[0]
        assert hosted.wait_terminal(timeout=300)
        assert hosted.state == "complete"
        assert hosted.handle.resumed_from_round is not None
        server2.close()

        # Bitwise: the drained-and-resumed run equals an uninterrupted one.
        direct_store = tmp_path / "direct"
        api.run(config, store=direct_store, label=label).result()
        assert (
            (api.RunStore(results_dir).run_dir(run_id) / "rounds.jsonl").read_bytes()
            == (api.RunStore(direct_store).run_dir(run_id) / "rounds.jsonl").read_bytes()
        )


# ---------------------------------------------------------------------------
# The real thing: a repro serve subprocess, SIGTERM and all
# ---------------------------------------------------------------------------
class TestServeSubprocess:
    def _start(self, results_dir: Path):
        package_parent = str(Path(api.__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = package_parent + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--results-dir",
                str(results_dir),
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if "listening on" in line:
                url = line.split("listening on", 1)[1].split()[0]
                host, _, port = url.rpartition("//")[2].partition(":")
                return proc, host, int(port)
            if proc.poll() is not None:
                raise AssertionError(f"serve exited early: {proc.stderr.read()}")
        proc.kill()
        raise AssertionError("serve subprocess never reported its address")

    def _json(self, host, port, method, path, payload=None):
        conn = http.client.HTTPConnection(host, port, timeout=60)
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body)
        response = conn.getresponse()
        data = json.loads(response.read())
        conn.close()
        return response.status, data

    def test_sigterm_drains_and_restart_completes_bitwise(self, tmp_path):
        results_dir = tmp_path / "served"
        spec = dict(CHURN_SPEC, overrides={"rounds": 40})

        proc, host, port = self._start(results_dir)
        try:
            _, doc = self._json(host, port, "POST", "/runs", {"spec": spec})
            run_id = doc["run_id"]
            # Wait for visible progress, then SIGTERM mid-run.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                _, status_doc = self._json(host, port, "GET", f"/runs/{run_id}")
                if status_doc.get("rounds", 0) >= 3:
                    break
                time.sleep(0.1)
            assert status_doc["rounds"] >= 3
        finally:
            proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=180) == 0

        scan = api.RunStore(results_dir).scan()
        assert [run.config_hash for run in scan["resumable"]] == [run_id]

        # The restarted server auto-resumes and completes the run.
        proc2, host2, port2 = self._start(results_dir)
        try:
            deadline = time.monotonic() + 300
            state = None
            while time.monotonic() < deadline:
                _, status_doc = self._json(host2, port2, "GET", f"/runs/{run_id}")
                state = status_doc.get("state")
                if state == "complete":
                    break
                time.sleep(0.2)
            assert state == "complete"
        finally:
            proc2.send_signal(signal.SIGTERM)
        assert proc2.wait(timeout=180) == 0

        config, label = parse_spec_payload(spec)
        direct_store = tmp_path / "direct"
        api.run(config, store=direct_store, label=label).result()
        assert (
            (api.RunStore(results_dir).run_dir(run_id) / "rounds.jsonl").read_bytes()
            == (api.RunStore(direct_store).run_dir(run_id) / "rounds.jsonl").read_bytes()
        )


# ---------------------------------------------------------------------------
# Round-listener isolation (the streaming seam must survive bad listeners)
# ---------------------------------------------------------------------------
class TestListenerIsolation:
    def test_failing_listener_is_detached_not_fatal(self, caplog):
        result = ExperimentResult(algorithm="fedavg", dataset="mnist", config={})
        seen = []
        calls = {"bad": 0}

        def bad_listener(record):
            calls["bad"] += 1
            raise RuntimeError("client went away")

        result.add_round_listener(bad_listener)
        result.add_round_listener(seen.append)
        with caplog.at_level("ERROR", logger="repro.fl.metrics"):
            result.add_round(_record(1))
            result.add_round(_record(2))
        # The bad listener fired once, was detached, and never starved the
        # listener registered after it.
        assert calls["bad"] == 1
        assert [record.round_number for record in seen] == [1, 2]
        assert any("detaching" in message for message in caplog.messages)

    def test_handle_level_listener_errors_surface_to_caller(self, tmp_path):
        # Contrast: a RunHandle's own on_round callback is the caller's
        # code in the caller's thread — its failure is the caller's to see.
        config, label = parse_spec_payload(CHURN_SPEC)

        def exploding(record):
            raise RuntimeError("boom")

        handle = api.run(config, store=tmp_path, label=label, on_round=exploding)
        with pytest.raises(RuntimeError):
            handle.result()

    def test_federator_side_listener_failure_does_not_kill_run(self, tmp_path):
        config, label = parse_spec_payload(CHURN_SPEC)
        handle = api.run(config, store=tmp_path, label=label)
        stream = handle.stream()
        first = next(stream)
        assert first.round_number == 1

        def exploding(record):
            raise RuntimeError("boom")

        # Attach directly to the engine's result: the seam the server's
        # record collector uses.
        handle.experiment.federator.result.add_round_listener(exploding)
        rest = list(stream)
        assert [record.round_number for record in rest] == [2, 3]
        assert handle.result().num_rounds == 3


# ---------------------------------------------------------------------------
# repro report --json (the service clients' query path)
# ---------------------------------------------------------------------------
class TestReportJson:
    def test_report_json_round_trips_the_store(self, tmp_path, capsys):
        from repro.cli import main

        config, label = parse_spec_payload(CHURN_SPEC)
        api.run(config, store=tmp_path, label=label).result()
        assert main(["report", str(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 1
        (run,) = document["runs"]
        assert run["label"] == label
        assert run["status"] == "complete"
        assert run["num_rounds"] == 3
        assert run["summary"]["rounds"] == 3.0
