"""Property tests for the budget-aware sweep scheduler's state machine.

The scheduler's guarantees under test:

* a cell only ever moves along the legal edges
  (``pending -> running -> complete|failed``, ``pending ->
  complete`` on a store hit, ``pending -> budget_exceeded`` on
  exhaustion) — anything else raises :class:`IllegalTransition`;
* budget exhaustion marks every remaining cell ``budget_exceeded``,
  **never** ``failed`` (failure is reserved for cells that actually ran
  and raised), and never interrupts the cell that is running;
* a resumed sweep executes exactly the not-yet-complete cells, each
  once — store-complete cells are served from disk and cost no budget.

Executors and clocks are injected, so the properties hold independently
of the experiment engine (randomized walks use seeded ``random``).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.experiments.scheduler import (
    LEGAL_TRANSITIONS,
    BudgetTracker,
    CellState,
    IllegalTransition,
    SweepScheduler,
)
from repro.fl.config import ExperimentConfig


def configs(n):
    return {f"cell-{i}": ExperimentConfig(rounds=1, seed=i) for i in range(n)}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeStore:
    """Duck-typed stand-in: the scheduler only calls ``get``."""

    def __init__(self, complete_labels=()):
        self.complete = set(complete_labels)
        self.lookups = []

    def get(self, config):
        self.lookups.append(config)
        if f"cell-{config.seed}" in self.complete:
            return _FakeStored(f"result-{config.seed}")
        return None


class _FakeStored:
    def __init__(self, payload):
        self.payload = payload

    def load_result(self):
        return self.payload


# ---------------------------------------------------------------------------
# The transition relation itself
# ---------------------------------------------------------------------------
def test_every_state_transition_pair_is_classified():
    scheduler = SweepScheduler(configs(1))
    for old, new in itertools.product(CellState.ALL, CellState.ALL):
        scheduler.states["cell-0"] = old
        if new in LEGAL_TRANSITIONS[old]:
            scheduler.transition("cell-0", new)
            assert scheduler.states["cell-0"] == new
        else:
            with pytest.raises(IllegalTransition):
                scheduler.transition("cell-0", new)
            assert scheduler.states["cell-0"] == old, "failed transition must not move"


def test_random_transition_walks_never_leave_legal_states():
    rng = random.Random(0xC0FFEE)
    for _trial in range(200):
        scheduler = SweepScheduler(configs(1))
        for _step in range(12):
            target = rng.choice(CellState.ALL)
            state = scheduler.states["cell-0"]
            try:
                scheduler.transition("cell-0", target)
            except IllegalTransition:
                assert target not in LEGAL_TRANSITIONS[state]
            else:
                assert target in LEGAL_TRANSITIONS[state]
            assert scheduler.states["cell-0"] in CellState.ALL


def test_terminal_states_have_no_outgoing_edges():
    for terminal in (CellState.COMPLETE, CellState.FAILED, CellState.BUDGET_EXCEEDED):
        assert LEGAL_TRANSITIONS[terminal] == frozenset()


# ---------------------------------------------------------------------------
# Budget semantics
# ---------------------------------------------------------------------------
def test_wall_budget_exhaustion_marks_rest_budget_exceeded_never_failed():
    clock = FakeClock()

    def executor(label, config):
        clock.advance(10.0)
        return f"ran-{label}", 10.0

    scheduler = SweepScheduler(
        configs(5),
        budget=BudgetTracker(wall_seconds=25.0, clock=clock),
        executor=executor,
    )
    handle = scheduler.run()
    # Checked before each cell: starts at t=0, 10, 20 run; t=30 >= 25 stops.
    states = list(scheduler.states.values())
    assert states == [
        CellState.COMPLETE,
        CellState.COMPLETE,
        CellState.COMPLETE,
        CellState.BUDGET_EXCEEDED,
        CellState.BUDGET_EXCEEDED,
    ]
    assert CellState.FAILED not in states
    assert handle.states == scheduler.states
    assert sorted(handle.results) == ["cell-0", "cell-1", "cell-2"]


def test_running_cell_always_finishes_despite_mid_cell_exhaustion():
    clock = FakeClock()
    finished = []

    def executor(label, config):
        clock.advance(1000.0)  # blows way past the budget mid-cell
        finished.append(label)
        return f"ran-{label}", 1000.0

    scheduler = SweepScheduler(
        configs(3),
        budget=BudgetTracker(wall_seconds=5.0, clock=clock),
        executor=executor,
    )
    scheduler.run()
    assert finished == ["cell-0"], "first cell runs to completion, rest never start"
    assert scheduler.states["cell-0"] == CellState.COMPLETE
    assert scheduler.states["cell-1"] == CellState.BUDGET_EXCEEDED
    assert scheduler.states["cell-2"] == CellState.BUDGET_EXCEEDED


def test_max_cells_budget_counts_executed_cells_only():
    store = FakeStore(complete_labels={"cell-0", "cell-1"})
    executed = []

    def executor(label, config):
        executed.append(label)
        return f"ran-{label}", 1.0

    scheduler = SweepScheduler(
        configs(4),
        store=store,
        budget=BudgetTracker(max_cells=1),
        executor=executor,
    )
    handle = scheduler.run()
    # Store hits are free; the one-cell budget covers exactly one execution.
    assert executed == ["cell-2"]
    assert scheduler.states["cell-0"] == CellState.COMPLETE
    assert scheduler.states["cell-1"] == CellState.COMPLETE
    assert scheduler.states["cell-2"] == CellState.COMPLETE
    assert scheduler.states["cell-3"] == CellState.BUDGET_EXCEEDED
    assert sorted(handle.store_hits) == ["cell-0", "cell-1"]


def test_unlimited_budget_never_exhausts():
    tracker = BudgetTracker()
    tracker.start()
    for _ in range(1000):
        tracker.note_cell()
    assert not tracker.exhausted()
    assert not tracker.limited


def test_budget_tracker_rejects_negative_limits():
    with pytest.raises(ValueError):
        BudgetTracker(wall_seconds=-1.0)
    with pytest.raises(ValueError):
        BudgetTracker(max_cells=-1)


# ---------------------------------------------------------------------------
# Failure isolation
# ---------------------------------------------------------------------------
def test_failing_cell_marked_failed_and_sweep_continues():
    def executor(label, config):
        if label == "cell-1":
            raise RuntimeError("boom")
        return f"ran-{label}", 1.0

    scheduler = SweepScheduler(configs(3), executor=executor)
    handle = scheduler.run()
    assert scheduler.states == {
        "cell-0": CellState.COMPLETE,
        "cell-1": CellState.FAILED,
        "cell-2": CellState.COMPLETE,
    }
    assert isinstance(handle.errors["cell-1"], RuntimeError)
    assert sorted(handle.results) == ["cell-0", "cell-2"]


# ---------------------------------------------------------------------------
# Resumed sweeps
# ---------------------------------------------------------------------------
def test_resumed_sweep_executes_exactly_the_non_complete_cells_once():
    rng = random.Random(2024)
    for _trial in range(50):
        n = rng.randint(1, 8)
        already_complete = {f"cell-{i}" for i in range(n) if rng.random() < 0.5}
        store = FakeStore(complete_labels=already_complete)
        executed = []

        def executor(label, config):
            executed.append(label)
            return f"ran-{label}", 1.0

        scheduler = SweepScheduler(configs(n), store=store, resume=True, executor=executor)
        handle = scheduler.run()

        expected = [f"cell-{i}" for i in range(n) if f"cell-{i}" not in already_complete]
        assert executed == expected, "each non-complete cell executes exactly once"
        assert set(scheduler.states.values()) <= {CellState.COMPLETE}
        assert sorted(handle.store_hits) == sorted(already_complete)
        assert len(handle.results) == n


def test_two_phase_sweep_with_budget_then_resume_covers_every_cell():
    """A budget-cut first pass plus a resumed second pass covers the grid."""
    clock = FakeClock()

    def executor(label, config):
        clock.advance(10.0)
        return f"ran-{label}", 10.0

    first = SweepScheduler(
        configs(6),
        budget=BudgetTracker(wall_seconds=20.0, clock=clock),
        executor=executor,
    )
    first.run()
    done_after_first = {
        label for label, state in first.states.items() if state == CellState.COMPLETE
    }
    assert 0 < len(done_after_first) < 6

    store = FakeStore(complete_labels=done_after_first)
    executed_second = []

    def executor2(label, config):
        executed_second.append(label)
        return f"ran-{label}", 1.0

    second = SweepScheduler(configs(6), store=store, resume=True, executor=executor2)
    second.run()
    assert set(second.states.values()) == {CellState.COMPLETE}
    assert sorted(executed_second) == sorted(
        label for label in first.states if label not in done_after_first
    )
