"""Unreliable transport + reliable-delivery middleware tests.

Three layers of coverage, mirroring the architecture:

* unit: the fault injector's seeded determinism and the reliable channel's
  protocol invariants (every send is eventually ACKed or expires; dedup
  never double-delivers; corruption is only repaired by retransmission);
* config: the null transport stays out of the config hash (existing cache
  archives keep their keys) while any non-null knob changes it;
* end-to-end: every registered federator completes a ``lossy`` smoke run
  with at least one retransmission and no round outliving its timeout
  backstop, serial and process-pool execution agree under faults, and
  quorum finalization degrades rounds instead of hanging them.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments.parallel import canonical_config, config_hash, run_configs_parallel
from repro.experiments.runner import run_configs
from repro.experiments.workloads import SCALES, evaluation_config, scenario_transport
from repro.fl.config import ExperimentConfig, TransportConfig
from repro.fl.runtime import build_experiment
from repro.fl.transport import ACK_KIND, DirectTransport, ReliableTransport, build_transport
from repro.simulation.events import SimulationEnvironment
from repro.simulation.network import (
    FaultProfile,
    Message,
    Network,
    payload_size_bytes,
)

ALL_ALGORITHMS = (
    "aergia",
    "deadline",
    "fedavg",
    "fedasync",
    "fedbuff",
    "fednova",
    "fedprox",
    "fedsgd",
    "tifl",
)


# ---------------------------------------------------------------------------
# Payload sizing (regression: the container floor applied per nesting level)
# ---------------------------------------------------------------------------
class TestPayloadSize:
    def test_nested_containers_are_not_floored_per_level(self):
        # Two nested dicts of tiny arrays: the old estimator floored each
        # inner dict to 128 bytes (-> 256 total); the raw content is 16
        # bytes, so one top-level floor must win.
        small = np.zeros(1, dtype=np.float64)  # 8 bytes
        payload = {"a": {"x": small}, "b": {"y": small}}
        assert payload_size_bytes(payload) == 128.0

    def test_weight_dicts_are_measured_exactly(self):
        weights = {
            "w1": np.zeros((4, 8), dtype=np.float64),  # 256 bytes
            "w2": np.zeros(16, dtype=np.float64),  # 128 bytes
        }
        assert payload_size_bytes(weights) == 384.0

    def test_scalar_payloads_charge_the_header_constant(self):
        assert payload_size_bytes("hello") == 256.0
        assert payload_size_bytes(None) == 256.0

    def test_empty_container_hits_the_floor(self):
        assert payload_size_bytes({}) == 128.0
        assert payload_size_bytes([]) == 128.0


# ---------------------------------------------------------------------------
# Fault injector
# ---------------------------------------------------------------------------
def _probe_message(kind="train_result", sender=1, recipient="federator"):
    return Message(sender=sender, recipient=recipient, kind=kind, payload=None)


class TestFaultProfile:
    def test_same_seed_same_fault_trace(self):
        def trace(profile):
            decisions = [
                dataclasses.astuple(profile.decide(_probe_message()))
                for _ in range(200)
            ]
            return decisions, profile.counters()

        make = lambda: FaultProfile(
            drop_rate=0.2, duplicate_rate=0.2, reorder_rate=0.3, corrupt_rate=0.1, seed=5
        )
        assert trace(make()) == trace(make())

    def test_kind_scoping_limits_faults(self):
        profile = FaultProfile(drop_rate=1.0, kinds=("train_result",), seed=0)
        for _ in range(20):
            assert not profile.decide(_probe_message(kind="train_request")).drop
            assert profile.decide(_probe_message(kind="train_result")).drop

    def test_burst_override_beats_base_rate(self):
        profile = FaultProfile(drop_rate=0.0, seed=0)
        profile.set_link_drop(1, "federator", 1.0)
        assert profile.decide(_probe_message(sender=1)).drop
        # The reverse direction and other links keep the base (zero) rate.
        assert not profile.decide(_probe_message(sender=2)).drop
        profile.clear_link_drop(1, "federator")
        assert not profile.decide(_probe_message(sender=1)).drop

    def test_unfaultable_messages_only_see_bursts(self):
        profile = FaultProfile(
            drop_rate=0.0, duplicate_rate=1.0, corrupt_rate=1.0, seed=0
        )
        decision = profile.decide(_probe_message(), faultable=False)
        assert not (decision.drop or decision.duplicate or decision.corrupt)
        profile.set_link_drop(1, "federator", 1.0)
        assert profile.decide(_probe_message(sender=1), faultable=False).drop


# ---------------------------------------------------------------------------
# Reliable channel protocol invariants
# ---------------------------------------------------------------------------
def _channel(transport_config, fault_profile=None):
    env = SimulationEnvironment()
    network = Network(env)
    network.fault_profile = fault_profile
    transport = ReliableTransport(network, env, transport_config, seed=3)
    delivered = {"a": [], "b": []}
    transport.register("a", lambda m: delivered["a"].append(m))
    transport.register("b", lambda m: delivered["b"].append(m))
    return env, network, transport, delivered


class TestReliableChannel:
    def test_every_send_is_acked_or_expired(self):
        # Heavy loss, bounded attempts: some sends make it (after retries),
        # the rest expire -- but nothing stays pending and nothing hangs.
        config = TransportConfig(
            drop_rate=0.6, reliable=True, ack_timeout_s=0.2, max_attempts=3
        )
        env, network, transport, delivered = _channel(
            config, FaultProfile(drop_rate=0.6, seed=11)
        )
        expired = []
        transport.add_expiry_listener(expired.append)
        sends = 40
        for i in range(sends):
            transport.send("a", "b", "probe", payload=i, round_number=i)
        env.run()
        assert transport.pending_count() == 0
        delivered_ids = {m.payload for m in delivered["b"]}
        expired_ids = {entry["payload"] for entry in expired}
        assert delivered_ids | expired_ids == set(range(sends))
        # Loss at 60% with 3 attempts: both outcomes occur in this seed.
        assert delivered_ids and expired_ids
        assert transport.retransmits > 0

    def test_duplicates_are_delivered_once(self):
        config = TransportConfig(duplicate_rate=1.0, reliable=True)
        env, network, transport, delivered = _channel(
            config, FaultProfile(duplicate_rate=1.0, seed=1)
        )
        for i in range(10):
            transport.send("a", "b", "train_result", payload=i, round_number=i)
        env.run()
        assert [m.payload for m in delivered["b"]] == list(range(10))
        assert transport.dup_suppressed >= 10
        assert transport.pending_count() == 0

    def test_corruption_recovered_by_retransmission(self):
        # Every first copy is corrupted (seeded rng with rate 0.5 poisons
        # some transmissions); the application only ever sees clean
        # payloads, recovered via retransmit.
        config = TransportConfig(
            corrupt_rate=0.5, reliable=True, ack_timeout_s=0.2, max_attempts=6
        )
        env, network, transport, delivered = _channel(
            config, FaultProfile(corrupt_rate=0.5, seed=2)
        )
        expired = []
        transport.add_expiry_listener(expired.append)
        for i in range(20):
            transport.send("a", "b", "probe", payload=i, round_number=i)
        env.run()
        assert transport.corrupt_dropped > 0
        assert all(not m.corrupted for m in delivered["b"])
        delivered_ids = {m.payload for m in delivered["b"]}
        assert delivered_ids | {e["payload"] for e in expired} == set(range(20))
        assert len(delivered_ids) >= 15  # 0.5^6 per-message failure odds
        assert transport.pending_count() == 0

    def test_total_loss_expires_after_bounded_attempts(self):
        config = TransportConfig(
            drop_rate=0.95, reliable=True, ack_timeout_s=0.1, max_attempts=2
        )
        env, network, transport, delivered = _channel(
            config, FaultProfile(drop_rate=1.0, seed=0)
        )
        expired = []
        transport.add_expiry_listener(expired.append)
        transport.send("a", "b", "probe", payload="x", round_number=7)
        env.run()
        assert delivered["b"] == []
        assert len(expired) == 1
        assert expired[0]["round_number"] == 7
        assert expired[0]["attempts"] == 2
        assert transport.pending_count() == 0

    def test_lost_ack_triggers_re_ack_not_redelivery(self):
        # Drop every ACK (they all flow b->a here): the sender retransmits,
        # the receiver re-ACKs idempotently, the handler still fires once.
        env = SimulationEnvironment()
        network = Network(env)
        profile = FaultProfile(seed=0)
        profile.set_link_drop("b", "a", 1.0)
        network.fault_profile = profile
        config = TransportConfig(reliable=True, ack_timeout_s=0.2, max_attempts=4)
        transport = ReliableTransport(network, env, config, seed=3)
        delivered = []
        transport.register("a", lambda m: None)
        transport.register("b", delivered.append)
        transport.send("a", "b", "probe", payload="x")
        env.run()
        assert len(delivered) == 1
        assert transport.acks_sent == 4  # one per (re)transmission
        assert transport.dup_suppressed == 3

    def test_direct_transport_is_pure_passthrough(self):
        env = SimulationEnvironment()
        network = Network(env)
        transport = DirectTransport(network)
        delivered = []
        transport.register("b", delivered.append)
        message = transport.send("a", "b", "probe", payload="x")
        env.run()
        assert delivered == [message]
        assert message.msg_id is None  # no reliability machinery engaged
        assert transport.pending_count() == 0
        assert transport.counters() == {}
        assert transport.capture_state() is None

    def test_build_transport_matches_config(self):
        env = SimulationEnvironment()
        network = Network(env)
        assert isinstance(
            build_transport(network, env, TransportConfig()), DirectTransport
        )
        assert isinstance(
            build_transport(network, env, TransportConfig(reliable=True)),
            ReliableTransport,
        )


# ---------------------------------------------------------------------------
# Config plumbing: validation + hash stability
# ---------------------------------------------------------------------------
class TestTransportConfig:
    def test_corruption_requires_reliability(self):
        with pytest.raises(ValueError):
            TransportConfig(corrupt_rate=0.1)
        TransportConfig(corrupt_rate=0.1, reliable=True)  # fine

    def test_certain_loss_rejected_when_reliable(self):
        with pytest.raises(ValueError):
            TransportConfig(drop_rate=1.0, reliable=True)

    def test_null_detection(self):
        assert TransportConfig().is_null()
        assert not TransportConfig(drop_rate=0.1).is_null()
        assert not TransportConfig(reliable=True).is_null()

    def test_null_transport_excluded_from_config_hash(self):
        config = evaluation_config("mnist", "fedavg", "iid", SCALES["smoke"])
        # Pre-transport cache archives and store keys must keep their
        # hashes: the default transport vanishes from the canonical form.
        assert "transport" not in canonical_config(config)

    def test_non_null_transport_changes_config_hash(self):
        base = evaluation_config("mnist", "fedavg", "iid", SCALES["smoke"])
        lossy = base.with_overrides(transport=TransportConfig(drop_rate=0.1))
        reliable = base.with_overrides(transport=TransportConfig(reliable=True))
        assert "transport" in canonical_config(lossy)
        assert len({config_hash(base), config_hash(lossy), config_hash(reliable)}) == 3

    def test_lossy_scenario_resolves_transport_knobs(self):
        transport = scenario_transport("lossy", SCALES["smoke"])
        assert transport.reliable and transport.injects_faults()
        assert scenario_transport("stable", SCALES["smoke"]).is_null()
        assert scenario_transport("churn", SCALES["smoke"]).is_null()
        # Time-like knobs stretch with the scale's per-round work.
        smoke, bench = SCALES["smoke"], SCALES["bench"]
        stretch = (bench.local_updates * bench.batch_size) / (
            smoke.local_updates * smoke.batch_size
        )
        assert scenario_transport("lossy", bench).ack_timeout_s == pytest.approx(
            transport.ack_timeout_s * stretch
        )


# ---------------------------------------------------------------------------
# End-to-end: every federator survives the lossy scenario
# ---------------------------------------------------------------------------
def _lossy_config(algorithm: str, **overrides) -> ExperimentConfig:
    return evaluation_config(
        "mnist",
        algorithm,
        "iid",
        SCALES["smoke"],
        seed=9,
        scenario="lossy",
        dtype="float32",
        **overrides,
    )


class TestLossyEndToEnd:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_every_federator_completes_with_retransmissions(self, algorithm):
        config = _lossy_config(algorithm)
        experiment = build_experiment(config)
        result = experiment.run()
        assert len(result.rounds) == config.rounds
        totals = experiment.cluster.network_totals()
        assert totals["retransmits"] >= 1, "a lossy run must retransmit"
        assert totals["fault_drops"] >= 1
        # Graceful degradation contract: no round outlives its timeout
        # backstop (transport expiry or client timeout ends the wait).
        timeout = config.dynamics.client_timeout_s
        for record in result.rounds:
            assert record.end_time - record.start_time <= timeout + 1.0
        # Counters flow into the summary and the per-round records.  The
        # summary snapshots at finalization; the totals keep counting while
        # the tail of the event queue (late timers) drains, so totals can
        # only be >= the summary.
        summary = result.summary()
        assert 1 <= summary["net_retransmits"] <= totals["retransmits"]
        assert 1 <= summary["net_fault_drops"] <= totals["fault_drops"]
        assert any("net_retransmits" in record.extra for record in result.rounds)

    def test_serial_equals_parallel_under_faults(self):
        configs = {
            "lossy/fedavg": _lossy_config("fedavg"),
            "lossy/fedbuff": _lossy_config("fedbuff"),
        }
        serial = run_configs(configs)
        parallel = run_configs_parallel(configs, workers=2)
        for label in configs:
            assert serial[label].summary() == parallel[label].summary(), label

    def test_quorum_finalizes_partitioned_round(self):
        # One client's links collapse completely; with a 1/2 quorum the
        # round finalizes from the surviving majority instead of hanging,
        # and the unreachable client is dropped.
        config = evaluation_config(
            "mnist",
            "fedavg",
            "iid",
            SCALES["smoke"],
            seed=4,
            dtype="float32",
            transport=TransportConfig(
                reliable=True,
                ack_timeout_s=0.3,
                max_attempts=2,
                quorum_fraction=0.5,
            ),
        )
        experiment = build_experiment(config)
        profile = FaultProfile(seed=4)
        experiment.cluster.network.fault_profile = profile
        experiment.cluster.set_link_loss(0, 1.0)  # client 0 unreachable
        result = experiment.run()
        assert len(result.rounds) == config.rounds
        for record in result.rounds:
            assert 0 in record.dropped_clients
            assert len(record.completed_clients) >= 2
        assert experiment.cluster.transport.expired > 0

    def test_partition_storm_scenario_completes(self):
        config = evaluation_config(
            "mnist",
            "fedavg",
            "iid",
            SCALES["smoke"],
            seed=3,
            scenario="partition-storm",
            dtype="float32",
        )
        experiment = build_experiment(config)
        assert experiment.cluster.transport.reliable
        result = experiment.run()
        assert len(result.rounds) == config.rounds
        assert experiment.dynamics is not None  # loss-burst driver installed
        totals = experiment.cluster.network_totals()
        assert totals["fault_drops"] >= 1  # bursts bit at this seed
        assert totals["retransmits"] >= 1  # ...and the middleware recovered

    def test_null_profile_run_carries_no_transport_noise(self):
        # The stable scenario must look exactly like the pre-transport
        # simulator: no fault profile, pass-through transport, and no
        # net_* keys leaking into the per-round records.
        config = evaluation_config(
            "mnist", "fedavg", "iid", SCALES["smoke"], dtype="float32"
        )
        experiment = build_experiment(config)
        assert experiment.cluster.network.fault_profile is None
        assert isinstance(experiment.cluster.transport, DirectTransport)
        result = experiment.run()
        for record in result.rounds:
            assert not any(key.startswith("net_") for key in record.extra)
        # Whole-run totals are still surfaced in the summary.
        summary = result.summary()
        assert summary["net_messages_sent"] > 0
        assert "net_retransmits" not in summary
