"""Tests for the central plugin registries (:mod:`repro.registry`)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.fl.federator import BaseFederator
from repro.fl.runtime import available_algorithms, federator_class
from repro.registry import (
    DATASETS,
    FEDERATORS,
    SCALE_PROFILES,
    SCENARIOS,
    Registry,
    register_federator,
    registries,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


class TestRegistrySemantics:
    def test_duplicate_registration_raises(self):
        registry = Registry("widget")
        registry.register("thing", object())
        with pytest.raises(ValueError, match="duplicate widget registration 'thing'"):
            registry.register("thing", object())

    def test_duplicate_builtin_federator_raises(self):
        federator_class("fedavg")  # ensure the lazy entry is fulfilled
        with pytest.raises(ValueError, match="duplicate algorithm registration"):
            FEDERATORS.register("fedavg", object())

    def test_lazy_declaration_fulfilled_only_by_provider(self):
        registry = Registry("widget")
        registry.declare_lazy("thing", "some.module")

        class Impostor:
            pass  # __module__ is this test module, not "some.module"

        with pytest.raises(ValueError, match="duplicate widget registration"):
            registry.register("thing", Impostor)

    def test_unknown_lookup_lists_all_names_sorted(self):
        with pytest.raises(ValueError) as excinfo:
            FEDERATORS.get("not-an-algorithm")
        message = str(excinfo.value)
        assert "unknown algorithm 'not-an-algorithm'" in message
        names = list(FEDERATORS.names())
        assert names == sorted(names)
        # The full sorted catalogue is part of the error message.
        assert ", ".join(names) in message

    def test_validate_does_not_import(self):
        assert FEDERATORS.validate("TiFL") == "tifl"
        with pytest.raises(ValueError, match="unknown algorithm"):
            FEDERATORS.validate("nope")

    def test_names_are_case_insensitive(self):
        assert "FedAvg" in FEDERATORS
        assert federator_class("FedAvg") is federator_class("fedavg")

    def test_entries_do_not_force_imports(self):
        registry = Registry("widget")
        registry.declare_lazy("ghost", "repro.nonexistent_module", description="spooky")
        entries = {entry.name: entry for entry in registry.entries()}
        assert entries["ghost"].is_lazy
        assert entries["ghost"].description == "spooky"

    def test_unfulfilled_lazy_entry_raises_on_get(self):
        registry = Registry("widget")
        # ``os`` imports fine but registers nothing in this registry.
        registry.declare_lazy("thing", "os")
        with pytest.raises(RuntimeError, match="did not register"):
            registry.get("thing")


class TestBuiltinCatalogue:
    def test_all_nine_federators_resolve_through_the_registry(self):
        expected = {
            "aergia",
            "deadline",
            "fedasync",
            "fedavg",
            "fedbuff",
            "fednova",
            "fedprox",
            "fedsgd",
            "tifl",
        }
        assert set(FEDERATORS.names()) == expected
        for name in expected:
            cls = federator_class(name)
            assert issubclass(cls, BaseFederator)
            assert cls.algorithm_name == name

    def test_every_entry_has_a_description(self):
        for listing, registry in registries().items():
            for entry in registry.entries():
                assert entry.description, (listing, entry.name)

    def test_scenario_scale_dataset_registries_are_populated(self):
        assert {"stable", "churn", "mega-churn"} <= set(SCENARIOS.names())
        assert set(SCALE_PROFILES.names()) == {
            "smoke", "bench", "full", "city", "metro", "continent",
        }
        assert set(DATASETS.names()) == {"mnist", "fmnist", "cifar10", "cifar100"}

    def test_dataset_metadata_carries_the_architecture(self):
        for entry in DATASETS.entries():
            assert entry.metadata["architecture"]

    def test_cli_help_and_value_error_derive_from_the_same_registry(self):
        """The satellite guarantee: the listings can never drift."""
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(ValueError) as excinfo:
            federator_class("bogus")
        for name in available_algorithms():
            assert name in parser.epilog
            assert name in str(excinfo.value)
        assert available_algorithms() == FEDERATORS.names()


class TestThirdPartyRegistration:
    def test_register_federator_end_to_end(self):
        @register_federator("unit-test-fed", description="a test-only strategy")
        class UnitTestFederator(BaseFederator):
            algorithm_name = "unit-test-fed"

        try:
            assert "unit-test-fed" in available_algorithms()
            assert federator_class("unit-test-fed") is UnitTestFederator
            assert FEDERATORS.describe("unit-test-fed") == "a test-only strategy"
        finally:
            FEDERATORS.unregister("unit-test-fed")
        assert "unit-test-fed" not in available_algorithms()

    def test_registered_scenario_builds_dynamics(self):
        from repro.experiments.workloads import available_scenarios, scenario_dynamics
        from repro.fl.config import DynamicsConfig
        from repro.registry import register_scenario

        @register_scenario("unit-test-scenario", description="test-only scenario")
        def _unit_test_scenario(stretch: float) -> DynamicsConfig:
            return DynamicsConfig(scenario="unit-test-scenario", churn=True)

        try:
            assert "unit-test-scenario" in available_scenarios()
            dynamics = scenario_dynamics("unit-test-scenario")
            assert dynamics.churn and dynamics.scenario == "unit-test-scenario"
        finally:
            SCENARIOS.unregister("unit-test-scenario")


class TestLazyImportFromFreshInterpreter:
    def test_builtin_federators_resolve_without_eager_imports(self):
        """A fresh interpreter lists and resolves algorithms lazily."""
        code = (
            "import sys\n"
            "from repro.registry import FEDERATORS\n"
            "assert 'repro.baselines.fedbuff' not in sys.modules\n"
            "assert 'repro.core.aergia' not in sys.modules\n"
            "assert 'fedbuff' in FEDERATORS.names()\n"
            "cls = FEDERATORS.get('fedbuff')\n"
            "assert cls.__name__ == 'FedBuffFederator'\n"
            "assert 'repro.baselines.fedbuff' in sys.modules\n"
            "assert 'repro.core.aergia' not in sys.modules\n"
            "print('lazy-ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "lazy-ok" in proc.stdout
