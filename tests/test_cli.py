"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import FIGURE_NAMES, build_parser, main
from repro.experiments.parallel import reset_policy
from repro.fl.runtime import available_algorithms


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    yield
    reset_policy()


class TestParser:
    def test_help_lists_algorithms(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for algorithm in available_algorithms():
            assert algorithm in out

    def test_run_help_lists_algorithms(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "aergia" in out and "tifl" in out

    def test_unknown_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--algorithm", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "aergia" in err  # the valid choices are surfaced

    def test_every_figure_name_is_registered(self):
        from repro.cli import _figure_registry

        assert set(_figure_registry()) == set(FIGURE_NAMES)

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--workers", "2", "--scale", "smoke"])
        assert args.command == "sweep"
        assert args.workers == 2
        assert args.scale == "smoke"

    def test_figures_without_names_defaults_to_all(self):
        args = build_parser().parse_args(["figures"])
        assert args.names == ["all"]

    def test_figures_unknown_name_rejected(self, capsys):
        assert main(["figures", "nosuchfig", "--scale", "smoke"]) == 2
        err = capsys.readouterr().err
        assert "nosuchfig" in err and "fig6" in err

    def test_unknown_dataset_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--dataset", "nosuch"])
        assert excinfo.value.code == 2
        assert "mnist" in capsys.readouterr().err


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--algorithm", "fedavg", "--dataset", "mnist", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fedavg" in out
        assert "wall-clock" in out

    def test_sweep_with_cache_warm_start(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--scale",
            "smoke",
            "--datasets",
            "mnist",
            "--algorithms",
            "fedavg",
            "fedsgd",
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache hits: 0/2" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache hits: 2/2" in warm

        # The summary rows themselves are identical cold vs warm.
        rows = lambda text: [line for line in text.splitlines() if line.startswith("mnist/")]
        assert rows(cold) == rows(warm)

    def test_sweep_honors_env_cache_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = [
            "sweep",
            "--scale",
            "smoke",
            "--datasets",
            "mnist",
            "--algorithms",
            "fedsgd",
            "--workers",
            "1",
        ]
        assert main(argv) == 0
        assert "cache hits: 0/1" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache hits: 1/1" in capsys.readouterr().out

    def test_figures_table1(self, capsys):
        assert main(["figures", "table1", "--scale", "smoke", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Aergia" in out
