"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import FIGURE_NAMES, build_parser, main
from repro.experiments.parallel import reset_policy
from repro.fl.runtime import available_algorithms


@pytest.fixture(autouse=True)
def _reset_execution_policy():
    yield
    reset_policy()
    # --results-dir routes through the environment (so figure sweeps see it);
    # drop it after each test so stores never leak across in-process calls.
    os.environ.pop("REPRO_RESULTS_DIR", None)


class TestParser:
    def test_help_lists_algorithms(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for algorithm in available_algorithms():
            assert algorithm in out

    def test_run_help_lists_algorithms(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "aergia" in out and "tifl" in out

    def test_unknown_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--algorithm", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "aergia" in err  # the valid choices are surfaced

    def test_every_figure_name_is_registered(self):
        from repro.cli import _figure_registry

        assert set(_figure_registry()) == set(FIGURE_NAMES)

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--workers", "2", "--scale", "smoke"])
        assert args.command == "sweep"
        assert args.workers == 2
        assert args.scale == "smoke"

    def test_figures_without_names_defaults_to_all(self):
        args = build_parser().parse_args(["figures"])
        assert args.names == ["all"]

    def test_figures_unknown_name_rejected(self, capsys):
        assert main(["figures", "nosuchfig", "--scale", "smoke"]) == 2
        err = capsys.readouterr().err
        assert "nosuchfig" in err and "fig6" in err

    def test_unknown_dataset_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--dataset", "nosuch"])
        assert excinfo.value.code == 2
        assert "mnist" in capsys.readouterr().err


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--algorithm", "fedavg", "--dataset", "mnist", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fedavg" in out
        assert "wall-clock" in out

    def test_sweep_with_cache_warm_start(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--scale",
            "smoke",
            "--datasets",
            "mnist",
            "--algorithms",
            "fedavg",
            "fedsgd",
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache hits: 0/2" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache hits: 2/2" in warm

        # The summary rows themselves are identical cold vs warm.
        rows = lambda text: [line for line in text.splitlines() if line.startswith("mnist/")]
        assert rows(cold) == rows(warm)

    def test_sweep_honors_env_cache_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = [
            "sweep",
            "--scale",
            "smoke",
            "--datasets",
            "mnist",
            "--algorithms",
            "fedsgd",
            "--workers",
            "1",
        ]
        assert main(argv) == 0
        assert "cache hits: 0/1" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache hits: 1/1" in capsys.readouterr().out

    def test_figures_table1(self, capsys):
        assert main(["figures", "table1", "--scale", "smoke", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Aergia" in out

    def test_list_enumerates_every_registry(self, capsys):
        from repro.registry import registries

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for listing, registry in registries().items():
            assert listing in out
            for entry in registry.entries():
                assert entry.name in out
                assert entry.description.splitlines()[0] in out

    def test_run_persists_to_results_dir_and_replays(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        argv = [
            "run",
            "--algorithm",
            "fedsgd",
            "--scale",
            "smoke",
            "--results-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "fedsgd" in cold and "(from store)" not in cold
        manifests = list(tmp_path.glob("*/manifest.json"))
        jsonls = list(tmp_path.glob("*/rounds.jsonl"))
        assert len(manifests) == 1 and len(jsonls) == 1

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "(from store)" in warm

        rows = lambda text: [line for line in text.splitlines() if line.startswith("fedsgd")]
        assert rows(cold) == rows(warm)

    def test_report_renders_from_the_store_alone(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        assert (
            main(
                [
                    "run",
                    "--algorithm",
                    "fedsgd",
                    "--scale",
                    "smoke",
                    "--results-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mnist/fedsgd" in out
        assert "re-rendered from the store" in out

    def test_run_with_cache_dir_still_persists_to_results_dir(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        cache = tmp_path / "cache"
        store = tmp_path / "store"
        argv = [
            "run",
            "--algorithm",
            "fedsgd",
            "--scale",
            "smoke",
            "--cache-dir",
            str(cache),
            "--results-dir",
            str(store),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Both the result cache and the RunStore were written.
        assert list(cache.glob("*.json"))
        assert len(list(store.glob("*/manifest.json"))) == 1
        # And the env-routed store does not leak past main().
        assert "REPRO_RESULTS_DIR" not in os.environ
        # A rerun is served from the store (store hit beats cache hit).
        assert main(argv) == 0
        assert "(from store)" in capsys.readouterr().out

    def test_report_empty_store_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 1
        assert "no complete runs" in capsys.readouterr().err

    def test_repro_plugins_env_extends_the_cli(self, tmp_path, monkeypatch, capsys):
        """A third-party module named in REPRO_PLUGINS becomes a valid
        --algorithm and shows up in `repro list`."""
        import sys

        (tmp_path / "cli_plugin_under_test.py").write_text(
            "from repro.fl.federator import BaseFederator\n"
            "from repro.registry import register_federator\n"
            "\n"
            "@register_federator('plugin-fed', description='from a plugin')\n"
            "class PluginFederator(BaseFederator):\n"
            "    algorithm_name = 'plugin-fed'\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "cli_plugin_under_test")
        from repro.registry import FEDERATORS

        try:
            assert main(["list"]) == 0
            out = capsys.readouterr().out
            assert "plugin-fed" in out and "from a plugin" in out
            assert main(
                ["run", "--algorithm", "plugin-fed", "--scale", "smoke"]
            ) == 0
            assert "plugin-fed" in capsys.readouterr().out
        finally:
            FEDERATORS.unregister("plugin-fed")
            sys.modules.pop("cli_plugin_under_test", None)
