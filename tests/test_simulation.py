"""Tests for the discrete-event cluster simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.model import Phase, PhaseTrace
from repro.simulation.clock import LocalClock
from repro.simulation.cluster import FEDERATOR_ID, SimulatedCluster
from repro.simulation.cost import ComputeCostModel
from repro.simulation.events import EventQueue, SimulationEnvironment
from repro.simulation.network import LinkSpec, Network, payload_size_bytes
from repro.simulation.resources import (
    ResourceProfile,
    TransientLoad,
    speeds_with_variance,
    tiered_speed_profiles,
    uniform_speed_profiles,
)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        env = SimulationEnvironment()
        fired = []
        env.schedule(2.0, lambda: fired.append("late"))
        env.schedule(1.0, lambda: fired.append("early"))
        env.run()
        assert fired == ["early", "late"]
        assert env.now == pytest.approx(2.0)

    def test_ties_fire_in_fifo_order(self):
        env = SimulationEnvironment()
        fired = []
        for i in range(5):
            env.schedule(1.0, lambda i=i: fired.append(i))
        env.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self):
        env = SimulationEnvironment()
        fired = []
        event = env.schedule(1.0, lambda: fired.append("cancelled"))
        env.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        env.run()
        assert fired == ["kept"]

    def test_nested_scheduling(self):
        env = SimulationEnvironment()
        fired = []

        def outer():
            fired.append(("outer", env.now))
            env.schedule(0.5, lambda: fired.append(("inner", env.now)))

        env.schedule(1.0, outer)
        env.run()
        assert fired == [("outer", 1.0), ("inner", 1.5)]

    def test_run_until_limit(self):
        env = SimulationEnvironment()
        fired = []
        env.schedule(1.0, lambda: fired.append(1))
        env.schedule(5.0, lambda: fired.append(5))
        env.run(until=2.0)
        assert fired == [1]
        assert env.now == pytest.approx(2.0)
        env.run()
        assert fired == [1, 5]

    def test_cannot_schedule_in_the_past(self):
        env = SimulationEnvironment()
        with pytest.raises(ValueError):
            env.schedule(-1.0, lambda: None)
        env.schedule(1.0, lambda: None)
        env.run()
        with pytest.raises(ValueError):
            env.schedule_at(0.5, lambda: None)

    def test_queue_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == pytest.approx(2.0)

    def test_max_events_limit(self):
        env = SimulationEnvironment()
        for i in range(10):
            env.schedule(float(i), lambda: None)
        env.run(max_events=3)
        assert env.events_processed == 3
        assert env.pending_events() == 7


class TestLocalClock:
    def test_drifting_clock_scales_durations(self):
        env = SimulationEnvironment()
        clock = LocalClock(env, offset=3.0, drift=1e-3)
        assert clock.measure(10.0) == pytest.approx(10.0 * 1.001)

    def test_now_includes_offset(self):
        env = SimulationEnvironment()
        env.schedule(5.0, lambda: None)
        env.run()
        clock = LocalClock(env, offset=2.0, drift=0.0)
        assert clock.now() == pytest.approx(7.0)

    def test_elapsed(self):
        env = SimulationEnvironment()
        clock = LocalClock(env)
        start = clock.now()
        env.schedule(4.0, lambda: None)
        env.run()
        assert clock.elapsed(start) == pytest.approx(4.0)

    def test_invalid_drift_rejected(self):
        env = SimulationEnvironment()
        with pytest.raises(ValueError):
            LocalClock(env, drift=0.5)
        with pytest.raises(ValueError):
            LocalClock(env).measure(-1.0)

    def test_random_clock_within_bounds(self):
        env = SimulationEnvironment()
        clock = LocalClock.random(env, rng=np.random.default_rng(0))
        assert abs(clock.drift) <= 1e-3
        assert abs(clock.offset) <= 5.0


class TestResources:
    def test_effective_rate_scales_with_speed(self):
        fast = ResourceProfile(speed_fraction=1.0, base_flops_per_second=1e9)
        slow = ResourceProfile(speed_fraction=0.25, base_flops_per_second=1e9)
        assert fast.effective_rate() == pytest.approx(4 * slow.effective_rate())

    def test_seconds_for_flops(self):
        profile = ResourceProfile(speed_fraction=0.5, base_flops_per_second=1e9)
        assert profile.seconds_for_flops(1e9) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            profile.seconds_for_flops(-1.0)

    def test_transient_load_reduces_rate_periodically(self):
        load = TransientLoad(amplitude=0.5, period=10.0, duty=0.5, phase=0.0)
        profile = ResourceProfile(speed_fraction=1.0, transient_load=load)
        busy = profile.effective_rate(time=1.0)
        idle = profile.effective_rate(time=6.0)
        assert busy == pytest.approx(idle * 0.5)

    def test_transient_load_validation(self):
        with pytest.raises(ValueError):
            TransientLoad(amplitude=1.5)
        with pytest.raises(ValueError):
            TransientLoad(period=0.0)

    def test_uniform_profiles_within_range(self):
        profiles = uniform_speed_profiles(50, low=0.1, high=1.0, rng=np.random.default_rng(0))
        speeds = [p.speed_fraction for p in profiles]
        assert min(speeds) >= 0.1
        assert max(speeds) <= 1.0

    def test_tiered_profiles_use_given_tiers(self):
        profiles = tiered_speed_profiles(9, tiers=(0.25, 0.5, 1.0), rng=np.random.default_rng(0))
        assert {round(p.speed_fraction, 2) for p in profiles} == {0.25, 0.5, 1.0}

    def test_variance_zero_gives_identical_speeds(self):
        profiles = speeds_with_variance(6, mean=0.5, variance=0.0)
        assert all(p.speed_fraction == pytest.approx(0.5) for p in profiles)

    def test_variance_increases_spread(self):
        low = speeds_with_variance(40, mean=0.5, variance=0.01, rng=np.random.default_rng(0))
        high = speeds_with_variance(40, mean=0.5, variance=0.2, rng=np.random.default_rng(0))
        assert np.std([p.speed_fraction for p in high]) > np.std([p.speed_fraction for p in low])

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            ResourceProfile(speed_fraction=0.0)
        with pytest.raises(ValueError):
            uniform_speed_profiles(0)
        with pytest.raises(ValueError):
            speeds_with_variance(3, variance=-1.0)


def _make_trace(ff=1e6, fc=1e5, bc=2e5, bf=3e6) -> PhaseTrace:
    trace = PhaseTrace()
    trace.add(Phase.FORWARD_FEATURES, ff)
    trace.add(Phase.FORWARD_CLASSIFIER, fc)
    trace.add(Phase.BACKWARD_CLASSIFIER, bc)
    trace.add(Phase.BACKWARD_FEATURES, bf)
    return trace


class TestCostModel:
    def test_batch_seconds_inverse_to_speed(self):
        cost = ComputeCostModel(overhead_seconds_per_batch=0.0)
        trace = _make_trace()
        fast = ResourceProfile(speed_fraction=1.0, base_flops_per_second=1e9)
        slow = ResourceProfile(speed_fraction=0.5, base_flops_per_second=1e9)
        assert cost.batch_seconds(trace, slow) == pytest.approx(2 * cost.batch_seconds(trace, fast))

    def test_frozen_batch_excludes_bf(self):
        cost = ComputeCostModel(overhead_seconds_per_batch=0.0)
        trace = _make_trace()
        profile = ResourceProfile(speed_fraction=1.0, base_flops_per_second=1e9)
        full = cost.batch_seconds(trace, profile)
        frozen = cost.frozen_batch_seconds(trace, profile)
        assert frozen < full
        assert frozen == pytest.approx(full - trace.flops[Phase.BACKWARD_FEATURES] / 1e9)

    def test_feature_training_excludes_bc(self):
        cost = ComputeCostModel(overhead_seconds_per_batch=0.0)
        trace = _make_trace()
        profile = ResourceProfile(speed_fraction=1.0, base_flops_per_second=1e9)
        feature_only = cost.feature_training_seconds(trace, profile)
        assert feature_only < cost.batch_seconds(trace, profile)
        assert feature_only > cost.frozen_batch_seconds(trace, profile)

    def test_phase_seconds_keys(self):
        cost = ComputeCostModel()
        trace = _make_trace()
        profile = ResourceProfile(speed_fraction=1.0)
        assert set(cost.phase_seconds(trace, profile)) == set(Phase)


class TestNetwork:
    def test_delivery_time_includes_latency_and_bandwidth(self):
        env = SimulationEnvironment()
        network = Network(env, default_link=LinkSpec(latency_s=0.1, bandwidth_bytes_per_s=100.0))
        received = []
        network.register("a", lambda m: None)
        network.register("b", lambda m: received.append(env.now))
        network.send("a", "b", "ping", payload=None, size_bytes=50.0)
        env.run()
        assert received[0] == pytest.approx(0.1 + 0.5)

    def test_link_override(self):
        env = SimulationEnvironment()
        network = Network(env)
        network.set_link("a", "b", LinkSpec(latency_s=1.0, bandwidth_bytes_per_s=1e9))
        assert network.transfer_time("a", "b", 0.0) == pytest.approx(1.0)
        assert network.transfer_time("b", "a", 0.0) == pytest.approx(0.01)

    def test_unknown_recipient_raises(self):
        env = SimulationEnvironment()
        network = Network(env)
        network.register("a", lambda m: None)
        with pytest.raises(KeyError):
            network.send("a", "ghost", "ping")

    def test_duplicate_registration_rejected(self):
        env = SimulationEnvironment()
        network = Network(env)
        network.register("a", lambda m: None)
        with pytest.raises(ValueError):
            network.register("a", lambda m: None)

    def test_messages_preserve_fifo_per_link_when_equal_size(self):
        env = SimulationEnvironment()
        network = Network(env)
        received = []
        network.register("a", lambda m: None)
        network.register("b", lambda m: received.append(m.payload))
        for i in range(3):
            network.send("a", "b", "ping", payload=i, size_bytes=10.0)
        env.run()
        assert received == [0, 1, 2]

    def test_payload_size_of_weight_dict(self):
        weights = {"w": np.zeros((10, 10)), "b": np.zeros(10)}
        assert payload_size_bytes(weights) == pytest.approx(110 * 8)

    def test_stats_accumulate(self):
        env = SimulationEnvironment()
        network = Network(env)
        network.register("a", lambda m: None)
        network.register("b", lambda m: None)
        network.send("a", "b", "ping", size_bytes=10.0)
        network.send("b", "a", "pong", size_bytes=20.0)
        assert network.messages_sent == 2
        assert network.bytes_sent == pytest.approx(30.0)

    def test_link_spec_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(latency_s=-1.0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            LinkSpec().transfer_time(-5.0)


class TestCluster:
    def test_cluster_registers_federator_and_clients(self):
        profiles = uniform_speed_profiles(4, rng=np.random.default_rng(0))
        cluster = SimulatedCluster(profiles)
        assert cluster.num_clients == 4
        assert FEDERATOR_ID in cluster.nodes
        assert cluster.client_ids == [0, 1, 2, 3]

    def test_profile_lookup(self):
        profiles = uniform_speed_profiles(2, rng=np.random.default_rng(0))
        cluster = SimulatedCluster(profiles)
        assert cluster.profile(0) is profiles[0]
        with pytest.raises(KeyError):
            cluster.profile(99)
        with pytest.raises(KeyError):
            cluster.profile(FEDERATOR_ID)  # type: ignore[arg-type]

    def test_describe_summary(self):
        profiles = uniform_speed_profiles(8, rng=np.random.default_rng(0))
        cluster = SimulatedCluster(profiles)
        summary = cluster.describe()
        assert summary["num_clients"] == 8
        assert 0.0 < summary["speed_min"] <= summary["speed_mean"] <= summary["speed_max"] <= 1.0

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCluster([])

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_cluster_size_property(self, n):
        cluster = SimulatedCluster(uniform_speed_profiles(n, rng=np.random.default_rng(n)))
        assert cluster.num_clients == n
        assert len(cluster.client_ids) == n


class TestEventCancellationSemantics:
    """Event.cancel contracts the dynamics engine leans on (peek/pop/FIFO)."""

    def test_cancelled_head_is_skipped_by_peek_time(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 1.0
        first.cancel()
        # peek_time must look through the cancelled head to the live event.
        assert queue.peek_time() == 2.0

    def test_cancelled_events_are_never_popped(self):
        queue = EventQueue()
        events = [queue.push(float(t), lambda: None) for t in (1, 2, 3)]
        events[0].cancel()
        events[2].cancel()
        popped = queue.pop()
        assert popped is events[1]
        assert queue.pop() is None

    def test_pop_on_fully_cancelled_queue_returns_none(self):
        queue = EventQueue()
        for t in (1.0, 2.0):
            queue.push(t, lambda: None).cancel()
        assert queue.peek_time() is None
        assert queue.pop() is None
        assert len(queue) == 0
        assert not queue

    def test_cancel_after_peek_still_skips(self):
        queue = EventQueue()
        event = queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0  # peek does not consume
        event.cancel()
        assert queue.pop() is None

    def test_fifo_tie_break_at_equal_timestamps(self):
        env = SimulationEnvironment()
        fired = []
        for tag in ("a", "b", "c", "d"):
            env.schedule(1.0, lambda t=tag: fired.append(t))
        env.run()
        assert fired == ["a", "b", "c", "d"]

    def test_fifo_tie_break_survives_cancellations(self):
        env = SimulationEnvironment()
        fired = []
        events = [
            env.schedule(1.0, lambda t=tag: fired.append(t))
            for tag in ("a", "b", "c", "d", "e")
        ]
        events[1].cancel()
        events[3].cancel()
        env.run()
        assert fired == ["a", "c", "e"]

    def test_cancelling_inside_a_callback_affects_later_events(self):
        env = SimulationEnvironment()
        fired = []
        victim = env.schedule(2.0, lambda: fired.append("victim"))
        env.schedule(1.0, lambda: victim.cancel())
        env.run()
        assert fired == []


class TestLocalClockRoundTrip:
    """Offset/drift round-tripping between global and local time."""

    def test_to_global_inverts_now(self):
        env = SimulationEnvironment()
        clock = LocalClock(env, offset=3.5, drift=5e-4)
        env.schedule(7.25, lambda: None)
        env.run()
        assert env.now == 7.25
        local = clock.now()
        assert clock.to_global(local) == pytest.approx(env.now, abs=1e-12)

    def test_round_trip_for_many_offset_drift_pairs(self):
        env = SimulationEnvironment()
        env.schedule(123.456, lambda: None)
        env.run()
        rng = np.random.default_rng(99)
        for _ in range(50):
            clock = LocalClock(
                env,
                offset=float(rng.uniform(-5, 5)),
                drift=float(rng.uniform(-1e-3, 1e-3)),
            )
            assert clock.to_global(clock.now()) == pytest.approx(env.now, rel=1e-12)

    def test_measured_duration_round_trips_through_drift(self):
        env = SimulationEnvironment()
        clock = LocalClock(env, offset=-2.0, drift=1e-3)
        global_duration = 4.0
        local_duration = clock.measure(global_duration)
        assert local_duration == pytest.approx(global_duration * 1.001)
        # Undo the drift scaling: the local measurement maps back exactly.
        assert local_duration / (1.0 + clock.drift) == pytest.approx(
            global_duration, rel=1e-12
        )

    def test_elapsed_matches_measure_between_readings(self):
        env = SimulationEnvironment()
        clock = LocalClock(env, offset=1.0, drift=2e-4)
        start_local = clock.now()
        env.schedule(3.0, lambda: None)
        env.run()
        assert clock.elapsed(start_local) == pytest.approx(clock.measure(3.0), rel=1e-12)
