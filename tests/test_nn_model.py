"""Tests for the phase-aware SplitCNN model container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.architectures import build_model
from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.model import Phase, PhaseTrace, SplitCNN
from repro.nn.optim import SGD


def tiny_model(rng=None):
    """A very small split model over 1x4x4 inputs with 3 classes."""
    rng = rng if rng is not None else np.random.default_rng(0)
    from repro.nn.layers import Conv2D

    features = [Conv2D(1, 2, 3, padding=1, rng=rng), ReLU()]
    classifier = [Flatten(), Dense(2 * 4 * 4, 3, rng=rng)]
    return SplitCNN(features, classifier, name="tiny")


def tiny_batch(rng=None, n=8):
    rng = rng if rng is not None else np.random.default_rng(1)
    x = rng.normal(size=(n, 1, 4, 4))
    y = rng.integers(0, 3, size=n)
    return x, y


class TestPhaseTrace:
    def test_fractions_sum_to_one(self):
        trace = PhaseTrace()
        for i, phase in enumerate(Phase, start=1):
            trace.add(phase, float(i))
        assert sum(trace.fractions().values()) == pytest.approx(1.0)

    def test_empty_trace_fractions_are_zero(self):
        assert all(v == 0.0 for v in PhaseTrace().fractions().values())

    def test_merge_and_scale(self):
        a, b = PhaseTrace(), PhaseTrace()
        a.add(Phase.FORWARD_FEATURES, 2.0)
        b.add(Phase.FORWARD_FEATURES, 3.0)
        merged = a.merge(b)
        assert merged.flops[Phase.FORWARD_FEATURES] == 5.0
        assert merged.scaled(2.0).flops[Phase.FORWARD_FEATURES] == 10.0

    def test_ordered_phases(self):
        assert [p.value for p in Phase.ordered()] == ["ff", "fc", "bc", "bf"]


class TestWeightsIO:
    def test_get_set_roundtrip(self):
        model = tiny_model()
        weights = model.get_weights()
        other = tiny_model(np.random.default_rng(99))
        other.set_weights(weights)
        for key, value in other.get_weights().items():
            assert np.allclose(value, weights[key])

    def test_get_weights_returns_copies(self):
        model = tiny_model()
        weights = model.get_weights()
        key = next(iter(weights))
        weights[key] += 100.0
        assert not np.allclose(model.get_weights()[key], weights[key])

    def test_set_weights_missing_key_raises(self):
        model = tiny_model()
        weights = model.get_weights()
        weights.pop(next(iter(weights)))
        with pytest.raises(KeyError):
            model.set_weights(weights)

    def test_set_weights_shape_mismatch_raises(self):
        model = tiny_model()
        weights = model.get_weights()
        key = next(iter(weights))
        weights[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_feature_classifier_split_covers_all_keys(self):
        model = tiny_model()
        features = model.get_feature_weights()
        classifier = model.get_classifier_weights()
        assert set(features) | set(classifier) == set(model.get_weights())
        assert not set(features) & set(classifier)

    def test_set_partial_weights(self):
        model = tiny_model()
        features = model.get_feature_weights()
        for key in features:
            features[key] = features[key] + 1.0
        model.set_partial_weights(features)
        for key, value in model.get_feature_weights().items():
            assert np.allclose(value, features[key])

    def test_set_partial_weights_unknown_key_raises(self):
        model = tiny_model()
        with pytest.raises(KeyError):
            model.set_partial_weights({"bogus.key": np.zeros(3)})

    def test_parameter_counts_consistent(self):
        model = tiny_model()
        assert model.num_parameters() == (
            model.num_feature_parameters() + model.num_classifier_parameters()
        )

    def test_set_partial_weights_is_atomic_on_bad_shape(self):
        """A payload with one bad shape must leave the model untouched."""
        model = tiny_model()
        before = model.get_weights()
        payload = model.get_feature_weights()
        good_key = next(iter(payload))
        payload[good_key] = payload[good_key] + 5.0
        payload["classifier.1.W"] = np.zeros((1, 1))  # wrong shape
        with pytest.raises(ValueError):
            model.set_partial_weights(payload)
        for key, value in model.get_weights().items():
            assert np.array_equal(value, before[key])


class TestFlatWeightAPI:
    def test_sections_cover_all_parameters(self):
        model = tiny_model()
        total = sum(model.flat_parameters(s).size for s in model.SECTIONS)
        assert total == model.num_parameters()
        assert model.get_flat_weights().shape == (total,)

    def test_flat_views_alias_layer_params(self):
        """Layer parameter dicts must be live views into the section vectors."""
        model = tiny_model()
        vec = model.flat_parameters("features")
        conv = model.feature_layers[0]
        vec[...] = 0.0
        assert not conv.params["W"].any()
        conv.params["W"][...] = 3.0
        assert vec.sum() == pytest.approx(conv.params["W"].size * 3.0)

    def test_flat_roundtrip_matches_dict_roundtrip(self):
        model = tiny_model()
        other = tiny_model(np.random.default_rng(77))
        other.set_flat_weights(model.get_flat_weights())
        for key, value in model.get_weights().items():
            assert np.array_equal(value, other.get_weights()[key])

    def test_section_flat_roundtrip(self):
        model = tiny_model()
        features = model.get_flat_weights("features")
        model.set_flat_weights(features * 0.0, section="features")
        assert not model.flat_parameters("features").any()
        model.set_flat_weights(features, section="features")
        assert np.array_equal(model.get_flat_weights("features"), features)

    def test_flat_shape_validation(self):
        model = tiny_model()
        with pytest.raises(ValueError):
            model.set_flat_weights(np.zeros(3))
        with pytest.raises(ValueError):
            model.set_flat_weights(np.zeros(3), section="classifier")
        with pytest.raises(KeyError):
            model.flat_parameters("bogus")

    def test_flat_slots_describe_layout(self):
        model = tiny_model()
        views = model.named_flat_views()
        for section in model.SECTIONS:
            vec = model.flat_parameters(section)
            for slot in model.flat_slots(section):
                view = vec[slot.offset : slot.offset + slot.size].reshape(slot.shape)
                assert view.base is not None
                assert np.array_equal(view, views[slot.key])

    def test_flat_grads_follow_backward(self):
        model = tiny_model()
        x, y = tiny_batch()
        model.train_batch(x, y, optimizer=None)
        assert np.abs(model.flat_grads("features")).sum() > 0
        assert np.abs(model.flat_grads("classifier")).sum() > 0
        model.zero_grad()
        assert not model.flat_grads("features").any()

    def test_optimizer_step_visible_through_views(self):
        """A fused flat step must move the per-layer parameter views."""
        model = tiny_model()
        x, y = tiny_batch()
        before = model.feature_layers[0].params["W"].copy()
        model.train_batch(x, y, SGD(lr=0.5))
        assert not np.array_equal(model.feature_layers[0].params["W"], before)

    def test_explicit_dtype_casts_parameters(self):
        model64 = tiny_model()
        from repro.nn.model import SplitCNN

        cast = SplitCNN(
            model64.feature_layers, model64.classifier_layers, "tiny64", dtype=np.float64
        )
        assert cast.dtype == np.float64
        assert cast.get_flat_weights().dtype == np.float64
        for value in cast.get_weights().values():
            assert value.dtype == np.float64


class TestTraining:
    def test_train_batch_returns_all_phases(self):
        model = tiny_model()
        x, y = tiny_batch()
        _, trace = model.train_batch(x, y, SGD(lr=0.01))
        for phase in Phase:
            assert trace.flops[phase] > 0

    def test_training_reduces_loss(self):
        model = tiny_model()
        x, y = tiny_batch(n=32)
        optimizer = SGD(lr=0.1, momentum=0.9)
        first_loss, _ = model.train_batch(x, y, optimizer)
        for _ in range(30):
            last_loss, _ = model.train_batch(x, y, optimizer)
        assert last_loss < first_loss

    def test_batch_size_mismatch_raises(self):
        model = tiny_model()
        x, y = tiny_batch()
        with pytest.raises(ValueError):
            model.train_batch(x, y[:-1], SGD(lr=0.1))

    def test_frozen_features_skip_bf_phase(self):
        model = tiny_model()
        x, y = tiny_batch()
        model.freeze_features()
        _, trace = model.train_batch(x, y, SGD(lr=0.1))
        assert trace.flops[Phase.BACKWARD_FEATURES] == 0.0
        assert trace.flops[Phase.BACKWARD_CLASSIFIER] > 0.0

    def test_frozen_features_are_not_updated(self):
        model = tiny_model()
        x, y = tiny_batch()
        model.freeze_features()
        before = model.get_feature_weights()
        model.train_batch(x, y, SGD(lr=0.5))
        after = model.get_feature_weights()
        for key in before:
            assert np.allclose(before[key], after[key])

    def test_frozen_classifier_is_not_updated_but_features_are(self):
        model = tiny_model()
        x, y = tiny_batch()
        model.freeze_classifier()
        classifier_before = model.get_classifier_weights()
        features_before = model.get_feature_weights()
        model.train_batch(x, y, SGD(lr=0.5))
        for key, value in model.get_classifier_weights().items():
            assert np.allclose(value, classifier_before[key])
        changed = any(
            not np.allclose(value, features_before[key])
            for key, value in model.get_feature_weights().items()
        )
        assert changed

    def test_unfreeze_restores_updates(self):
        model = tiny_model()
        x, y = tiny_batch()
        model.freeze_features()
        model.unfreeze_features()
        before = model.get_feature_weights()
        model.train_batch(x, y, SGD(lr=0.5))
        changed = any(
            not np.allclose(value, before[key])
            for key, value in model.get_feature_weights().items()
        )
        assert changed

    def test_train_without_optimizer_keeps_weights(self):
        model = tiny_model()
        x, y = tiny_batch()
        before = model.get_weights()
        model.train_batch(x, y, optimizer=None)
        after = model.get_weights()
        for key in before:
            assert np.allclose(before[key], after[key])

    def test_phase_trace_for_batch_preserves_weights(self):
        model = tiny_model()
        x, y = tiny_batch()
        before = model.get_weights()
        trace = model.phase_trace_for_batch(x, y)
        assert trace.total() > 0
        for key, value in model.get_weights().items():
            assert np.allclose(value, before[key])


class TestInferenceAndEvaluation:
    def test_forward_shape(self):
        model = tiny_model()
        x, _ = tiny_batch()
        assert model.forward(x).shape == (x.shape[0], 3)

    def test_predict_proba_rows_sum_to_one(self):
        model = tiny_model()
        x, _ = tiny_batch()
        probs = model.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_evaluate_bounds(self):
        model = tiny_model()
        x, y = tiny_batch(n=20)
        loss, accuracy = model.evaluate(x, y)
        assert loss > 0
        assert 0.0 <= accuracy <= 1.0

    def test_evaluate_empty_raises(self):
        model = tiny_model()
        with pytest.raises(ValueError):
            model.evaluate(np.zeros((0, 1, 4, 4)), np.zeros((0,), dtype=int))

    def test_clone_architecture_is_independent(self):
        model = tiny_model()
        clone = model.clone_architecture()
        clone_weights = clone.get_weights()
        key = next(iter(clone_weights))
        clone.params_changed = clone_weights[key] + 1  # unrelated attribute
        model_weights_before = model.get_weights()
        # Training the clone must not change the original.
        x, y = tiny_batch()
        clone.train_batch(x, y, SGD(lr=0.5))
        for k, value in model.get_weights().items():
            assert np.allclose(value, model_weights_before[k])

    def test_requires_classifier_layers(self):
        with pytest.raises(ValueError):
            SplitCNN([ReLU()], [], name="broken")


class TestRealArchitectureTraining:
    def test_mnist_cnn_learns_on_tiny_dataset(self, small_mnist):
        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        optimizer = SGD(lr=0.05, momentum=0.9)
        x, y = small_mnist.x_train[:64], small_mnist.y_train[:64]
        _, accuracy_before = model.evaluate(x, y)
        for _ in range(12):
            model.train_batch(x[:32], y[:32], optimizer)
            model.train_batch(x[32:], y[32:], optimizer)
        _, accuracy_after = model.evaluate(x, y)
        assert accuracy_after > accuracy_before
