"""Tests for the loss, optimisers, metrics and architecture registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.architectures import ARCHITECTURES, build_model
from repro.nn.loss import CrossEntropyLoss, softmax
from repro.nn.metrics import accuracy, top_k_accuracy
from repro.nn.optim import ProximalSGD, SGD


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(4, 6))
        assert np.allclose(softmax(logits), softmax(logits + 1000.0))

    def test_loss_of_perfect_prediction_is_small(self):
        logits = np.array([[20.0, 0.0, 0.0], [0.0, 20.0, 0.0]])
        labels = np.array([0, 1])
        assert CrossEntropyLoss().forward(logits, labels) < 1e-6

    def test_loss_of_uniform_prediction(self):
        logits = np.zeros((3, 4))
        labels = np.array([0, 1, 2])
        assert CrossEntropyLoss().forward(logits, labels) == pytest.approx(np.log(4))

    def test_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = rng.integers(0, 5, size=3)
        loss_fn = CrossEntropyLoss()
        _, grad = loss_fn.forward_backward(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus, minus = logits.copy(), logits.copy()
                plus[i, j] += eps
                minus[i, j] -= eps
                numeric[i, j] = (
                    loss_fn.forward(plus, labels) - loss_fn.forward(minus, labels)
                ) / (2 * eps)
        assert np.allclose(grad, numeric, atol=1e-6)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_loss_is_nonnegative(self, n, classes):
        rng = np.random.default_rng(n * 100 + classes)
        logits = rng.normal(size=(n, classes))
        labels = rng.integers(0, classes, size=n)
        assert CrossEntropyLoss().forward(logits, labels) >= 0.0


class TestSGD:
    def test_plain_step(self):
        optimizer = SGD(lr=0.1)
        params = {"w": np.array([1.0, 2.0])}
        grads = {"w": np.array([1.0, -1.0])}
        optimizer.step(params, grads)
        assert np.allclose(params["w"], [0.9, 2.1])

    def test_update_is_in_place(self):
        optimizer = SGD(lr=0.1)
        w = np.array([1.0])
        params = {"w": w}
        optimizer.step(params, {"w": np.array([1.0])})
        assert w[0] == pytest.approx(0.9)

    def test_momentum_accumulates(self):
        optimizer = SGD(lr=1.0, momentum=0.5)
        params = {"w": np.array([0.0])}
        grads = {"w": np.array([1.0])}
        optimizer.step(params, grads)   # v=1, w=-1
        optimizer.step(params, grads)   # v=1.5, w=-2.5
        assert params["w"][0] == pytest.approx(-2.5)

    def test_weight_decay(self):
        optimizer = SGD(lr=0.1, weight_decay=0.1)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([0.0])})
        assert params["w"][0] == pytest.approx(1.0 - 0.1 * 0.1)

    def test_reset_state_clears_momentum(self):
        optimizer = SGD(lr=1.0, momentum=0.9)
        params = {"w": np.array([0.0])}
        optimizer.step(params, {"w": np.array([1.0])})
        optimizer.reset_state()
        params = {"w": np.array([0.0])}
        optimizer.step(params, {"w": np.array([1.0])})
        assert params["w"][0] == pytest.approx(-1.0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)


class TestProximalSGD:
    def test_zero_mu_matches_sgd(self):
        prox = ProximalSGD(lr=0.1, mu=0.0)
        sgd = SGD(lr=0.1)
        p1 = {"w": np.array([1.0, -2.0])}
        p2 = {"w": np.array([1.0, -2.0])}
        grads = {"w": np.array([0.5, 0.5])}
        prox.set_anchor({"w": np.array([0.0, 0.0])})
        prox.step(p1, grads)
        sgd.step(p2, grads)
        assert np.allclose(p1["w"], p2["w"])

    def test_proximal_term_pulls_towards_anchor(self):
        prox = ProximalSGD(lr=0.1, mu=1.0)
        params = {"w": np.array([2.0])}
        prox.set_anchor({"w": np.array([0.0])})
        prox.step(params, {"w": np.array([0.0])})
        # Gradient of the proximal term is mu * (w - anchor) = 2.
        assert params["w"][0] == pytest.approx(2.0 - 0.1 * 2.0)

    def test_without_anchor_behaves_like_sgd(self):
        prox = ProximalSGD(lr=0.1, mu=1.0)
        params = {"w": np.array([2.0])}
        prox.step(params, {"w": np.array([1.0])})
        assert params["w"][0] == pytest.approx(1.9)

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            ProximalSGD(lr=0.1, mu=-0.5)

    def test_per_key_anchor_with_section_step_raises(self):
        """An anchor keyed by parameter names cannot silently no-op on the
        section-vector step that SplitCNN.train_batch drives."""
        from repro.nn.architectures import build_model

        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        prox = ProximalSGD(lr=0.1, mu=0.5)
        prox.set_anchor(model.get_weights())  # per-parameter keys
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 1, 28, 28))
        y = rng.integers(0, 10, size=4)
        with pytest.raises(ValueError, match="anchor keys"):
            model.train_batch(x, y, prox)

    def test_partial_section_anchor_raises(self):
        """An anchor covering only some sections must not silently drop the
        proximal term for the others."""
        from repro.nn.architectures import build_model

        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        prox = ProximalSGD(lr=0.1, mu=0.5)
        prox.set_anchor({"features": model.flat_parameters("features")})
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 1, 28, 28))
        y = rng.integers(0, 10, size=4)
        with pytest.raises(ValueError, match="missing model sections"):
            model.train_batch(x, y, prox)

    def test_fully_frozen_model_step_is_a_noop(self):
        """No trainable sections -> no update and no spurious anchor error."""
        from repro.nn.architectures import build_model

        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        prox = ProximalSGD(lr=0.1, mu=0.5)
        prox.set_anchor(
            {section: model.flat_parameters(section) for section in model.SECTIONS}
        )
        model.freeze_features()
        model.freeze_classifier()
        before = model.get_flat_weights()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 1, 28, 28))
        y = rng.integers(0, 10, size=4)
        model.train_batch(x, y, prox)
        assert np.array_equal(model.get_flat_weights(), before)

    def test_flat_section_anchor_applies_proximal_term(self):
        from repro.nn.architectures import build_model

        model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        prox = ProximalSGD(lr=0.1, mu=0.5)
        prox.set_anchor(
            {section: model.flat_parameters(section) for section in model.SECTIONS}
        )
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 1, 28, 28))
        y = rng.integers(0, 10, size=4)
        loss, _ = model.train_batch(x, y, prox)
        assert np.isfinite(loss)

    def test_reset_state_clears_anchor(self):
        prox = ProximalSGD(lr=0.1, mu=1.0)
        prox.set_anchor({"w": np.array([0.0])})
        prox.reset_state()
        params = {"w": np.array([2.0])}
        prox.step(params, {"w": np.array([0.0])})
        assert params["w"][0] == pytest.approx(2.0)


class TestMetrics:
    def test_accuracy_from_labels(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_accuracy_from_logits(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 1.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1, 2, 3]))

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_top_k_accuracy(self):
        scores = np.array([[0.1, 0.5, 0.4], [0.7, 0.2, 0.1]])
        labels = np.array([2, 1])
        assert top_k_accuracy(scores, labels, k=1) == pytest.approx(0.0)
        assert top_k_accuracy(scores, labels, k=2) == pytest.approx(1.0)

    def test_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.array([0, 1]), k=4)


class TestArchitectures:
    @pytest.mark.parametrize("name", sorted(ARCHITECTURES))
    def test_build_and_forward(self, name):
        spec = ARCHITECTURES[name]
        model = build_model(name, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, *spec.input_shape))
        logits = model.forward(x)
        assert logits.shape == (2, spec.num_classes)

    def test_unknown_architecture_raises(self):
        with pytest.raises(KeyError):
            build_model("not-a-network")

    def test_deterministic_initialisation(self):
        a = build_model("mnist-cnn", rng=np.random.default_rng(5))
        b = build_model("mnist-cnn", rng=np.random.default_rng(5))
        for key, value in a.get_weights().items():
            assert np.allclose(value, b.get_weights()[key])

    def test_mnist_cnn_structure_matches_paper(self):
        """Two convolutional layers and a single fully connected layer (§5.1)."""
        from repro.nn.layers import Conv2D, Dense

        model = build_model("mnist-cnn")
        convs = [l for l in model.feature_layers if isinstance(l, Conv2D)]
        denses = [l for l in model.classifier_layers if isinstance(l, Dense)]
        assert len(convs) == 2
        assert len(denses) == 1

    def test_cifar10_cnn_structure_matches_paper(self):
        """Six convolutional layers and two fully connected layers (§5.1)."""
        from repro.nn.layers import Conv2D, Dense

        model = build_model("cifar10-cnn")
        convs = [l for l in model.feature_layers if isinstance(l, Conv2D)]
        denses = [l for l in model.classifier_layers if isinstance(l, Dense)]
        assert len(convs) == 6
        assert len(denses) == 2
