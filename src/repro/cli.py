"""Command-line entry point for the Aergia reproduction.

``python -m repro`` (or the installed ``repro`` console script) exposes the
experiment harness without writing any Python:

``repro run``
    One experiment (algorithm x dataset x partition) at a chosen scale,
    streamed round by round through :mod:`repro.api`.
``repro sweep``
    A dataset x algorithm grid, executed through the parallel sweep runner
    with optional result caching and run persistence.
``repro figures``
    Regenerate one or more figures/tables of the paper and print their
    text renderings.
``repro report``
    Re-render summary tables from a persisted results directory alone
    (see ``--results-dir`` / :class:`repro.api.RunStore`).
``repro serve``
    Long-lived experiment server: submit specs over HTTP, stream rounds
    live as JSONL, feed device check-ins into running scenarios; SIGTERM
    drains via checkpoints and a restart resumes bitwise-identically.
``repro bench``
    Time the same sweep serially and in parallel, verify the summaries
    are identical, and report the speedup.  ``--serve`` benchmarks the
    service mode instead (loadgen -> BENCH_serve.json).

Every subcommand accepts ``--scale {smoke,bench,full}`` (defaulting to the
``REPRO_SCALE`` environment variable) and the sweep-shaped ones accept
``--workers``, ``--cache-dir`` and ``--results-dir``.

The CLI is a thin consumer of :mod:`repro.api`: every name it accepts
(``--algorithm``, ``--scenario``, ``--dataset``, ``--scale``) comes from
the central registries in :mod:`repro.registry`, so the help text, the
``repro list`` catalogue and the library's own error messages can never
enumerate different sets.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import repro.api as api
from repro.experiments.parallel import (
    configure,
    resolve_workers,
    run_configs_parallel,
)
from repro.experiments.report import render_network_counters, render_summaries, render_table1
from repro.experiments.runner import run_configs
from repro.experiments.workloads import (
    SCALES,
    ScaleProfile,
    available_scenarios,
    baseline_algorithms,
    evaluation_config,
    known_datasets,
)
from repro.fl.runtime import available_algorithms
from repro.registry import load_plugins, registries


# ---------------------------------------------------------------------------
# Figure registry: name -> callable(scale, seed) -> printable rendering
# ---------------------------------------------------------------------------
def _figure_registry() -> Dict[str, Callable[[ScaleProfile, Optional[int]], str]]:
    from repro.experiments import figures as F

    def scaled(func):
        def runner(scale: ScaleProfile, seed: Optional[int]) -> str:
            kwargs = {"scale": scale}
            if seed is not None:
                kwargs["seed"] = seed
            return func(**kwargs)["render"]

        return runner

    def unscaled(func):
        def runner(scale: ScaleProfile, seed: Optional[int]) -> str:
            return func()["render"]

        return runner

    return {
        "fig1a": scaled(F.figure1a),
        "fig1bc": scaled(F.figure1b_1c),
        "fig4": lambda scale, seed: F.figure4(**({"seed": seed} if seed is not None else {}))[
            "render"
        ],
        "fig6": scaled(F.figure6),
        "fig7": scaled(F.figure7),
        "fig8": scaled(F.figure8),
        "fig9": scaled(F.figure9),
        "fig10": scaled(F.figure10),
        "table1": lambda scale, seed: render_table1(),
        "headline": scaled(F.headline_claims),
        "profiler-overhead": scaled(F.profiler_overhead),
        "ablation-profile-length": scaled(F.ablation_profile_length),
        "ablation-offload-point": unscaled(F.ablation_offload_point),
        "ablation-freeze-side": unscaled(F.ablation_freeze_side),
    }


FIGURE_NAMES = (
    "fig1a",
    "fig1bc",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "headline",
    "profiler-overhead",
    "ablation-profile-length",
    "ablation-offload-point",
    "ablation-freeze-side",
)


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------
def _default_scale_name() -> str:
    name = os.environ.get("REPRO_SCALE", "bench").lower()
    return name if name in SCALES else "bench"


def _add_scale_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=_default_scale_name(),
        help="workload scale profile (default: $REPRO_SCALE or bench)",
    )


def _add_dtype_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default=None,
        help="compute dtype of the numpy engine (default: $REPRO_DTYPE or float32; "
        "float64 reproduces the original engine bit-for-bit; simulated times are "
        "identical either way)",
    )


def _apply_dtype(args: argparse.Namespace) -> None:
    """Make an explicit --dtype the process-wide default (workers inherit it)."""
    if getattr(args, "dtype", None):
        from repro.nn.dtype import set_compute_dtype

        os.environ["REPRO_DTYPE"] = args.dtype
        set_compute_dtype(args.dtype)


def _apply_results_dir(args: argparse.Namespace) -> None:
    """Make an explicit --results-dir the process-wide default store.

    Routing through the environment means every sweep in the process —
    including the figure functions, which take no store argument — persists
    to (and replays from) the same RunStore via
    :func:`repro.api.default_store`.
    """
    if getattr(args, "results_dir", None):
        os.environ["REPRO_RESULTS_DIR"] = args.results_dir


def _add_scenario_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default="stable",
        help="cluster-dynamics scenario: churn, dropouts, slowdown bursts, "
        "bandwidth traces (default: stable = static cluster); "
        "see `repro list` for descriptions",
    )


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for the sweep "
        "(default: $REPRO_WORKERS, else one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache; already-computed cells are loaded, not re-run "
        "(default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help="persistent RunStore: every run writes a manifest + per-round JSONL "
        "there, and already-stored runs are replayed from disk "
        "(default: $REPRO_RESULTS_DIR; see `repro report`)",
    )


def build_parser() -> argparse.ArgumentParser:
    algorithms = ", ".join(available_algorithms())
    scenarios = ", ".join(available_scenarios())
    epilog = f"available algorithms: {algorithms}\navailable scenarios: {scenarios}"
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for Aergia (Middleware '22): "
        "run experiments, sweeps, and regenerate the paper's figures.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list",
        help="list available algorithms, scenarios, datasets, scales and figures",
        description="Print every valid --algorithm, --scenario, --dataset and "
        "--scale value (plus the figure names) with a one-line description.",
    )
    del list_p  # takes no arguments

    run_p = sub.add_parser(
        "run",
        help="run one experiment and print its summary",
        description="Run a single experiment configuration.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_p.add_argument(
        "--algorithm",
        default="fedavg",
        choices=available_algorithms(),
        help="federated-learning algorithm (default: fedavg)",
    )
    run_p.add_argument(
        "--dataset",
        default="mnist",
        choices=known_datasets(),
        help="dataset name (default: mnist)",
    )
    run_p.add_argument(
        "--partition",
        default="iid",
        choices=("iid", "noniid", "dirichlet"),
        help="client data partition scheme (default: iid)",
    )
    run_p.add_argument("--seed", type=int, default=42, help="experiment seed (default: 42)")
    run_p.add_argument("--rounds", type=int, default=None, help="override the round budget")
    run_p.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="K",
        help="write a resumable mid-run checkpoint into the results dir every "
        "K completed rounds (requires --results-dir / $REPRO_RESULTS_DIR)",
    )
    run_p.add_argument(
        "--batched",
        choices=("auto", "on", "off"),
        default=None,
        help="batched multi-client compute: run lockstep-compatible clients of a "
        "round as one (clients, params) kernel set; results are bitwise identical "
        "either way (default: the config's batched_execution, i.e. auto)",
    )
    run_p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard the batched compute plane across N worker processes "
        "(hierarchical edge/root aggregation); results are bitwise identical "
        "to the single-process run (default: the config's shards, i.e. 1)",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run of this exact configuration from its "
        "last checkpoint; the resumed rounds are bitwise identical to an "
        "uninterrupted run (no-op when no checkpoint exists)",
    )
    _add_scenario_flag(run_p)
    _add_scale_flag(run_p)
    _add_dtype_flag(run_p)
    _add_execution_flags(run_p)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a dataset x algorithm grid through the parallel runner",
        description="Run a dataset x algorithm sweep in parallel with caching.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep_p.add_argument(
        "--datasets",
        nargs="+",
        default=["mnist", "fmnist"],
        choices=known_datasets(),
        help="datasets to sweep (default: mnist fmnist)",
    )
    sweep_p.add_argument(
        "--algorithms",
        nargs="+",
        default=list(baseline_algorithms()),
        choices=available_algorithms(),
        help="algorithms to sweep (default: the paper's five baselines)",
    )
    sweep_p.add_argument(
        "--partition",
        default="noniid",
        choices=("iid", "noniid", "dirichlet"),
        help="client data partition scheme (default: noniid)",
    )
    sweep_p.add_argument("--seed", type=int, default=42, help="experiment seed (default: 42)")
    sweep_p.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget for the sweep; checked before each cell "
        "(a running cell always finishes), remaining cells are marked "
        "budget_exceeded and picked up by a later --resume",
    )
    sweep_p.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N cells this invocation (store hits are free)",
    )
    sweep_p.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="K",
        help="checkpoint every cell every K rounds so killed cells resume "
        "instead of recomputing (requires a results dir)",
    )
    sweep_p.add_argument(
        "--resume",
        action="store_true",
        help="resume interrupted cells from their checkpoints and re-plan "
        "failed/budget_exceeded cells; complete cells replay from the store",
    )
    _add_scenario_flag(sweep_p)
    _add_scale_flag(sweep_p)
    _add_dtype_flag(sweep_p)
    _add_execution_flags(sweep_p)

    fig_p = sub.add_parser(
        "figures",
        help="regenerate figures/tables of the paper",
        description="Regenerate one or more paper figures and print their renderings.",
    )
    fig_p.add_argument(
        "names",
        nargs="*",
        default=["all"],
        metavar="FIGURE",
        help="figures to regenerate (default: all); one of: "
        + ", ".join(FIGURE_NAMES + ("all",)),
    )
    fig_p.add_argument(
        "--seed", type=int, default=None, help="override each figure's default seed"
    )
    _add_scale_flag(fig_p)
    _add_dtype_flag(fig_p)
    _add_execution_flags(fig_p)

    report_p = sub.add_parser(
        "report",
        help="re-render summaries from a persisted results directory",
        description="Render summary and round-duration tables from a RunStore "
        "written by `repro run/sweep --results-dir` (or repro.api) — entirely "
        "from disk, with no experiment execution.",
    )
    report_p.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="results directory written by --results-dir / repro.api.RunStore",
    )
    report_p.add_argument("--algorithm", default=None, help="only runs of this algorithm")
    report_p.add_argument("--dataset", default=None, help="only runs on this dataset")
    report_p.add_argument("--scenario", default=None, help="only runs of this scenario")
    report_p.add_argument(
        "--json",
        action="store_true",
        help="print machine-readable run summaries (repro.api.Results.to_json) "
        "instead of rendered tables; includes incomplete/crashed runs",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the long-lived experiment server",
        description="Serve experiments over HTTP: submit validated specs, stream "
        "rounds live as JSONL, feed device check-ins into running scenarios, and "
        "query/cancel hosted runs. Every run persists through the results "
        "directory's RunStore, so `repro report` works on it unchanged. SIGTERM "
        "drains gracefully: in-flight runs checkpoint and a restarted server "
        "resumes them bitwise-identically. See docs/api.md for the protocol.",
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve_p.add_argument(
        "--port", type=int, default=8321, help="bind port; 0 picks a free one (default: 8321)"
    )
    serve_p.add_argument(
        "--results-dir",
        required=True,
        metavar="DIR",
        help="RunStore directory every hosted run persists through (required)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="concurrent experiment worker threads (default: 4)",
    )
    serve_p.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1,
        metavar="K",
        help="default checkpoint cadence (rounds) applied to hosted runs that "
        "set none, so a drain can always checkpoint them (default: 1)",
    )
    serve_p.add_argument(
        "--no-resume",
        action="store_true",
        help="do not auto-resume resumable runs found in the results dir at startup",
    )
    serve_p.add_argument(
        "--drain-timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="seconds allowed for checkpointing in-flight runs on SIGTERM (default: 120)",
    )
    _add_dtype_flag(serve_p)

    bench_p = sub.add_parser(
        "bench",
        help="time serial vs parallel execution of the same sweep",
        description="Run one sweep serially and in parallel, verify per-label "
        "summaries are identical, and report both wall-clocks.",
    )
    bench_p.add_argument(
        "--datasets",
        nargs="+",
        default=["mnist", "fmnist"],
        choices=known_datasets(),
        help="datasets (default: mnist fmnist)",
    )
    bench_p.add_argument(
        "--algorithms",
        nargs="+",
        default=list(baseline_algorithms()),
        choices=available_algorithms(),
        help="algorithms (default: the paper's five baselines)",
    )
    bench_p.add_argument(
        "--partition",
        default="noniid",
        choices=("iid", "noniid", "dirichlet"),
        help="client data partition scheme (default: noniid)",
    )
    bench_p.add_argument("--seed", type=int, default=42, help="experiment seed (default: 42)")
    _add_scenario_flag(bench_p)
    _add_scale_flag(bench_p)
    _add_dtype_flag(bench_p)
    bench_p.add_argument(
        "--engine",
        action="store_true",
        help="benchmark the compute engine (train/eval/aggregation microbenchmarks "
        "vs the seed reference engine) instead of the sweep, writing BENCH_engine.json",
    )
    bench_p.add_argument(
        "--output",
        default="BENCH_engine.json",
        metavar="PATH",
        help="where --engine writes its JSON results (default: BENCH_engine.json)",
    )
    bench_p.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="--engine timing repeats per benchmark (default: 20, or 5 at smoke scale)",
    )
    bench_p.add_argument(
        "--warmup",
        type=int,
        default=None,
        metavar="N",
        help="--engine discarded warmup runs per benchmark (default: 3, or 1 at smoke scale)",
    )
    bench_p.add_argument(
        "--shard",
        action="store_true",
        help="benchmark the sharded compute plane instead: round-throughput "
        "ladder over worker counts plus per-worker peak RSS and a "
        "continent-scale completion check, writing BENCH_shard.json",
    )
    bench_p.add_argument(
        "--serve",
        action="store_true",
        help="benchmark the service mode instead: start a `repro serve` "
        "subprocess, host concurrent churn experiments, replay a high-rate "
        "client workload from worker processes, and write per-endpoint "
        "throughput + p50/p95/p99 latency to BENCH_serve.json",
    )
    bench_p.add_argument(
        "--events",
        type=int,
        default=None,
        metavar="N",
        help="--serve total client events (default: 100000, or 2000 at smoke scale)",
    )
    bench_p.add_argument(
        "--experiments",
        type=int,
        default=4,
        metavar="N",
        help="--serve concurrent hosted experiments (default: 4)",
    )
    # No --cache-dir here: bench times actual execution, and serving the
    # parallel leg from a warm cache would turn the "speedup" into a
    # cache-load measurement.
    bench_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for the parallel leg (default: $REPRO_WORKERS, else one per CPU)",
    )

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------
def _grid_configs(
    datasets: Sequence[str],
    algorithms: Sequence[str],
    partition: str,
    scale: ScaleProfile,
    seed: int,
    dtype: Optional[str] = None,
    scenario: Optional[str] = None,
) -> Dict[str, object]:
    return {
        f"{dataset}/{algorithm}": evaluation_config(
            dataset, algorithm, partition, scale, seed=seed, dtype=dtype, scenario=scenario
        )
        for dataset in datasets
        for algorithm in algorithms
    }


#: Listing header -> the CLI flag that accepts the registry's names.
_REGISTRY_FLAGS = {
    "algorithms": "repro run/sweep --algorithm",
    "scenarios": "repro run/sweep --scenario",
    "datasets": "repro run/sweep --dataset",
    "scales": "--scale",
}


def _cmd_list(args: argparse.Namespace) -> int:
    """Enumerate every plugin registry with its registration metadata.

    Rendered straight from :func:`repro.registry.registries`, so anything a
    third party registers (federators, scenarios, scales, datasets) shows
    up here without CLI changes — and lazy entries are listed without
    importing their provider modules.
    """
    first = True
    for listing, registry in registries().items():
        if not first:
            print()
        first = False
        print(f"{listing} ({_REGISTRY_FLAGS.get(listing, listing)}):")
        for entry in registry.entries():
            description = entry.description
            extras = []
            if listing == "scales":
                # entry.obj, not SCALES[...]: listing must not import lazy
                # providers, and third-party scales need not be ScaleProfiles.
                profile = entry.obj
                if profile is not None and hasattr(profile, "num_clients"):
                    extras.append(
                        f"{profile.num_clients} clients, {profile.rounds} rounds, "
                        f"{profile.local_updates} local updates, "
                        f"{profile.train_size} train samples"
                    )
            if listing == "datasets" and "architecture" in entry.metadata:
                extras.append(f"architecture: {entry.metadata['architecture']}")
            if extras:
                description = f"{description} ({'; '.join(extras)})" if description else "; ".join(extras)
            print(f"  {entry.name:<16} {description}".rstrip())
    print("\nfigures (repro figures):")
    print("  " + ", ".join(FIGURE_NAMES + ("all",)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    _apply_dtype(args)
    _apply_results_dir(args)
    spec = (
        api.experiment(args.algorithm)
        .dataset(args.dataset)
        .partition(args.partition)
        .scale(args.scale)
        .scenario(args.scenario)
        .seed(args.seed)
        .override(dtype=args.dtype)
    )
    if args.rounds is not None:
        spec = spec.rounds(args.rounds)
    if args.checkpoint_interval is not None:
        spec = spec.override(checkpoint_interval=args.checkpoint_interval)
    if args.batched is not None:
        spec = spec.override(batched_execution=args.batched)
    if args.shards is not None:
        spec = spec.override(shards=args.shards)
        if args.batched is None:
            # Sharding rides on the batched engine; small scales would
            # otherwise fall under the auto threshold and shard nothing.
            spec = spec.override(batched_execution="on")
    if (args.resume or args.checkpoint_interval is not None) and not (
        args.results_dir or os.environ.get("REPRO_RESULTS_DIR")
    ):
        print(
            "repro run: --resume/--checkpoint-interval need a results dir "
            "(--results-dir or $REPRO_RESULTS_DIR) to hold the checkpoint",
            file=sys.stderr,
        )
        return 2

    if args.cache_dir or os.environ.get("REPRO_CACHE_DIR"):
        # Cache path: api.sweep consults the ResultCache exactly like the
        # pre-api CLI did, *and* still persists/replays through the
        # RunStore when --results-dir / REPRO_RESULTS_DIR is set.
        policy = configure(workers=args.workers, cache_dir=args.cache_dir)
        start = time.perf_counter()
        handle = api.sweep(
            {args.algorithm: spec.build()},
            workers=policy.workers,
            cache_dir=policy.cache_dir,
            store=args.results_dir,
            resume=args.resume,
        )
        elapsed = time.perf_counter() - start
        summaries = handle.summaries()
        cached = (
            " (cached)"
            if handle.cache_hits
            else (" (from store)" if handle.store_hits else "")
        )
    else:
        # The api path: stream the run round by round, optionally persisted.
        start = time.perf_counter()
        handle = spec.run(store=args.results_dir, resume=args.resume)
        if handle.resumed_from_round is not None:
            print(
                f"  resuming from checkpoint at round {handle.resumed_from_round}",
                file=sys.stderr,
            )
        for record in handle.stream():
            print(
                f"  round {record.round_number}: "
                f"accuracy={record.test_accuracy:.3f} "
                f"duration={record.duration:.2f}s "
                f"dropped={len(record.dropped_clients)}",
                file=sys.stderr,
            )
        elapsed = time.perf_counter() - start
        summaries = {args.algorithm: handle.summary()}
        cached = " (from store)" if handle.loaded_from_store else ""
        if handle.resumed_from_round is not None:
            cached = f" (resumed from round {handle.resumed_from_round})"

    print(
        render_summaries(
            summaries,
            title=f"repro run: {args.dataset}/{args.algorithm} "
            f"({args.partition}, {scale.name} scale, {args.scenario} scenario)",
        )
    )
    network_table = render_network_counters(summaries, title="network/transport counters")
    if network_table:
        print()
        print(network_table)
    print(f"\nwall-clock: {elapsed:.2f}s{cached}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    _apply_dtype(args)
    _apply_results_dir(args)
    configs = _grid_configs(
        args.datasets,
        args.algorithms,
        args.partition,
        scale,
        args.seed,
        dtype=args.dtype,
        scenario=args.scenario,
    )
    policy = configure(args.workers, args.cache_dir)
    workers, cache_dir = policy.workers, policy.cache_dir
    budgeted = (
        args.budget_seconds is not None
        or args.max_cells is not None
        or args.resume
        or args.checkpoint_interval is not None
    )
    start = time.perf_counter()
    handle = api.sweep(
        configs,
        workers=workers,
        cache_dir=cache_dir,
        store=args.results_dir,
        progress=lambda label, _result: print(f"  done: {label}", file=sys.stderr),
        budget_seconds=args.budget_seconds,
        max_cells=args.max_cells,
        resume=args.resume,
        checkpoint_interval=args.checkpoint_interval,
    )
    elapsed = time.perf_counter() - start
    mode = "budget-aware serial scheduler" if budgeted else (
        f"{workers} worker{'s' if workers != 1 else ''}"
    )
    print(
        render_summaries(
            handle.summaries(),
            title=f"repro sweep: {len(configs)} cells, {scale.name} scale, {mode}",
        )
    )
    if budgeted:
        from collections import Counter

        counts = Counter(handle.states.values())
        print(
            "cell states: "
            + ", ".join(f"{state}={count}" for state, count in sorted(counts.items())),
            file=sys.stderr,
        )
        for label, error in sorted(handle.errors.items()):
            print(f"  failed: {label}: {error}", file=sys.stderr)
    print(
        f"\nwall-clock: {elapsed:.2f}s  "
        f"(sum of per-cell compute: {handle.total_wall_seconds():.2f}s)"
    )
    if cache_dir is not None:
        print(f"cache hits: {len(handle.cache_hits)}/{len(configs)} in {cache_dir}")
    if handle.store is not None:
        print(
            f"results dir: {handle.store.root} "
            f"(store hits: {len(handle.store_hits)}/{len(configs)})"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render summary tables from a persisted RunStore alone."""
    # Results snapshots the directory scan, so the emptiness check and the
    # two renderings below parse each manifest exactly once.
    results = api.Results.open(args.results_dir)
    filters = {}
    if args.algorithm:
        filters["algorithm"] = args.algorithm
    if args.dataset:
        filters["dataset"] = args.dataset
    if args.scenario:
        filters["scenario"] = args.scenario
    if args.json:
        import json as _json

        # Machine-readable mode reports *everything* (service clients need
        # to see incomplete/checkpointed runs too, not just finished ones).
        print(_json.dumps(results.to_json(complete_only=False, **filters), indent=2, sort_keys=True))
        return 0
    if not results.runs(**filters):
        print(f"repro report: no complete runs in {args.results_dir}", file=sys.stderr)
        return 1
    print(results.render_summary(**filters))
    network_table = results.render_network(**filters)
    if network_table:
        print()
        print(network_table)
    print()
    print(results.render_round_durations(**filters))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    registry = _figure_registry()
    names: List[str] = list(args.names) or ["all"]
    unknown = [name for name in names if name != "all" and name not in registry]
    if unknown:
        print(
            f"repro figures: unknown figure(s): {', '.join(unknown)}; "
            f"valid: {', '.join(FIGURE_NAMES + ('all',))}",
            file=sys.stderr,
        )
        return 2
    _apply_dtype(args)
    _apply_results_dir(args)
    configure(workers=args.workers, cache_dir=args.cache_dir)
    if "all" in names:
        names = list(FIGURE_NAMES)
    for name in names:
        start = time.perf_counter()
        rendering = registry[name](scale, args.seed)
        elapsed = time.perf_counter() - start
        print(rendering)
        print(f"[{name}: {elapsed:.2f}s]\n")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived experiment server (see :mod:`repro.serve`)."""
    _apply_dtype(args)
    from repro.serve.server import run_server

    return run_server(
        args.results_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        checkpoint_interval=args.checkpoint_interval,
        resume=not args.no_resume,
        drain_timeout=args.drain_timeout,
    )


def _cmd_bench_shard(args: argparse.Namespace, scale: ScaleProfile) -> int:
    """Sharded compute-plane benchmark: throughput ladder + RSS ceiling."""
    from repro.simulation.shard_bench import render_shard_bench, run_shard_bench

    output = args.output if args.output != "BENCH_engine.json" else "BENCH_shard.json"
    quick = scale.name == "smoke"
    print(
        f"benchmarking sharded execution ({'quick' if quick else 'full'} ladder) ...",
        file=sys.stderr,
    )
    results = run_shard_bench(quick=quick, output=output)
    print(render_shard_bench(results))
    print(f"\nresults written to {output}")
    return 0


def _cmd_bench_serve(args: argparse.Namespace, scale: ScaleProfile) -> int:
    """Service-mode benchmark: loadgen against a `repro serve` subprocess."""
    from repro.serve.loadgen import render_loadgen, run_loadgen

    events = args.events
    if events is None:
        events = 2000 if scale.name == "smoke" else 100_000
    output = args.output if args.output != "BENCH_engine.json" else "BENCH_serve.json"
    workers = resolve_workers(args.workers) if args.workers is not None else 4
    print(
        f"benchmarking repro serve: {events} events, {args.experiments} hosted "
        f"experiments, {workers} client workers ...",
        file=sys.stderr,
    )
    results = run_loadgen(
        events=events,
        experiments=args.experiments,
        workers=workers,
        output=output,
        seed=args.seed,
    )
    print(render_loadgen(results))
    print(f"\nresults written to {output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    _apply_dtype(args)
    if args.engine:
        return _cmd_bench_engine(args, scale)
    if args.shard:
        return _cmd_bench_shard(args, scale)
    if args.serve:
        return _cmd_bench_serve(args, scale)
    configs = _grid_configs(
        args.datasets,
        args.algorithms,
        args.partition,
        scale,
        args.seed,
        dtype=args.dtype,
        scenario=args.scenario,
    )
    workers = resolve_workers(args.workers)

    print(f"benchmarking {len(configs)} cells at {scale.name} scale ...", file=sys.stderr)
    start = time.perf_counter()
    serial = run_configs(configs)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_configs_parallel(configs, workers=workers)
    parallel_s = time.perf_counter() - start

    mismatched = [
        label
        for label in configs
        if serial.results[label].summary() != parallel.results[label].summary()
    ]
    print(render_summaries(parallel.summaries(), title="repro bench: sweep summaries"))
    print(f"\nserial wall-clock:   {serial_s:.2f}s")
    print(f"parallel wall-clock: {parallel_s:.2f}s  ({workers} workers)")
    if parallel_s > 0:
        print(f"speedup: {serial_s / parallel_s:.2f}x")
    if mismatched:
        print(f"ERROR: serial/parallel summary mismatch for: {', '.join(mismatched)}")
        return 1
    print("serial and parallel per-label summaries are identical.")
    return 0


def _cmd_bench_engine(args: argparse.Namespace, scale: ScaleProfile) -> int:
    """Engine microbenchmarks (train/eval/aggregation vs the seed engine)."""
    from repro.experiments.engine_bench import render_engine_bench, run_engine_bench

    # The smoke scale is a fast CI-friendly pass; larger scales measure more.
    if scale.name == "smoke":
        settings = {"architectures": ("mnist-cnn",), "batch_size": 16, "repeats": 5, "warmup": 1}
    else:
        settings = {"batch_size": scale.batch_size, "repeats": 20, "warmup": 3}
    if args.repeats is not None:
        settings["repeats"] = max(1, args.repeats)
    if args.warmup is not None:
        settings["warmup"] = max(0, args.warmup)
    print(f"benchmarking the compute engine ({scale.name} settings) ...", file=sys.stderr)
    results = run_engine_bench(output_path=args.output, **settings)
    print(render_engine_bench(results))
    print(f"\nresults written to {args.output}")
    return 0


_COMMANDS: Mapping[str, Callable[[argparse.Namespace], int]] = {
    "list": _cmd_list,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "figures": _cmd_figures,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    # Plugins must land in the registries before the parser is built: the
    # --algorithm/--scenario choices are snapshots of the registry names.
    load_plugins()
    parser = build_parser()
    args = parser.parse_args(argv)
    # --results-dir routes through REPRO_RESULTS_DIR so that code with no
    # store parameter of its own (the figure sweeps) persists too; restore
    # the variable afterwards so the store never leaks past the command
    # into library callers sharing this process.
    saved_results_dir = os.environ.get("REPRO_RESULTS_DIR")
    try:
        return _COMMANDS[args.command](args)
    finally:
        if saved_results_dir is None:
            os.environ.pop("REPRO_RESULTS_DIR", None)
        else:
            os.environ["REPRO_RESULTS_DIR"] = saved_results_dir


if __name__ == "__main__":
    raise SystemExit(main())
