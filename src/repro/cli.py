"""Command-line entry point for the Aergia reproduction.

``python -m repro`` (or the installed ``repro`` console script) exposes the
experiment harness without writing any Python:

``repro run``
    One experiment (algorithm x dataset x partition) at a chosen scale.
``repro sweep``
    A dataset x algorithm grid, executed through the parallel sweep runner
    (:mod:`repro.experiments.parallel`) with optional result caching.
``repro figures``
    Regenerate one or more figures/tables of the paper and print their
    text renderings.
``repro bench``
    Time the same sweep serially and in parallel, verify the summaries
    are identical, and report the speedup.

Every subcommand accepts ``--scale {smoke,bench,full}`` (defaulting to the
``REPRO_SCALE`` environment variable) and the sweep-shaped ones accept
``--workers`` and ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments.parallel import (
    configure,
    resolve_workers,
    run_configs_parallel,
    run_suite,
)
from repro.experiments.report import render_summaries, render_table1
from repro.experiments.runner import run_configs
from repro.experiments.workloads import (
    SCALES,
    ScaleProfile,
    available_scenarios,
    baseline_algorithms,
    evaluation_config,
    known_datasets,
    scenario_description,
)
from repro.fl.runtime import available_algorithms


# ---------------------------------------------------------------------------
# Figure registry: name -> callable(scale, seed) -> printable rendering
# ---------------------------------------------------------------------------
def _figure_registry() -> Dict[str, Callable[[ScaleProfile, Optional[int]], str]]:
    from repro.experiments import figures as F

    def scaled(func):
        def runner(scale: ScaleProfile, seed: Optional[int]) -> str:
            kwargs = {"scale": scale}
            if seed is not None:
                kwargs["seed"] = seed
            return func(**kwargs)["render"]

        return runner

    def unscaled(func):
        def runner(scale: ScaleProfile, seed: Optional[int]) -> str:
            return func()["render"]

        return runner

    return {
        "fig1a": scaled(F.figure1a),
        "fig1bc": scaled(F.figure1b_1c),
        "fig4": lambda scale, seed: F.figure4(**({"seed": seed} if seed is not None else {}))[
            "render"
        ],
        "fig6": scaled(F.figure6),
        "fig7": scaled(F.figure7),
        "fig8": scaled(F.figure8),
        "fig9": scaled(F.figure9),
        "fig10": scaled(F.figure10),
        "table1": lambda scale, seed: render_table1(),
        "headline": scaled(F.headline_claims),
        "profiler-overhead": scaled(F.profiler_overhead),
        "ablation-profile-length": scaled(F.ablation_profile_length),
        "ablation-offload-point": unscaled(F.ablation_offload_point),
        "ablation-freeze-side": unscaled(F.ablation_freeze_side),
    }


FIGURE_NAMES = (
    "fig1a",
    "fig1bc",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "headline",
    "profiler-overhead",
    "ablation-profile-length",
    "ablation-offload-point",
    "ablation-freeze-side",
)


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------
def _default_scale_name() -> str:
    name = os.environ.get("REPRO_SCALE", "bench").lower()
    return name if name in SCALES else "bench"


def _add_scale_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=_default_scale_name(),
        help="workload scale profile (default: $REPRO_SCALE or bench)",
    )


def _add_dtype_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default=None,
        help="compute dtype of the numpy engine (default: $REPRO_DTYPE or float32; "
        "float64 reproduces the original engine bit-for-bit; simulated times are "
        "identical either way)",
    )


def _apply_dtype(args: argparse.Namespace) -> None:
    """Make an explicit --dtype the process-wide default (workers inherit it)."""
    if getattr(args, "dtype", None):
        from repro.nn.dtype import set_compute_dtype

        os.environ["REPRO_DTYPE"] = args.dtype
        set_compute_dtype(args.dtype)


def _add_scenario_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default="stable",
        help="cluster-dynamics scenario: churn, dropouts, slowdown bursts, "
        "bandwidth traces (default: stable = static cluster); "
        "see `repro list` for descriptions",
    )


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for the sweep "
        "(default: $REPRO_WORKERS, else one per CPU; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache; already-computed cells are loaded, not re-run "
        "(default: $REPRO_CACHE_DIR)",
    )


def build_parser() -> argparse.ArgumentParser:
    algorithms = ", ".join(available_algorithms())
    scenarios = ", ".join(available_scenarios())
    epilog = f"available algorithms: {algorithms}\navailable scenarios: {scenarios}"
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for Aergia (Middleware '22): "
        "run experiments, sweeps, and regenerate the paper's figures.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list",
        help="list available algorithms, scenarios, datasets, scales and figures",
        description="Print every valid --algorithm, --scenario, --dataset and "
        "--scale value (plus the figure names) with a one-line description.",
    )
    del list_p  # takes no arguments

    run_p = sub.add_parser(
        "run",
        help="run one experiment and print its summary",
        description="Run a single experiment configuration.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_p.add_argument(
        "--algorithm",
        default="fedavg",
        choices=available_algorithms(),
        help="federated-learning algorithm (default: fedavg)",
    )
    run_p.add_argument(
        "--dataset",
        default="mnist",
        choices=known_datasets(),
        help="dataset name (default: mnist)",
    )
    run_p.add_argument(
        "--partition",
        default="iid",
        choices=("iid", "noniid", "dirichlet"),
        help="client data partition scheme (default: iid)",
    )
    run_p.add_argument("--seed", type=int, default=42, help="experiment seed (default: 42)")
    run_p.add_argument("--rounds", type=int, default=None, help="override the round budget")
    _add_scenario_flag(run_p)
    _add_scale_flag(run_p)
    _add_dtype_flag(run_p)
    _add_execution_flags(run_p)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a dataset x algorithm grid through the parallel runner",
        description="Run a dataset x algorithm sweep in parallel with caching.",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep_p.add_argument(
        "--datasets",
        nargs="+",
        default=["mnist", "fmnist"],
        choices=known_datasets(),
        help="datasets to sweep (default: mnist fmnist)",
    )
    sweep_p.add_argument(
        "--algorithms",
        nargs="+",
        default=list(baseline_algorithms()),
        choices=available_algorithms(),
        help="algorithms to sweep (default: the paper's five baselines)",
    )
    sweep_p.add_argument(
        "--partition",
        default="noniid",
        choices=("iid", "noniid", "dirichlet"),
        help="client data partition scheme (default: noniid)",
    )
    sweep_p.add_argument("--seed", type=int, default=42, help="experiment seed (default: 42)")
    _add_scenario_flag(sweep_p)
    _add_scale_flag(sweep_p)
    _add_dtype_flag(sweep_p)
    _add_execution_flags(sweep_p)

    fig_p = sub.add_parser(
        "figures",
        help="regenerate figures/tables of the paper",
        description="Regenerate one or more paper figures and print their renderings.",
    )
    fig_p.add_argument(
        "names",
        nargs="*",
        default=["all"],
        metavar="FIGURE",
        help="figures to regenerate (default: all); one of: "
        + ", ".join(FIGURE_NAMES + ("all",)),
    )
    fig_p.add_argument(
        "--seed", type=int, default=None, help="override each figure's default seed"
    )
    _add_scale_flag(fig_p)
    _add_dtype_flag(fig_p)
    _add_execution_flags(fig_p)

    bench_p = sub.add_parser(
        "bench",
        help="time serial vs parallel execution of the same sweep",
        description="Run one sweep serially and in parallel, verify per-label "
        "summaries are identical, and report both wall-clocks.",
    )
    bench_p.add_argument(
        "--datasets",
        nargs="+",
        default=["mnist", "fmnist"],
        choices=known_datasets(),
        help="datasets (default: mnist fmnist)",
    )
    bench_p.add_argument(
        "--algorithms",
        nargs="+",
        default=list(baseline_algorithms()),
        choices=available_algorithms(),
        help="algorithms (default: the paper's five baselines)",
    )
    bench_p.add_argument(
        "--partition",
        default="noniid",
        choices=("iid", "noniid", "dirichlet"),
        help="client data partition scheme (default: noniid)",
    )
    bench_p.add_argument("--seed", type=int, default=42, help="experiment seed (default: 42)")
    _add_scenario_flag(bench_p)
    _add_scale_flag(bench_p)
    _add_dtype_flag(bench_p)
    bench_p.add_argument(
        "--engine",
        action="store_true",
        help="benchmark the compute engine (train/eval/aggregation microbenchmarks "
        "vs the seed reference engine) instead of the sweep, writing BENCH_engine.json",
    )
    bench_p.add_argument(
        "--output",
        default="BENCH_engine.json",
        metavar="PATH",
        help="where --engine writes its JSON results (default: BENCH_engine.json)",
    )
    # No --cache-dir here: bench times actual execution, and serving the
    # parallel leg from a warm cache would turn the "speedup" into a
    # cache-load measurement.
    bench_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for the parallel leg (default: $REPRO_WORKERS, else one per CPU)",
    )

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------
def _grid_configs(
    datasets: Sequence[str],
    algorithms: Sequence[str],
    partition: str,
    scale: ScaleProfile,
    seed: int,
    dtype: Optional[str] = None,
    scenario: Optional[str] = None,
) -> Dict[str, object]:
    return {
        f"{dataset}/{algorithm}": evaluation_config(
            dataset, algorithm, partition, scale, seed=seed, dtype=dtype, scenario=scenario
        )
        for dataset in datasets
        for algorithm in algorithms
    }


def _cmd_list(args: argparse.Namespace) -> int:
    print("algorithms (repro run/sweep --algorithm):")
    for name in available_algorithms():
        print(f"  {name}")
    print("\nscenarios (repro run/sweep --scenario):")
    for name in available_scenarios():
        print(f"  {name:<16} {scenario_description(name)}")
    print("\ndatasets (repro run/sweep --dataset):")
    for name in known_datasets():
        print(f"  {name}")
    print("\nscales (--scale):")
    for name in sorted(SCALES):
        profile = SCALES[name]
        print(
            f"  {name:<8} {profile.num_clients} clients, {profile.rounds} rounds, "
            f"{profile.local_updates} local updates, {profile.train_size} train samples"
        )
    print("\nfigures (repro figures):")
    print("  " + ", ".join(FIGURE_NAMES + ("all",)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    _apply_dtype(args)
    overrides = {"dtype": args.dtype}
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    config = evaluation_config(
        args.dataset,
        args.algorithm,
        args.partition,
        scale,
        seed=args.seed,
        scenario=args.scenario,
        **overrides,
    )
    # A single config executes inline even in the parallel path, so the
    # shared --workers default ("one per CPU") is honest here too.
    configure(workers=args.workers, cache_dir=args.cache_dir)
    start = time.perf_counter()
    suite = run_suite({args.algorithm: config})
    elapsed = time.perf_counter() - start
    print(
        render_summaries(
            suite.summaries(),
            title=f"repro run: {args.dataset}/{args.algorithm} "
            f"({args.partition}, {scale.name} scale, {args.scenario} scenario)",
        )
    )
    cached = " (cached)" if suite.cache_hits else ""
    print(f"\nwall-clock: {elapsed:.2f}s{cached}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    _apply_dtype(args)
    configs = _grid_configs(
        args.datasets,
        args.algorithms,
        args.partition,
        scale,
        args.seed,
        dtype=args.dtype,
        scenario=args.scenario,
    )
    policy = configure(args.workers, args.cache_dir)
    workers, cache_dir = policy.workers, policy.cache_dir
    start = time.perf_counter()
    suite = run_configs_parallel(
        configs,
        workers=workers,
        cache_dir=cache_dir,
        progress=lambda label, _result: print(f"  done: {label}", file=sys.stderr),
    )
    elapsed = time.perf_counter() - start
    print(
        render_summaries(
            suite.summaries(),
            title=f"repro sweep: {len(configs)} cells, {scale.name} scale, "
            f"{workers} worker{'s' if workers != 1 else ''}",
        )
    )
    print(f"\nwall-clock: {elapsed:.2f}s  (sum of per-cell compute: {suite.total_wall_seconds():.2f}s)")
    if cache_dir is not None:
        print(f"cache hits: {len(suite.cache_hits)}/{len(configs)} in {cache_dir}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    registry = _figure_registry()
    names: List[str] = list(args.names) or ["all"]
    unknown = [name for name in names if name != "all" and name not in registry]
    if unknown:
        print(
            f"repro figures: unknown figure(s): {', '.join(unknown)}; "
            f"valid: {', '.join(FIGURE_NAMES + ('all',))}",
            file=sys.stderr,
        )
        return 2
    _apply_dtype(args)
    configure(workers=args.workers, cache_dir=args.cache_dir)
    if "all" in names:
        names = list(FIGURE_NAMES)
    for name in names:
        start = time.perf_counter()
        rendering = registry[name](scale, args.seed)
        elapsed = time.perf_counter() - start
        print(rendering)
        print(f"[{name}: {elapsed:.2f}s]\n")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    scale = SCALES[args.scale]
    _apply_dtype(args)
    if args.engine:
        return _cmd_bench_engine(args, scale)
    configs = _grid_configs(
        args.datasets,
        args.algorithms,
        args.partition,
        scale,
        args.seed,
        dtype=args.dtype,
        scenario=args.scenario,
    )
    workers = resolve_workers(args.workers)

    print(f"benchmarking {len(configs)} cells at {scale.name} scale ...", file=sys.stderr)
    start = time.perf_counter()
    serial = run_configs(configs)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_configs_parallel(configs, workers=workers)
    parallel_s = time.perf_counter() - start

    mismatched = [
        label
        for label in configs
        if serial.results[label].summary() != parallel.results[label].summary()
    ]
    print(render_summaries(parallel.summaries(), title="repro bench: sweep summaries"))
    print(f"\nserial wall-clock:   {serial_s:.2f}s")
    print(f"parallel wall-clock: {parallel_s:.2f}s  ({workers} workers)")
    if parallel_s > 0:
        print(f"speedup: {serial_s / parallel_s:.2f}x")
    if mismatched:
        print(f"ERROR: serial/parallel summary mismatch for: {', '.join(mismatched)}")
        return 1
    print("serial and parallel per-label summaries are identical.")
    return 0


def _cmd_bench_engine(args: argparse.Namespace, scale: ScaleProfile) -> int:
    """Engine microbenchmarks (train/eval/aggregation vs the seed engine)."""
    from repro.experiments.engine_bench import render_engine_bench, run_engine_bench

    # The smoke scale is a fast CI-friendly pass; larger scales measure more.
    if scale.name == "smoke":
        settings = {"architectures": ("mnist-cnn",), "batch_size": 16, "repeats": 5, "warmup": 1}
    else:
        settings = {"batch_size": scale.batch_size, "repeats": 20, "warmup": 3}
    print(f"benchmarking the compute engine ({scale.name} settings) ...", file=sys.stderr)
    results = run_engine_bench(output_path=args.output, **settings)
    print(render_engine_bench(results))
    print(f"\nresults written to {args.output}")
    return 0


_COMMANDS: Mapping[str, Callable[[argparse.Namespace], int]] = {
    "list": _cmd_list,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "figures": _cmd_figures,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
