"""Cluster container wiring nodes, resources and the network together.

A :class:`SimulatedCluster` is the reproduction's stand-in for the paper's
Kubernetes deployment: it owns the simulation environment, the network and
the per-node resource profiles, and provides node registration so that the
federated-learning runtime (:mod:`repro.fl`) can be built on top of it
without knowing about simulation internals.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.simulation.clock import LocalClock
from repro.simulation.cost import ComputeCostModel
from repro.simulation.events import SimulationEnvironment
from repro.simulation.network import LinkSpec, Message, Network
from repro.simulation.resources import ResourceProfile


FEDERATOR_ID = "federator"


@dataclass
class Node:
    """A registered cluster node (client or federator)."""

    node_id: Any
    profile: Optional[ResourceProfile]
    clock: LocalClock
    metadata: Dict[str, Any] = field(default_factory=dict)


class SimulatedCluster:
    """The simulated deployment hosting a federated-learning experiment.

    Parameters
    ----------
    client_profiles:
        One :class:`ResourceProfile` per client; client ids are the indices
        into this list.
    default_link:
        Network characteristics used for every pair of nodes unless
        overridden with :meth:`network.set_link`.
    cost_model:
        FLOPs-to-seconds translation shared by all clients.
    seed:
        Seed for clock skews and any other cluster-level randomness.
    """

    def __init__(
        self,
        client_profiles: List[ResourceProfile],
        default_link: Optional[LinkSpec] = None,
        cost_model: Optional[ComputeCostModel] = None,
        seed: int = 0,
    ) -> None:
        if not client_profiles:
            raise ValueError("a cluster needs at least one client profile")
        self.env = SimulationEnvironment()
        self.network = Network(self.env, default_link=default_link)
        # All application traffic routes through the transport; the default
        # pass-through is bitwise identical to registering with the network
        # directly.  The runtime swaps in a ReliableTransport (and installs
        # a fault profile on the network) before any node registers.
        from repro.fl.transport import DirectTransport

        self.transport: Any = DirectTransport(self.network)
        self.cost_model = cost_model if cost_model is not None else ComputeCostModel()
        self._rng = np.random.default_rng(seed)
        self.nodes: Dict[Any, Node] = {}
        #: Client actors (``repro.fl.client.FLClient``) by node id; attached
        #: so that churn events can abort a disconnected client's local work.
        self._actors: Dict[Any, Any] = {}
        #: Optional ``repro.nn.batched.BatchedClientExecutor`` installed by
        #: the runtime when ``batched_execution`` resolves to on; clients and
        #: the federator discover it here (``None`` keeps the per-client path).
        self.batched_executor: Optional[Any] = None
        #: Callbacks fired on every membership change: ``cb(client_id, online)``.
        self._membership_listeners: List[Callable[[Any, bool], None]] = []

        # Federator node: no resource profile (it is assumed correct and
        # never the computational bottleneck in the paper).
        self.nodes[FEDERATOR_ID] = Node(
            node_id=FEDERATOR_ID,
            profile=None,
            clock=LocalClock(self.env),
        )
        for client_id, profile in enumerate(client_profiles):
            self.nodes[client_id] = Node(
                node_id=client_id,
                profile=profile,
                clock=LocalClock.random(self.env, rng=self._rng),
            )

    @property
    def num_clients(self) -> int:
        return len(self.nodes) - 1

    @property
    def client_ids(self) -> List[int]:
        return [node_id for node_id in self.nodes if node_id != FEDERATOR_ID]

    def profile(self, client_id: int) -> ResourceProfile:
        """Resource profile of a client."""
        node = self.nodes.get(client_id)
        if node is None or node.profile is None:
            raise KeyError(f"no client with id {client_id!r}")
        return node.profile

    def register_handler(self, node_id: Any, handler: Callable[[Message], None]) -> None:
        """Register a node's message handler with the network."""
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        self.network.register(node_id, handler)

    # ----------------------------------------------------- dynamic membership
    def attach_actor(self, node_id: Any, actor: Any) -> None:
        """Attach the actor object living on a node (used on churn events).

        The actor may implement ``on_disconnect()`` / ``on_reconnect()``;
        both are optional.
        """
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        self._actors[node_id] = actor

    def detach_actor(self, node_id: Any) -> None:
        """Forget the actor living on a node (the pool dehydrated it)."""
        self._actors.pop(node_id, None)

    def actor(self, node_id: Any) -> Optional[Any]:
        """The actor attached to a node, or ``None`` (e.g. dehydrated)."""
        return self._actors.get(node_id)

    def add_membership_listener(self, callback: Callable[[Any, bool], None]) -> None:
        """Subscribe to online/offline transitions: ``callback(client_id, online)``."""
        self._membership_listeners.append(callback)

    def is_online(self, node_id: Any) -> bool:
        """Whether a node is currently connected."""
        return self.network.is_online(node_id)

    @property
    def online_client_ids(self) -> List[int]:
        """Ids of the clients currently online, in ascending order."""
        return [cid for cid in self.client_ids if self.network.is_online(cid)]

    @property
    def online_client_count(self) -> int:
        """Number of clients currently online.

        O(1): only clients ever go offline (the federator node is assumed
        correct), so the network's offline set counts clients exactly.
        Churn events over large cohorts use this instead of materialising
        :attr:`online_client_ids`.
        """
        return self.num_clients - self.network.offline_count()

    def set_client_offline(self, client_id: int) -> None:
        """Disconnect a client: fail its in-flight messages, abort its local
        work, and notify membership listeners (the federator).

        The order matters and is part of the contract: the network drops
        in-flight messages first (nothing sent before the disconnect can be
        delivered afterwards), then the client actor cancels its pending
        compute, and only then do listeners observe the dropout.
        """
        self.profile(client_id)  # raises KeyError for unknown/federator ids
        if not self.network.is_online(client_id):
            return
        self.network.set_node_online(client_id, False)
        actor = self._actors.get(client_id)
        if actor is not None and hasattr(actor, "on_disconnect"):
            actor.on_disconnect()
        for callback in self._membership_listeners:
            callback(client_id, False)

    def set_client_online(self, client_id: int) -> None:
        """Reconnect a client; it idles until the federator sends new work."""
        self.profile(client_id)
        if self.network.is_online(client_id):
            return
        self.network.set_node_online(client_id, True)
        actor = self._actors.get(client_id)
        if actor is not None and hasattr(actor, "on_reconnect"):
            actor.on_reconnect()
        for callback in self._membership_listeners:
            callback(client_id, True)

    # -------------------------------------------------- time-varying resources
    def scale_client_speed(self, client_id: int, factor: float) -> float:
        """Multiply a client's ``speed_fraction`` in place (slowdown bursts).

        The profile object is shared with the client actor, so the new speed
        takes effect from the client's next training batch.  Returns the new
        speed fraction.
        """
        if factor <= 0:
            raise ValueError("speed factor must be positive")
        profile = self.profile(client_id)
        profile.speed_fraction *= factor
        return profile.speed_fraction

    def set_link_factor(self, client_id: int, factor: float) -> None:
        """Rescale the client<->federator links to ``factor`` x the default.

        A factor of exactly 1.0 removes the override (reverting the pair to
        the default link), so traces always return to the baseline.
        """
        base = self.network.default_link()
        if factor == 1.0:
            self.network.clear_link(client_id, FEDERATOR_ID)
            self.network.clear_link(FEDERATOR_ID, client_id)
            return
        spec = dataclasses.replace(
            base, bandwidth_bytes_per_s=base.bandwidth_bytes_per_s * factor
        )
        self.network.set_link(client_id, FEDERATOR_ID, spec)
        self.network.set_link(FEDERATOR_ID, client_id, spec)

    # ------------------------------------------------- transport / faults
    def install_transport(self, transport: Any) -> None:
        """Swap the message transport; must happen before nodes register."""
        self.transport = transport

    def set_link_loss(self, client_id: int, rate: float) -> None:
        """Raise the drop rate of a client's federator links (loss burst)."""
        profile = self.network.fault_profile
        if profile is None:
            raise ValueError("loss bursts require a fault profile on the network")
        profile.set_link_drop(client_id, FEDERATOR_ID, rate)
        profile.set_link_drop(FEDERATOR_ID, client_id, rate)

    def clear_link_loss(self, client_id: int) -> None:
        """Revert a client's federator links to the base drop rate."""
        profile = self.network.fault_profile
        if profile is None:
            return
        profile.clear_link_drop(client_id, FEDERATOR_ID)
        profile.clear_link_drop(FEDERATOR_ID, client_id)

    def network_totals(self) -> Dict[str, float]:
        """Whole-run traffic, fault and transport counters (for summaries)."""
        totals = dict(self.network.counters())
        if self.network.fault_profile is not None:
            totals.update(self.network.fault_profile.counters())
        totals.update(self.transport.counters())
        return totals

    # ------------------------------------------------------ checkpoint seams
    def capture_state(self) -> Dict[str, Any]:
        """Serializable snapshot of the cluster's mutable state.

        Scenario dynamics mutate three things outside the actors: the
        offline set, the per-client ``speed_fraction`` (slowdown bursts
        multiply it in place) and the per-pair link overrides (bandwidth
        traces).  Clock skews are construction-time constants but are
        captured anyway so a resumed run cannot drift from reconstruction.
        """
        state = {
            "offline": self.network.capture_offline(),
            "speeds": {
                cid: self.profile(cid).speed_fraction for cid in self.client_ids
            },
            "links": self.network.capture_link_overrides(),
            "clocks": {cid: self.nodes[cid].clock.state() for cid in self.client_ids},
            "net_counters": self.network.capture_counters(),
            "faults": (
                self.network.fault_profile.capture_state()
                if self.network.fault_profile is not None
                else None
            ),
        }
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot from :meth:`capture_state`.

        Membership is restored silently (no disconnect/reconnect side
        effects): actors and federator state are restored separately by the
        checkpoint orchestrator.
        """
        self.network.restore_offline(state["offline"])
        for cid, speed in state["speeds"].items():
            self.profile(cid).speed_fraction = speed
        self.network.restore_link_overrides(state["links"])
        for cid, clock_state in state["clocks"].items():
            self.nodes[cid].clock.set_state(clock_state)
        self.network.restore_counters(state["net_counters"])
        if state["faults"] is not None:
            if self.network.fault_profile is None:
                raise ValueError("checkpoint has fault state but no profile installed")
            self.network.fault_profile.restore_state(state["faults"])

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation until the event queue drains; returns the end time."""
        self.env.run(until=until, max_events=max_events)
        return self.env.now

    def describe(self) -> Dict[str, Any]:
        """Summary of the cluster configuration, useful in experiment logs."""
        speeds = [self.profile(cid).speed_fraction for cid in self.client_ids]
        return {
            "num_clients": self.num_clients,
            "speed_min": float(np.min(speeds)),
            "speed_max": float(np.max(speeds)),
            "speed_mean": float(np.mean(speeds)),
            "speed_std": float(np.std(speeds)),
        }
