"""Cluster container wiring nodes, resources and the network together.

A :class:`SimulatedCluster` is the reproduction's stand-in for the paper's
Kubernetes deployment: it owns the simulation environment, the network and
the per-node resource profiles, and provides node registration so that the
federated-learning runtime (:mod:`repro.fl`) can be built on top of it
without knowing about simulation internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.simulation.clock import LocalClock
from repro.simulation.cost import ComputeCostModel
from repro.simulation.events import SimulationEnvironment
from repro.simulation.network import LinkSpec, Message, Network
from repro.simulation.resources import ResourceProfile


FEDERATOR_ID = "federator"


@dataclass
class Node:
    """A registered cluster node (client or federator)."""

    node_id: Any
    profile: Optional[ResourceProfile]
    clock: LocalClock
    metadata: Dict[str, Any] = field(default_factory=dict)


class SimulatedCluster:
    """The simulated deployment hosting a federated-learning experiment.

    Parameters
    ----------
    client_profiles:
        One :class:`ResourceProfile` per client; client ids are the indices
        into this list.
    default_link:
        Network characteristics used for every pair of nodes unless
        overridden with :meth:`network.set_link`.
    cost_model:
        FLOPs-to-seconds translation shared by all clients.
    seed:
        Seed for clock skews and any other cluster-level randomness.
    """

    def __init__(
        self,
        client_profiles: List[ResourceProfile],
        default_link: Optional[LinkSpec] = None,
        cost_model: Optional[ComputeCostModel] = None,
        seed: int = 0,
    ) -> None:
        if not client_profiles:
            raise ValueError("a cluster needs at least one client profile")
        self.env = SimulationEnvironment()
        self.network = Network(self.env, default_link=default_link)
        self.cost_model = cost_model if cost_model is not None else ComputeCostModel()
        self._rng = np.random.default_rng(seed)
        self.nodes: Dict[Any, Node] = {}

        # Federator node: no resource profile (it is assumed correct and
        # never the computational bottleneck in the paper).
        self.nodes[FEDERATOR_ID] = Node(
            node_id=FEDERATOR_ID,
            profile=None,
            clock=LocalClock(self.env),
        )
        for client_id, profile in enumerate(client_profiles):
            self.nodes[client_id] = Node(
                node_id=client_id,
                profile=profile,
                clock=LocalClock.random(self.env, rng=self._rng),
            )

    @property
    def num_clients(self) -> int:
        return len(self.nodes) - 1

    @property
    def client_ids(self) -> List[int]:
        return [node_id for node_id in self.nodes if node_id != FEDERATOR_ID]

    def profile(self, client_id: int) -> ResourceProfile:
        """Resource profile of a client."""
        node = self.nodes.get(client_id)
        if node is None or node.profile is None:
            raise KeyError(f"no client with id {client_id!r}")
        return node.profile

    def register_handler(self, node_id: Any, handler: Callable[[Message], None]) -> None:
        """Register a node's message handler with the network."""
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        self.network.register(node_id, handler)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation until the event queue drains; returns the end time."""
        self.env.run(until=until, max_events=max_events)
        return self.env.now

    def describe(self) -> Dict[str, Any]:
        """Summary of the cluster configuration, useful in experiment logs."""
        speeds = [self.profile(cid).speed_fraction for cid in self.client_ids]
        return {
            "num_clients": self.num_clients,
            "speed_min": float(np.min(speeds)),
            "speed_max": float(np.max(speeds)),
            "speed_mean": float(np.mean(speeds)),
            "speed_std": float(np.std(speeds)),
        }
