"""Per-client local clocks with bounded frequency skew.

The paper's system model (§3.1) assumes that clients have local clocks that
are *not* synchronised but run at similar frequencies, and that the
federator does not need a clock of its own.  The online profiler therefore
reports durations measured on the client's local clock.  :class:`LocalClock`
models that: it converts global virtual time into a client-local reading
with a constant offset and a small frequency drift, and measures elapsed
durations the way a client would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.simulation.events import SimulationEnvironment


class LocalClock:
    """A client-local clock derived from the global virtual clock.

    Parameters
    ----------
    env:
        The shared simulation environment providing global virtual time.
    offset:
        Constant offset of this clock relative to global time (seconds).
    drift:
        Relative frequency error; a drift of ``1e-4`` means the clock runs
        0.01 % fast.  Durations measured with :meth:`elapsed` are scaled by
        ``(1 + drift)``, which is how skew would contaminate real profiling
        measurements.
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        offset: float = 0.0,
        drift: float = 0.0,
    ) -> None:
        if abs(drift) >= 0.1:
            raise ValueError(
                f"drift of {drift} is implausibly large; the paper assumes similar frequencies"
            )
        self._env = env
        self.offset = offset
        self.drift = drift

    def now(self) -> float:
        """Current local-clock reading."""
        return self.offset + (1.0 + self.drift) * self._env.now

    def elapsed(self, since_local_time: float) -> float:
        """Duration elapsed since a previous :meth:`now` reading."""
        return self.now() - since_local_time

    def measure(self, global_duration: float) -> float:
        """Duration this clock would report for a global-time interval."""
        if global_duration < 0:
            raise ValueError("durations cannot be negative")
        return (1.0 + self.drift) * global_duration

    def to_global(self, local_reading: float) -> float:
        """Global virtual time corresponding to a local-clock reading.

        Inverse of :meth:`now`: ``to_global(now()) == env.now`` (up to
        floating-point rounding), so offset and drift round-trip exactly.
        """
        return (local_reading - self.offset) / (1.0 + self.drift)

    def state(self) -> dict:
        """Serializable skew parameters (checkpointing).

        Clocks are rebuilt deterministically from the cluster seed, so this
        is belt-and-braces: restoring the captured values guards resumed
        runs against any drift in the reconstruction path.
        """
        return {"offset": self.offset, "drift": self.drift}

    def set_state(self, state: dict) -> None:
        """Restore skew parameters captured by :meth:`state`."""
        self.offset = float(state["offset"])
        self.drift = float(state["drift"])

    @staticmethod
    def random(
        env: SimulationEnvironment,
        rng: Optional[np.random.Generator] = None,
        max_offset: float = 5.0,
        max_drift: float = 1e-3,
    ) -> "LocalClock":
        """Create a clock with random offset and drift within sane bounds."""
        rng = rng if rng is not None else np.random.default_rng()
        offset = float(rng.uniform(-max_offset, max_offset))
        drift = float(rng.uniform(-max_drift, max_drift))
        return LocalClock(env, offset=offset, drift=drift)
