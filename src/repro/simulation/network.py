"""Asynchronous, reliable, peer-to-peer message layer.

The paper's testbed uses RPC between fully isolated nodes: communication is
asynchronous (no bound on delivery time) but reliable (every message
eventually arrives), and clients can message each other directly without
going through the federator (§3.1, §5.1).  This module models that layer on
top of the discrete-event simulator: every ``send`` schedules a delivery
event after a per-link latency plus a size-dependent transmission time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.simulation.events import SimulationEnvironment


@dataclass(frozen=True)
class LinkSpec:
    """Latency and bandwidth of a (directed) network link."""

    latency_s: float = 0.01
    bandwidth_bytes_per_s: float = 125e6  # 1 Gbit/s

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, num_bytes: float) -> float:
        """Time to deliver a payload of ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise ValueError("payload size cannot be negative")
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass
class Message:
    """A message exchanged between simulated nodes.

    Attributes
    ----------
    sender, recipient:
        Node identifiers (the federator uses the reserved id ``"federator"``;
        clients use their integer index as a string or int).
    kind:
        Message type tag (see :mod:`repro.fl.messages`).
    payload:
        Arbitrary message body.
    round_number:
        Global training round the message belongs to; lets recipients drop
        stale messages, as required by the paper (§3.3, §4.1).
    size_bytes:
        Payload size charged to the network; model transfers use the actual
        byte size of the weight arrays.
    sent_at, delivered_at:
        Timestamps filled in by the network layer.
    """

    sender: Any
    recipient: Any
    kind: str
    payload: Any = None
    round_number: int = -1
    size_bytes: float = 1024.0
    sent_at: float = field(default=0.0, compare=False)
    delivered_at: float = field(default=0.0, compare=False)
    #: Set when the message was lost: either an endpoint was offline at send
    #: time, or a node disconnected while the message was in flight.
    failed: bool = field(default=False, compare=False)
    #: Delivery id assigned by the reliable transport (None = unreliable
    #: fire-and-forget send, the historical behaviour).
    msg_id: Optional[int] = field(default=None, compare=False)
    #: Payload-poison marker set by the fault injector; a corrupted message
    #: is discarded by the receiving channel instead of being handled.
    corrupted: bool = field(default=False, compare=False)


#: Canonical on-the-wire width of one model parameter.  Model payloads are
#: charged at this width regardless of the engine's in-memory compute dtype
#: (float32 by default, see :mod:`repro.nn.dtype`), so simulated
#: communication times are identical across dtypes and match the original
#: float64 engine bit-for-bit.
WIRE_BYTES_PER_PARAM = 8


def wire_bytes(num_parameters: int) -> float:
    """Bytes charged to the network for shipping ``num_parameters`` weights."""
    return float(num_parameters * WIRE_BYTES_PER_PARAM)


def weights_wire_bytes(weights: Any) -> float:
    """Wire size of a model payload: a weight dict or a flat parameter vector."""
    if isinstance(weights, np.ndarray):
        return wire_bytes(int(weights.size))
    return wire_bytes(int(sum(np.asarray(value).size for value in weights.values())))


def _raw_payload_bytes(payload: Any) -> float:
    """Recursive size estimate without the container floor (see below)."""
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, dict):
        return sum(_raw_payload_bytes(value) for value in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(_raw_payload_bytes(v) for v in payload)
    return 256.0


def payload_size_bytes(payload: Any) -> float:
    """Best-effort estimate of a payload's size in bytes.

    Dictionaries of numpy arrays (model weights) are measured exactly;
    other payloads are charged a small constant for headers/metadata.
    The 128-byte container floor is applied once, at the top level —
    nested containers contribute their raw content size, so a dict of
    dicts is not charged the floor per nesting level.
    """
    if isinstance(payload, (dict, list, tuple)):
        return max(_raw_payload_bytes(payload), 128.0)
    return _raw_payload_bytes(payload)


@dataclass
class FaultDecision:
    """What the fault injector decided to do with one message."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    #: Extra reorder jitter per delivered copy (original first).
    extra_delays: Tuple[float, ...] = (0.0,)


class FaultProfile:
    """Seeded, deterministic message-level fault injector.

    Consulted by :meth:`Network.send` for every message: the profile can
    drop a message outright, deliver it twice, hold it back by an extra
    uniformly drawn delay (reordering), or poison its payload (the
    ``corrupted`` marker; the reliable channel discards such deliveries so
    only a retransmission recovers them).

    All draws come from a private generator derived from the experiment
    seed with a distinct spawn key, so fault traces are reproducible and
    independent of every other random stream.  Per-link *burst* overrides
    (set by :class:`~repro.simulation.dynamics.ScenarioDynamics` loss
    bursts) replace the base drop rate for a directed pair with an
    absolute rate, so bursts bite even when the base ``drop_rate`` is 0.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_max_delay_s: float = 0.05,
        corrupt_rate: float = 0.0,
        kinds: Tuple[str, ...] = (),
        seed: int = 0,
    ) -> None:
        self.drop_rate = float(drop_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.reorder_rate = float(reorder_rate)
        self.reorder_max_delay_s = float(reorder_max_delay_s)
        self.corrupt_rate = float(corrupt_rate)
        #: Message kinds subject to faults; empty = all kinds.
        self.kinds = frozenset(kinds)
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(0xFA17,))
        )
        #: (src, dst) -> absolute burst drop rate (loss bursts).
        self._link_drop: Dict[Tuple[Any, Any], float] = {}
        # Fault counters (surfaced in run summaries and reports).
        self.drops = 0
        self.duplicates = 0
        self.reorders = 0
        self.corruptions = 0

    # --------------------------------------------------------- burst overrides
    def set_link_drop(self, src: Any, dst: Any, rate: float) -> None:
        """Set an absolute drop rate for the directed pair (loss burst)."""
        if not 0 <= rate <= 1:
            raise ValueError("link drop rate must be in [0, 1]")
        self._link_drop[(src, dst)] = float(rate)

    def clear_link_drop(self, src: Any, dst: Any) -> None:
        """Remove a per-pair burst override, reverting to the base rate."""
        self._link_drop.pop((src, dst), None)

    def _effective_drop_rate(self, message: Message, in_scope: bool) -> float:
        burst = self._link_drop.get((message.sender, message.recipient))
        base = self.drop_rate if in_scope else 0.0
        if burst is None:
            return base
        return max(base, burst)

    # -------------------------------------------------------------- decisions
    def _in_scope(self, message: Message) -> bool:
        return not self.kinds or message.kind in self.kinds

    def decide(self, message: Message, faultable: bool = True) -> FaultDecision:
        """Decide this message's fate; draws are made in a fixed order.

        ``faultable=False`` restricts the profile to link-level burst drops
        (used for transport acknowledgements, which are never corrupted and
        ignore the kind filter but still cross the same lossy links).
        """
        in_scope = faultable and self._in_scope(message)
        drop_rate = self._effective_drop_rate(message, in_scope)
        if drop_rate > 0 and self._rng.random() < drop_rate:
            self.drops += 1
            return FaultDecision(drop=True, extra_delays=())
        if not in_scope:
            return FaultDecision()
        duplicate = self.duplicate_rate > 0 and self._rng.random() < self.duplicate_rate
        if duplicate:
            self.duplicates += 1
        copies = 2 if duplicate else 1
        delays = []
        for _ in range(copies):
            extra = 0.0
            if self.reorder_rate > 0 and self._rng.random() < self.reorder_rate:
                extra = float(self._rng.uniform(0.0, self.reorder_max_delay_s))
                self.reorders += 1
            delays.append(extra)
        corrupt = self.corrupt_rate > 0 and self._rng.random() < self.corrupt_rate
        if corrupt:
            self.corruptions += 1
        return FaultDecision(
            duplicate=duplicate, corrupt=corrupt, extra_delays=tuple(delays)
        )

    # ------------------------------------------------------ counters/snapshot
    def counters(self) -> Dict[str, float]:
        return {
            "fault_drops": float(self.drops),
            "fault_duplicates": float(self.duplicates),
            "fault_reorders": float(self.reorders),
            "fault_corruptions": float(self.corruptions),
        }

    def capture_state(self) -> Dict[str, Any]:
        """Serializable snapshot: rng stream, counters, burst overrides."""
        return {
            "rng": self._rng.bit_generator.state,
            "drops": self.drops,
            "duplicates": self.duplicates,
            "reorders": self.reorders,
            "corruptions": self.corruptions,
            "link_drop": [
                (src, dst, rate) for (src, dst), rate in self._link_drop.items()
            ],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._rng.bit_generator.state = state["rng"]
        self.drops = int(state["drops"])
        self.duplicates = int(state["duplicates"])
        self.reorders = int(state["reorders"])
        self.corruptions = int(state["corruptions"])
        self._link_drop = {
            (src, dst): float(rate) for src, dst, rate in state["link_drop"]
        }


class Network:
    """Message router with per-link latency/bandwidth and node liveness.

    Nodes register a handler with :meth:`register`; :meth:`send` schedules
    the handler invocation after the link's transfer time.  Per-pair link
    overrides allow experiments with heterogeneous connectivity.

    Nodes can be taken offline (:meth:`set_node_online`), which models a
    crash or a network partition: messages addressed to or sent by an
    offline node are lost, and every message still in flight to/from a node
    *fails* the moment the node disconnects (its delivery event is
    cancelled).  The reliable-delivery guarantee of the paper's RPC layer
    therefore holds exactly while both endpoints stay connected, which is
    the standard fail-stop relaxation used by churn studies.
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        default_link: Optional[LinkSpec] = None,
    ) -> None:
        self._env = env
        self._default_link = default_link if default_link is not None else LinkSpec()
        self._links: Dict[Tuple[Any, Any], LinkSpec] = {}
        self._handlers: Dict[Any, Callable[[Message], None]] = {}
        self._offline: set = set()
        #: token -> (message, delivery event) for messages in flight.
        self._in_flight: Dict[int, Tuple[Message, object]] = {}
        #: endpoint -> tokens of in-flight messages it sent or will receive,
        #: so churn events fail a node's messages without scanning the
        #: whole table (tokens are ascending, so sorted(set) == send order).
        self._by_endpoint: Dict[Any, set] = {}
        self._next_token = 0
        #: Optional message-level fault injector (None = reliable network).
        self.fault_profile: Optional[FaultProfile] = None
        self.messages_sent = 0
        self.bytes_sent = 0.0
        #: Messages lost because an endpoint was offline at send time.
        self.messages_dropped = 0
        #: In-flight messages failed by a disconnect.
        self.messages_failed = 0

    def register(self, node_id: Any, handler: Callable[[Message], None]) -> None:
        """Register the message handler for a node."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: Any) -> None:
        """Remove a node's handler (messages to it are then rejected)."""
        self._handlers.pop(node_id, None)

    def has_handler(self, node_id: Any) -> bool:
        """Whether a node currently has a registered handler."""
        return node_id in self._handlers

    # ----------------------------------------------------------------- liveness
    def is_online(self, node_id: Any) -> bool:
        """Whether a node is currently connected (nodes default to online)."""
        return node_id not in self._offline

    def offline_count(self) -> int:
        """Number of nodes currently disconnected (O(1); churn-heavy
        scenarios over thousands of clients consult this instead of
        enumerating the online set)."""
        return len(self._offline)

    def set_node_online(self, node_id: Any, online: bool) -> None:
        """Connect or disconnect a node.

        Disconnecting fails every message currently in flight to or from the
        node (the dynamics engine calls this on churn events).  Reconnecting
        does not replay lost messages — the protocol layers above re-send.
        """
        if online:
            self._offline.discard(node_id)
            return
        if node_id in self._offline:
            return
        self._offline.add(node_id)
        self.fail_in_flight(node_id)

    def fail_in_flight(self, node_id: Any) -> int:
        """Cancel delivery of all in-flight messages involving ``node_id``."""
        failed = sorted(self._by_endpoint.get(node_id, ()))
        for token in failed:
            message, event = self._in_flight.pop(token)
            self._untrack(token, message)
            message.failed = True
            event.cancel()
        self.messages_failed += len(failed)
        return len(failed)

    def in_flight_count(self, node_id: Any = None) -> int:
        """Messages currently in flight (optionally only those touching a node)."""
        if node_id is None:
            return len(self._in_flight)
        return len(self._by_endpoint.get(node_id, ()))

    def set_link(self, src: Any, dst: Any, spec: LinkSpec) -> None:
        """Override the link characteristics for the directed pair (src, dst)."""
        self._links[(src, dst)] = spec

    def default_link(self) -> LinkSpec:
        """The link spec used for pairs without an explicit override."""
        return self._default_link

    def clear_link(self, src: Any, dst: Any) -> None:
        """Remove a per-pair override, reverting the pair to the default link."""
        self._links.pop((src, dst), None)

    def link(self, src: Any, dst: Any) -> LinkSpec:
        """The link spec used for the directed pair (src, dst)."""
        return self._links.get((src, dst), self._default_link)

    def transfer_time(self, src: Any, dst: Any, num_bytes: float) -> float:
        """Delivery time of a payload between two nodes."""
        return self.link(src, dst).transfer_time(num_bytes)

    # ----------------------------------------------- in-flight endpoint index
    def _track(self, token: int, message: Message) -> None:
        self._by_endpoint.setdefault(message.sender, set()).add(token)
        self._by_endpoint.setdefault(message.recipient, set()).add(token)

    def _untrack(self, token: int, message: Message) -> None:
        for node_id in (message.sender, message.recipient):
            tokens = self._by_endpoint.get(node_id)
            if tokens is not None:
                tokens.discard(token)
                if not tokens:
                    del self._by_endpoint[node_id]

    def _schedule_delivery(
        self, message: Message, delay: Optional[float] = None, at: Optional[float] = None
    ) -> None:
        """Schedule one delivery attempt of an (online-checked) message."""
        handler = self._handlers[message.recipient]
        token = self._next_token
        self._next_token += 1

        def deliver() -> None:
            entry = self._in_flight.pop(token, None)
            if entry is not None:
                self._untrack(token, message)
            if not self.is_online(message.recipient):
                # The recipient dropped between send and delivery but came
                # back before the delivery event was cancelled; still lost.
                message.failed = True
                self.messages_failed += 1
                return
            message.delivered_at = self._env.now
            handler(message)

        if at is not None:
            event = self._env.schedule_at(at, deliver)
        else:
            event = self._env.schedule(delay, deliver)
        self._in_flight[token] = (message, event)
        self._track(token, message)

    def send(
        self,
        sender: Any,
        recipient: Any,
        kind: str,
        payload: Any = None,
        round_number: int = -1,
        size_bytes: Optional[float] = None,
        msg_id: Optional[int] = None,
        faultable: bool = True,
    ) -> Message:
        """Send a message; delivery is scheduled on the event queue.

        ``msg_id`` tags the message for the reliable channel's ACK/dedup
        bookkeeping; ``faultable=False`` exempts it from every fault except
        link-level loss bursts (used for transport acknowledgements).
        """
        if recipient not in self._handlers:
            raise KeyError(f"unknown recipient {recipient!r}")
        size = size_bytes if size_bytes is not None else payload_size_bytes(payload)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            round_number=round_number,
            size_bytes=size,
            sent_at=self._env.now,
            msg_id=msg_id,
        )
        if not self.is_online(sender) or not self.is_online(recipient):
            # A partitioned endpoint: the message is lost, not queued.
            message.failed = True
            self.messages_dropped += 1
            return message
        self.messages_sent += 1
        self.bytes_sent += size
        if self.fault_profile is not None:
            decision = self.fault_profile.decide(message, faultable=faultable)
            if decision.drop:
                # Lost on the wire: transmitted (counted above) but never
                # delivered.  Only the layers above can recover it.
                message.failed = True
                return message
            message.corrupted = decision.corrupt
            delay = self.transfer_time(sender, recipient, size)
            for extra in decision.extra_delays:
                self._schedule_delivery(message, delay=delay + extra)
            return message
        delay = self.transfer_time(sender, recipient, size)
        self._schedule_delivery(message, delay=delay)
        return message

    # ------------------------------------------------------ checkpoint seams
    def capture_in_flight(self) -> List[dict]:
        """Serializable snapshot of every in-flight message.

        Entries are ordered by their delivery event's ``(time, sequence)``
        so a resumed run can re-schedule them in the exact order the
        uninterrupted run would have fired them.  Payloads are captured by
        reference: the checkpoint serializer deep-copies the whole snapshot
        in one pass.
        """
        captured = []
        for message, event in self._in_flight.values():
            captured.append(
                {
                    "sender": message.sender,
                    "recipient": message.recipient,
                    "kind": message.kind,
                    "payload": message.payload,
                    "round_number": message.round_number,
                    "size_bytes": message.size_bytes,
                    "sent_at": message.sent_at,
                    "msg_id": message.msg_id,
                    "corrupted": message.corrupted,
                    "deliver_at": event.time,
                    "sequence": event.sequence,
                }
            )
        captured.sort(key=lambda entry: (entry["deliver_at"], entry["sequence"]))
        return captured

    def restore_in_flight(self, entry: dict) -> Message:
        """Re-create one in-flight message from :meth:`capture_in_flight`.

        The recipient's handler must already be registered (hydrate pool
        clients first).  Call in capture order: relative delivery order is
        determined by scheduling order for same-time events.
        """
        message = Message(
            sender=entry["sender"],
            recipient=entry["recipient"],
            kind=entry["kind"],
            payload=entry["payload"],
            round_number=entry["round_number"],
            size_bytes=entry["size_bytes"],
            sent_at=entry["sent_at"],
            msg_id=entry.get("msg_id"),
            corrupted=bool(entry.get("corrupted", False)),
        )
        self._schedule_delivery(message, at=entry["deliver_at"])
        return message

    def capture_link_overrides(self) -> List[tuple]:
        """Per-pair link overrides as ((src, dst), latency, bandwidth)."""
        return [
            ((src, dst), spec.latency_s, spec.bandwidth_bytes_per_s)
            for (src, dst), spec in self._links.items()
        ]

    def restore_link_overrides(self, overrides: List[tuple]) -> None:
        """Replace all per-pair overrides with a captured set."""
        self._links.clear()
        for (src, dst), latency, bandwidth in overrides:
            self._links[(src, dst)] = LinkSpec(
                latency_s=latency, bandwidth_bytes_per_s=bandwidth
            )

    def capture_offline(self) -> List[Any]:
        """The currently disconnected node ids (sorted for determinism)."""
        return sorted(self._offline, key=repr)

    def restore_offline(self, node_ids: List[Any]) -> None:
        """Replace the offline set (no disconnect side effects are fired)."""
        self._offline = set(node_ids)

    def counters(self) -> Dict[str, float]:
        """Traffic counters (merged into run summaries and reports)."""
        return {
            "messages_sent": float(self.messages_sent),
            "bytes_sent": float(self.bytes_sent),
            "messages_dropped": float(self.messages_dropped),
            "messages_failed": float(self.messages_failed),
        }

    def capture_counters(self) -> Dict[str, float]:
        """Snapshot of the traffic counters (for checkpoint/resume)."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "messages_dropped": self.messages_dropped,
            "messages_failed": self.messages_failed,
        }

    def restore_counters(self, counters: Dict[str, float]) -> None:
        self.messages_sent = int(counters["messages_sent"])
        self.bytes_sent = float(counters["bytes_sent"])
        self.messages_dropped = int(counters["messages_dropped"])
        self.messages_failed = int(counters["messages_failed"])
