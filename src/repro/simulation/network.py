"""Asynchronous, reliable, peer-to-peer message layer.

The paper's testbed uses RPC between fully isolated nodes: communication is
asynchronous (no bound on delivery time) but reliable (every message
eventually arrives), and clients can message each other directly without
going through the federator (§3.1, §5.1).  This module models that layer on
top of the discrete-event simulator: every ``send`` schedules a delivery
event after a per-link latency plus a size-dependent transmission time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.simulation.events import SimulationEnvironment


@dataclass(frozen=True)
class LinkSpec:
    """Latency and bandwidth of a (directed) network link."""

    latency_s: float = 0.01
    bandwidth_bytes_per_s: float = 125e6  # 1 Gbit/s

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, num_bytes: float) -> float:
        """Time to deliver a payload of ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise ValueError("payload size cannot be negative")
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass
class Message:
    """A message exchanged between simulated nodes.

    Attributes
    ----------
    sender, recipient:
        Node identifiers (the federator uses the reserved id ``"federator"``;
        clients use their integer index as a string or int).
    kind:
        Message type tag (see :mod:`repro.fl.messages`).
    payload:
        Arbitrary message body.
    round_number:
        Global training round the message belongs to; lets recipients drop
        stale messages, as required by the paper (§3.3, §4.1).
    size_bytes:
        Payload size charged to the network; model transfers use the actual
        byte size of the weight arrays.
    sent_at, delivered_at:
        Timestamps filled in by the network layer.
    """

    sender: Any
    recipient: Any
    kind: str
    payload: Any = None
    round_number: int = -1
    size_bytes: float = 1024.0
    sent_at: float = field(default=0.0, compare=False)
    delivered_at: float = field(default=0.0, compare=False)
    #: Set when the message was lost: either an endpoint was offline at send
    #: time, or a node disconnected while the message was in flight.
    failed: bool = field(default=False, compare=False)


#: Canonical on-the-wire width of one model parameter.  Model payloads are
#: charged at this width regardless of the engine's in-memory compute dtype
#: (float32 by default, see :mod:`repro.nn.dtype`), so simulated
#: communication times are identical across dtypes and match the original
#: float64 engine bit-for-bit.
WIRE_BYTES_PER_PARAM = 8


def wire_bytes(num_parameters: int) -> float:
    """Bytes charged to the network for shipping ``num_parameters`` weights."""
    return float(num_parameters * WIRE_BYTES_PER_PARAM)


def weights_wire_bytes(weights: Any) -> float:
    """Wire size of a model payload: a weight dict or a flat parameter vector."""
    if isinstance(weights, np.ndarray):
        return wire_bytes(int(weights.size))
    return wire_bytes(int(sum(np.asarray(value).size for value in weights.values())))


def payload_size_bytes(payload: Any) -> float:
    """Best-effort estimate of a payload's size in bytes.

    Dictionaries of numpy arrays (model weights) are measured exactly;
    other payloads are charged a small constant for headers/metadata.
    """
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, dict):
        total = 0.0
        for value in payload.values():
            total += payload_size_bytes(value)
        return max(total, 128.0)
    if isinstance(payload, (list, tuple)):
        return max(sum(payload_size_bytes(v) for v in payload), 128.0)
    return 256.0


class Network:
    """Message router with per-link latency/bandwidth and node liveness.

    Nodes register a handler with :meth:`register`; :meth:`send` schedules
    the handler invocation after the link's transfer time.  Per-pair link
    overrides allow experiments with heterogeneous connectivity.

    Nodes can be taken offline (:meth:`set_node_online`), which models a
    crash or a network partition: messages addressed to or sent by an
    offline node are lost, and every message still in flight to/from a node
    *fails* the moment the node disconnects (its delivery event is
    cancelled).  The reliable-delivery guarantee of the paper's RPC layer
    therefore holds exactly while both endpoints stay connected, which is
    the standard fail-stop relaxation used by churn studies.
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        default_link: Optional[LinkSpec] = None,
    ) -> None:
        self._env = env
        self._default_link = default_link if default_link is not None else LinkSpec()
        self._links: Dict[Tuple[Any, Any], LinkSpec] = {}
        self._handlers: Dict[Any, Callable[[Message], None]] = {}
        self._offline: set = set()
        #: token -> (message, delivery event) for messages in flight.
        self._in_flight: Dict[int, Tuple[Message, object]] = {}
        self._next_token = 0
        self.messages_sent = 0
        self.bytes_sent = 0.0
        #: Messages lost because an endpoint was offline at send time.
        self.messages_dropped = 0
        #: In-flight messages failed by a disconnect.
        self.messages_failed = 0

    def register(self, node_id: Any, handler: Callable[[Message], None]) -> None:
        """Register the message handler for a node."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: Any) -> None:
        """Remove a node's handler (messages to it are then rejected)."""
        self._handlers.pop(node_id, None)

    # ----------------------------------------------------------------- liveness
    def is_online(self, node_id: Any) -> bool:
        """Whether a node is currently connected (nodes default to online)."""
        return node_id not in self._offline

    def offline_count(self) -> int:
        """Number of nodes currently disconnected (O(1); churn-heavy
        scenarios over thousands of clients consult this instead of
        enumerating the online set)."""
        return len(self._offline)

    def set_node_online(self, node_id: Any, online: bool) -> None:
        """Connect or disconnect a node.

        Disconnecting fails every message currently in flight to or from the
        node (the dynamics engine calls this on churn events).  Reconnecting
        does not replay lost messages — the protocol layers above re-send.
        """
        if online:
            self._offline.discard(node_id)
            return
        if node_id in self._offline:
            return
        self._offline.add(node_id)
        self.fail_in_flight(node_id)

    def fail_in_flight(self, node_id: Any) -> int:
        """Cancel delivery of all in-flight messages involving ``node_id``."""
        failed = [
            token
            for token, (message, _event) in self._in_flight.items()
            if message.sender == node_id or message.recipient == node_id
        ]
        for token in failed:
            message, event = self._in_flight.pop(token)
            message.failed = True
            event.cancel()
        self.messages_failed += len(failed)
        return len(failed)

    def in_flight_count(self, node_id: Any = None) -> int:
        """Messages currently in flight (optionally only those touching a node)."""
        if node_id is None:
            return len(self._in_flight)
        return sum(
            1
            for message, _event in self._in_flight.values()
            if message.sender == node_id or message.recipient == node_id
        )

    def set_link(self, src: Any, dst: Any, spec: LinkSpec) -> None:
        """Override the link characteristics for the directed pair (src, dst)."""
        self._links[(src, dst)] = spec

    def default_link(self) -> LinkSpec:
        """The link spec used for pairs without an explicit override."""
        return self._default_link

    def clear_link(self, src: Any, dst: Any) -> None:
        """Remove a per-pair override, reverting the pair to the default link."""
        self._links.pop((src, dst), None)

    def link(self, src: Any, dst: Any) -> LinkSpec:
        """The link spec used for the directed pair (src, dst)."""
        return self._links.get((src, dst), self._default_link)

    def transfer_time(self, src: Any, dst: Any, num_bytes: float) -> float:
        """Delivery time of a payload between two nodes."""
        return self.link(src, dst).transfer_time(num_bytes)

    def send(
        self,
        sender: Any,
        recipient: Any,
        kind: str,
        payload: Any = None,
        round_number: int = -1,
        size_bytes: Optional[float] = None,
    ) -> Message:
        """Send a message; delivery is scheduled on the event queue."""
        if recipient not in self._handlers:
            raise KeyError(f"unknown recipient {recipient!r}")
        size = size_bytes if size_bytes is not None else payload_size_bytes(payload)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            round_number=round_number,
            size_bytes=size,
            sent_at=self._env.now,
        )
        if not self.is_online(sender) or not self.is_online(recipient):
            # A partitioned endpoint: the message is lost, not queued.
            message.failed = True
            self.messages_dropped += 1
            return message
        delay = self.transfer_time(sender, recipient, size)
        handler = self._handlers[recipient]
        token = self._next_token
        self._next_token += 1

        def deliver() -> None:
            self._in_flight.pop(token, None)
            if not self.is_online(message.recipient):
                # The recipient dropped between send and delivery but came
                # back before the delivery event was cancelled; still lost.
                message.failed = True
                self.messages_failed += 1
                return
            message.delivered_at = self._env.now
            handler(message)

        event = self._env.schedule(delay, deliver)
        self._in_flight[token] = (message, event)
        self.messages_sent += 1
        self.bytes_sent += size
        return message

    # ------------------------------------------------------ checkpoint seams
    def capture_in_flight(self) -> List[dict]:
        """Serializable snapshot of every in-flight message.

        Entries are ordered by their delivery event's ``(time, sequence)``
        so a resumed run can re-schedule them in the exact order the
        uninterrupted run would have fired them.  Payloads are captured by
        reference: the checkpoint serializer deep-copies the whole snapshot
        in one pass.
        """
        captured = []
        for message, event in self._in_flight.values():
            captured.append(
                {
                    "sender": message.sender,
                    "recipient": message.recipient,
                    "kind": message.kind,
                    "payload": message.payload,
                    "round_number": message.round_number,
                    "size_bytes": message.size_bytes,
                    "sent_at": message.sent_at,
                    "deliver_at": event.time,
                    "sequence": event.sequence,
                }
            )
        captured.sort(key=lambda entry: (entry["deliver_at"], entry["sequence"]))
        return captured

    def restore_in_flight(self, entry: dict) -> Message:
        """Re-create one in-flight message from :meth:`capture_in_flight`.

        The recipient's handler must already be registered (hydrate pool
        clients first).  Call in capture order: relative delivery order is
        determined by scheduling order for same-time events.
        """
        message = Message(
            sender=entry["sender"],
            recipient=entry["recipient"],
            kind=entry["kind"],
            payload=entry["payload"],
            round_number=entry["round_number"],
            size_bytes=entry["size_bytes"],
            sent_at=entry["sent_at"],
        )
        handler = self._handlers[message.recipient]
        token = self._next_token
        self._next_token += 1

        def deliver() -> None:
            self._in_flight.pop(token, None)
            if not self.is_online(message.recipient):
                message.failed = True
                self.messages_failed += 1
                return
            message.delivered_at = self._env.now
            handler(message)

        event = self._env.schedule_at(entry["deliver_at"], deliver)
        self._in_flight[token] = (message, event)
        return message

    def capture_link_overrides(self) -> List[tuple]:
        """Per-pair link overrides as ((src, dst), latency, bandwidth)."""
        return [
            ((src, dst), spec.latency_s, spec.bandwidth_bytes_per_s)
            for (src, dst), spec in self._links.items()
        ]

    def restore_link_overrides(self, overrides: List[tuple]) -> None:
        """Replace all per-pair overrides with a captured set."""
        self._links.clear()
        for (src, dst), latency, bandwidth in overrides:
            self._links[(src, dst)] = LinkSpec(
                latency_s=latency, bandwidth_bytes_per_s=bandwidth
            )

    def capture_offline(self) -> List[Any]:
        """The currently disconnected node ids (sorted for determinism)."""
        return sorted(self._offline, key=repr)

    def restore_offline(self, node_ids: List[Any]) -> None:
        """Replace the offline set (no disconnect side effects are fired)."""
        self._offline = set(node_ids)
