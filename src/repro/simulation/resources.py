"""Client compute-resource profiles.

The paper's heterogeneous resource setup (§5.1) assigns each of the 24
clients a CPU speed drawn uniformly at random from [0.1, 1.0] of a core,
enforced with Docker CPU throttling.  The motivation experiment (Figure
1(a)) instead controls the *variance* of the client speeds around a fixed
mean of 0.5 CPU.  Both samplers are implemented here, together with the
discrete weak/medium/strong tiers mentioned in the introduction and a
transient background-load model (§3.1 allows client load to evolve over
time because of collocated applications).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class TransientLoad:
    """Time-varying background load stealing compute from a client.

    The effective speed of the client at time ``t`` is multiplied by
    ``1 - amplitude`` while the load is active.  The load is active
    periodically: it switches on every ``period`` seconds for ``duty *
    period`` seconds, starting at ``phase``.
    """

    amplitude: float = 0.3
    period: float = 120.0
    duty: float = 0.25
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")

    def multiplier(self, time: float) -> float:
        """Speed multiplier at virtual time ``time``."""
        position = math.fmod(time - self.phase, self.period)
        if position < 0:
            position += self.period
        active = position < self.duty * self.period
        return 1.0 - self.amplitude if active else 1.0


@dataclass
class ResourceProfile:
    """The compute capability of one simulated client.

    Attributes
    ----------
    speed_fraction:
        Fraction of a reference core available to this client (the paper
        uses values in [0.1, 1.0]).
    base_flops_per_second:
        Throughput of the reference core.  The absolute value only scales
        virtual time globally; relative comparisons between algorithms are
        unaffected by it.
    transient_load:
        Optional time-varying background load.
    """

    speed_fraction: float
    base_flops_per_second: float = 2.0e9
    transient_load: Optional[TransientLoad] = None

    def __post_init__(self) -> None:
        if self.speed_fraction <= 0:
            raise ValueError(f"speed_fraction must be positive, got {self.speed_fraction}")
        if self.base_flops_per_second <= 0:
            raise ValueError("base_flops_per_second must be positive")

    def effective_rate(self, time: float = 0.0) -> float:
        """FLOP/s available to the client at virtual time ``time``."""
        rate = self.speed_fraction * self.base_flops_per_second
        if self.transient_load is not None:
            rate *= self.transient_load.multiplier(time)
        return rate

    def seconds_for_flops(self, flops: float, time: float = 0.0) -> float:
        """Virtual seconds needed to execute ``flops`` starting at ``time``."""
        if flops < 0:
            raise ValueError("flops cannot be negative")
        return flops / self.effective_rate(time)


def uniform_speed_profiles(
    num_clients: int,
    low: float = 0.1,
    high: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    base_flops_per_second: float = 2.0e9,
) -> List[ResourceProfile]:
    """The paper's heterogeneous setup: speeds uniform in ``[low, high]``."""
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    if not 0 < low <= high:
        raise ValueError(f"invalid speed range [{low}, {high}]")
    rng = rng if rng is not None else np.random.default_rng(0)
    speeds = rng.uniform(low, high, size=num_clients)
    return [
        ResourceProfile(speed_fraction=float(s), base_flops_per_second=base_flops_per_second)
        for s in speeds
    ]


def tiered_speed_profiles(
    num_clients: int,
    tiers: Sequence[float] = (0.25, 0.5, 1.0),
    rng: Optional[np.random.Generator] = None,
    base_flops_per_second: float = 2.0e9,
) -> List[ResourceProfile]:
    """Discrete weak/medium/strong tiers (clients assigned round-robin)."""
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    if not tiers or any(t <= 0 for t in tiers):
        raise ValueError("tiers must be a non-empty sequence of positive speeds")
    rng = rng if rng is not None else np.random.default_rng(0)
    assignments = rng.permutation([tiers[i % len(tiers)] for i in range(num_clients)])
    return [
        ResourceProfile(speed_fraction=float(s), base_flops_per_second=base_flops_per_second)
        for s in assignments
    ]


def speeds_with_variance(
    num_clients: int,
    mean: float = 0.5,
    variance: float = 0.1,
    rng: Optional[np.random.Generator] = None,
    base_flops_per_second: float = 2.0e9,
    min_speed: float = 0.1,
    max_speed: float = 1.0,
) -> List[ResourceProfile]:
    """Speeds with a controlled mean and variance (Figure 1(a) sweep).

    Speeds are clipped to the paper's [0.1, 1.0] CPU-fraction range, so the
    worst-case straggler slowdown saturates at roughly ``mean / min_speed``.

    Speeds are drawn from a normal distribution with the requested mean and
    variance, clipped to ``[min_speed, max_speed]``, then rescaled so that
    the sample mean matches ``mean`` exactly.  With ``variance == 0`` every
    client gets exactly ``mean``.
    """
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    if variance < 0:
        raise ValueError("variance must be non-negative")
    if not 0 < mean <= max_speed:
        raise ValueError(f"mean must be in (0, {max_speed}]")
    rng = rng if rng is not None else np.random.default_rng(0)
    if variance == 0:
        speeds = np.full(num_clients, mean)
    else:
        speeds = rng.normal(mean, math.sqrt(variance), size=num_clients)
        speeds = np.clip(speeds, min_speed, max_speed)
        # Rescale towards the requested mean while respecting the bounds.
        current_mean = speeds.mean()
        if current_mean > 0:
            speeds = np.clip(speeds * (mean / current_mean), min_speed, max_speed)
    return [
        ResourceProfile(speed_fraction=float(s), base_flops_per_second=base_flops_per_second)
        for s in speeds
    ]
