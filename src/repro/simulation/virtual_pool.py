"""Virtualized client pool: O(participants) memory for O(cohort) clients.

The eager runtime materializes one fully-hydrated
:class:`repro.fl.client.FLClient` per cohort member at setup time — a model
(the dominant allocation: per-layer parameter/scratch buffers), an
optimizer, and a private copy of the client's data shard.  That caps
simulated cohorts at a few dozen clients even though a round only ever
*trains* ``clients_per_round`` of them.

:class:`VirtualClientPool` inverts the ownership.  The cohort exists as
lightweight :class:`ClientDescriptor` records (a few counters plus the
dehydrated loader position), and a bounded LRU arena of reusable
:class:`_Slot` objects holds the expensive state.  A client is *hydrated* —
given a slot's recycled model, a freshly sliced data shard (derived on
demand from the lazy :class:`repro.data.partition.PartitionPlan`) and a new
optimizer — only when the federator selects it for a round; when the arena
is full, the least-recently-used idle client is dehydrated back into its
descriptor and its slot recycled.

Hydration is bit-for-bit transparent:

* Model weights and optimizer state are overwritten by every
  ``TRAIN_REQUEST`` (clients load the global model at round start), so a
  recycled model never leaks state between clients — the eager path's
  per-client models are all built from the same seeded initializer anyway.
* The batch loader is the only numeric state that persists across rounds;
  its exact position (generator state, shuffle order, cursor) round-trips
  through the descriptor, so a re-selected client resumes its batch
  sequence precisely where an always-hydrated client would.
* A client is only dehydrated while *quiescent*: no scheduled batch
  completions, no buffered offloaded model, and no messages in flight to or
  from it on the network.  Clients that keep training after being dropped
  from a round (the deadline baseline) therefore stay hydrated until their
  stale work drains, exactly like the eager path lets them finish.

Churn, dropout and selection logic never touches hydrated state: scenario
dynamics flip descriptor-level liveness on the cluster, and the federators
select over client *ids*, hydrating only the winners.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.data.datasets import Dataset
from repro.data.partition import PartitionPlan
from repro.fl.client import FLClient
from repro.fl.config import ExperimentConfig
from repro.simulation.cluster import SimulatedCluster

#: ``client_pool="auto"`` switches to the virtual pool above this cohort
#: size.  The historical profiles (smoke/bench/full, ≤ 24 clients) stay on
#: the eager path; the large-cohort profiles (city/metro) go virtual.
VIRTUAL_POOL_AUTO_THRESHOLD = 64

#: Extra slots beyond the per-round participant count: clients dropped from
#: a round keep training until their stale work drains, so two rounds'
#: worth of stragglers can briefly coexist with the current selection.
POOL_SLOT_HEADROOM = 4


@dataclass
class ClientDescriptor:
    """The always-resident representation of one cohort member.

    A descriptor is a few dozen bytes: identity, shard size, and — after the
    first eviction — the dehydrated persistent state (loader position plus
    lifetime counters).  Everything heavy lives in a pool slot while the
    client is hydrated.
    """

    client_id: int
    num_samples: int
    #: Dehydrated persistent state (see :meth:`FLClient.dehydrate`); None
    #: until the client is evicted for the first time.
    saved_state: Optional[dict] = field(default=None, repr=False)
    hydrations: int = 0
    #: Churn disconnects observed while the client was dehydrated; folded
    #: into ``times_disconnected`` at the next hydration so the lifetime
    #: counter matches what an always-hydrated client would report.
    pending_disconnects: int = 0


class _Slot:
    """One reusable arena entry: the recycled model buffers."""

    __slots__ = ("model", "client")

    def __init__(self, model) -> None:
        self.model = model
        self.client: Optional[FLClient] = None


class VirtualClientPool:
    """Bounded LRU arena hydrating :class:`FLClient` actors on demand.

    Parameters
    ----------
    cluster:
        The simulated cluster the clients live on (profiles and clocks for
        the whole cohort are cheap and pre-built).
    config:
        The experiment configuration (hydrated clients read batch size,
        optimizer knobs, etc. from it).
    dataset:
        The global dataset; shards are sliced per hydration.
    plan:
        Lazy partition plan deriving any client's shard on demand.
    model_factory:
        Zero-argument callable building one model with the experiment's
        seeded initializer — called once per *slot*, not per client.
    slots:
        Arena capacity; ``None`` derives it from the config's per-round
        participant count plus :data:`POOL_SLOT_HEADROOM`.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExperimentConfig,
        dataset: Dataset,
        plan: PartitionPlan,
        model_factory: Callable[[], object],
        slots: Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.dataset = dataset
        self.plan = plan
        self.model_factory = model_factory
        if slots is None:
            participants = max(
                config.effective_clients_per_round, config.effective_async_concurrency
            )
            slots = participants + POOL_SLOT_HEADROOM
        self.slots = max(1, min(int(slots), config.num_clients))
        self.descriptors: Dict[int, ClientDescriptor] = {
            client_id: ClientDescriptor(client_id, plan.size_of(client_id))
            for client_id in range(config.num_clients)
        }
        #: Hydrated clients in LRU order (oldest first).
        self._active: "OrderedDict[int, _Slot]" = OrderedDict()
        #: Recycled slots awaiting a client.
        self._free: List[_Slot] = []
        #: Clients the federator is currently working with; never evicted.
        self._pinned: frozenset = frozenset()

        # Diagnostics (reports, benchmarks, tests).
        self.hydrations = 0
        self.evictions = 0
        self.slots_built = 0
        self.peak_hydrated = 0

        # Churn can disconnect a client that is not hydrated (no actor to
        # notify): record it on the descriptor so the lifetime counter
        # survives, exactly as on the eager path.
        cluster.add_membership_listener(self._on_membership_change)

    def _on_membership_change(self, client_id: int, online: bool) -> None:
        if not online and client_id not in self._active:
            self.descriptors[client_id].pending_disconnects += 1

    # ------------------------------------------------------------- inspection
    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    def hydrated_ids(self) -> List[int]:
        """Ids of the currently hydrated clients, LRU-oldest first."""
        return list(self._active)

    def has_data(self, client_id: int) -> bool:
        """Whether a client's shard is non-empty (descriptor lookup, O(1)).

        Extreme non-IID splits of huge cohorts can leave clients with zero
        samples; federator selection skips them, so they are never
        hydrated.
        """
        return self.descriptors[client_id].num_samples > 0

    def client(self, client_id: int) -> Optional[FLClient]:
        """The hydrated actor for a client, or ``None`` if dehydrated."""
        slot = self._active.get(client_id)
        return slot.client if slot is not None else None

    def hydrated_clients(self) -> List[FLClient]:
        """The currently hydrated actors (for handle/test introspection)."""
        return [slot.client for slot in self._active.values() if slot.client is not None]

    def describe(self) -> Dict[str, int]:
        """Pool diagnostics for logs and benchmarks."""
        return {
            "cohort": self.num_clients,
            "slots": self.slots,
            "hydrated": len(self._active),
            "peak_hydrated": self.peak_hydrated,
            "hydrations": self.hydrations,
            "evictions": self.evictions,
            "slots_built": self.slots_built,
        }

    # -------------------------------------------------------------- hydration
    def ensure_active(self, client_ids: Iterable[int]) -> None:
        """Hydrate (and pin) the clients a federator is about to engage.

        The pinned set is *replaced*: pinning a new round's selection
        releases the previous round's clients for eviction.  Called by the
        synchronous round engine with the round's selection, and by the
        async dispatch loop with its in-flight set.
        """
        ids = list(client_ids)
        self._pinned = frozenset(ids)
        for client_id in ids:
            self.hydrate(client_id)

    def hydrate(self, client_id: int) -> FLClient:
        """Return the client's actor, materialising it if dehydrated."""
        slot = self._active.get(client_id)
        if slot is not None:
            self._active.move_to_end(client_id)
            return slot.client  # type: ignore[return-value]

        descriptor = self.descriptors[client_id]
        slot = self._acquire_slot()
        partition = self.plan.partition(client_id)
        client = FLClient(
            client_id=client_id,
            cluster=self.cluster,
            model=slot.model,
            x_train=self.dataset.x_train[partition.indices],
            y_train=self.dataset.y_train[partition.indices],
            config=self.config,
            class_counts=partition.class_counts,
        )
        if descriptor.saved_state is not None:
            client.rehydrate(descriptor.saved_state)
            descriptor.saved_state = None
        if descriptor.pending_disconnects:
            client.times_disconnected += descriptor.pending_disconnects
            descriptor.pending_disconnects = 0
        slot.client = client
        self._active[client_id] = slot
        descriptor.hydrations += 1
        self.hydrations += 1
        self.peak_hydrated = max(self.peak_hydrated, len(self._active))
        return client

    def _acquire_slot(self) -> _Slot:
        if self._free:
            return self._free.pop()
        if len(self._active) < self.slots:
            return self._build_slot()
        if self._evict_lru():
            return self._free.pop()
        # Every hydrated client is pinned or mid-flight: grow past the
        # nominal bound rather than deadlock (peak_hydrated records it).
        return self._build_slot()

    def _build_slot(self) -> _Slot:
        self.slots_built += 1
        return _Slot(self.model_factory())

    # --------------------------------------------------------------- eviction
    def _evictable(self, client_id: int, client: FLClient) -> bool:
        if client_id in self._pinned:
            return False
        if not client.is_quiescent(resolve_peer=self.client):
            # Still training (e.g. finishing after being dropped from a
            # round), holding an offloaded model, or promised one that can
            # still arrive (the peer resolver lets the client tell a live
            # offload expectation from one voided by churn/eviction).
            return False
        # A message in flight to or from the client (a late result, an
        # offloaded model) must reach its original actor, and an un-ACKed
        # reliable send touching it may still retransmit into its handler.
        return (
            self.cluster.network.in_flight_count(client_id) == 0
            and self.cluster.transport.pending_involving(client_id) == 0
        )

    def _evict_lru(self) -> bool:
        for client_id in list(self._active):  # LRU order: oldest first
            slot = self._active[client_id]
            if slot.client is not None and self._evictable(client_id, slot.client):
                self.dehydrate(client_id)
                return True
        return False

    # ------------------------------------------------------ checkpoint seams
    def capture_state(self) -> Optional[dict]:
        """Serializable snapshot of the whole pool, or ``None`` to refuse.

        Hydrated clients are captured through
        :meth:`FLClient.capture_execution_state` (full mid-run state);
        dehydrated ones contribute their descriptor record.  The hydrated
        set is recorded in LRU order so a resumed pool makes identical
        eviction choices.  Any hydrated client that refuses capture (e.g.
        mid-offload-training) makes the whole pool refuse.
        """
        hydrated = []
        for client_id, slot in self._active.items():
            if slot.client is None:  # pragma: no cover - defensive
                return None
            state = slot.client.capture_execution_state()
            if state is None:
                return None
            hydrated.append((client_id, state))
        descriptors = {
            d.client_id: {
                "saved_state": d.saved_state,
                "hydrations": d.hydrations,
                "pending_disconnects": d.pending_disconnects,
            }
            for d in self.descriptors.values()
        }
        return {
            "hydrated": hydrated,
            "descriptors": descriptors,
            "pinned": sorted(self._pinned),
            "hydrations": self.hydrations,
            "evictions": self.evictions,
            "slots_built": self.slots_built,
            "peak_hydrated": self.peak_hydrated,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`capture_state` onto a fresh pool.

        Must run before in-flight network messages are restored: hydration
        re-registers each client's network handler.  Diagnostics counters
        are overwritten last so restore-time hydrations do not inflate
        them past the captured values.
        """
        if self._active:  # pragma: no cover - defensive
            raise RuntimeError("can only restore into a freshly built pool")
        for client_id, entry in state["descriptors"].items():
            descriptor = self.descriptors[client_id]
            descriptor.saved_state = entry["saved_state"]
            descriptor.pending_disconnects = entry["pending_disconnects"]
        for client_id, client_state in state["hydrated"]:
            client = self.hydrate(client_id)
            client.restore_execution_state(client_state)
        self._pinned = frozenset(state["pinned"])
        for client_id, entry in state["descriptors"].items():
            self.descriptors[client_id].hydrations = entry["hydrations"]
        self.hydrations = state["hydrations"]
        self.evictions = state["evictions"]
        self.slots_built = state["slots_built"]
        self.peak_hydrated = state["peak_hydrated"]

    def dehydrate(self, client_id: int) -> None:
        """Evict a client: persist its loader position, free its shard.

        The client's network handler and cluster actor registration are
        removed, so nothing can reach the retired instance; the slot (with
        its model buffers) joins the free list for recycling.
        """
        slot = self._active.pop(client_id)
        client = slot.client
        if client is not None:
            self.descriptors[client_id].saved_state = client.dehydrate()
            self.cluster.transport.unregister(client_id)
            self.cluster.detach_actor(client_id)
            slot.client = None
        self.evictions += 1
        self._free.append(slot)
