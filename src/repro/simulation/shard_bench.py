"""BENCH_shard: sharded compute-plane scaling ladder + memory ceiling.

Measures the multi-process shard executor (:mod:`repro.simulation.shard`)
against the in-process batched engine on the same workload:

* **throughput ladder** — wall-clock round throughput at 1/2/4 shards on a
  compute-heavy metro-scale workload (``local_updates`` raised so worker
  training dominates the round), with the bitwise-parity invariant checked
  inline: every rung must produce byte-identical round records,
* **memory ceiling** — a continent-scale run (100k virtual clients) that
  must complete with every worker's peak RSS bounded well below the
  parent's (workers hold cohort slices and kernels, never the dataset or
  the client pool).

The ≥2x round-throughput target at 4 shards is a *parallelism* claim, so
it is only evaluated when the host actually has ≥4 usable cores; on
smaller hosts the ladder is still recorded (and parity still enforced)
but the speedup verdict is reported as not evaluable — a single-core
container cannot honestly demonstrate multi-process scaling.

Results are written to ``BENCH_shard.json``; also reachable as
``repro bench --shard`` (``--scale smoke`` selects the quick ladder).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Dict, List, Optional

from repro.experiments.workloads import SCALES, evaluation_config
from repro.fl.runtime import build_experiment

#: Evaluating the 4-shard speedup target needs at least this many cores.
MIN_CORES_FOR_TARGET = 4
#: Round-throughput multiple the 4-shard rung must reach on capable hosts.
SPEEDUP_TARGET = 2.0
#: Every worker's peak RSS must stay below this fraction of the parent's
#: on the continent run (the parent holds the dataset + 100k-client pool;
#: workers only ever see per-cohort slices).
WORKER_RSS_FRACTION = 0.5


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _maxrss_mb() -> float:
    from repro.simulation.shard import _maxrss_kb

    return _maxrss_kb() / 1024.0


def _run_instrumented(config) -> Dict[str, object]:
    """Run one config, returning wall-clock, records, and shard RSS."""
    handle = build_experiment(config)
    start = time.perf_counter()
    try:
        handle.federator.start()
        handle.cluster.run()
        wall_s = time.perf_counter() - start
        executor = getattr(handle.cluster, "batched_executor", None)
        shard_state = (
            executor.shard_snapshot() if hasattr(executor, "shard_snapshot") else None
        )
    finally:
        executor = getattr(handle.cluster, "batched_executor", None)
        if executor is not None:
            executor.close()
    result = handle.federator.result
    workers = (shard_state or {}).get("workers") or []
    return {
        "wall_s": wall_s,
        "records": [dataclasses.asdict(record) for record in result.rounds],
        "rounds": len(result.rounds),
        "worker_maxrss_mb": [entry["maxrss_kb"] / 1024.0 for entry in workers if entry],
    }


def _ladder_config(shards: int, quick: bool):
    scale = SCALES["city" if quick else "metro"]
    return evaluation_config(
        "mnist",
        "fedavg",
        "iid",
        scale,
        seed=7,
        scenario="stable",
        dtype="float32",
        batched_execution="on",
        shards=shards,
        # Compute-heavy round: more local steps per client so worker-side
        # training dominates dispatch/collect overhead.
        local_updates=8 if quick else 24,
        rounds=2,
    )


def run_shard_bench(quick: bool = False, output: Optional[str] = "BENCH_shard.json") -> Dict[str, object]:
    cores = _usable_cores()
    ladder: List[Dict[str, object]] = []
    baseline_records = None
    baseline_throughput = None
    parity = True

    for shards in (1, 2, 4):
        config = _ladder_config(shards, quick)
        run = _run_instrumented(config)
        throughput = run["rounds"] / run["wall_s"]
        if shards == 1:
            baseline_records = run["records"]
            baseline_throughput = throughput
        else:
            parity = parity and run["records"] == baseline_records
        ladder.append(
            {
                "shards": shards,
                "wall_s": round(run["wall_s"], 3),
                "rounds_per_s": round(throughput, 4),
                "speedup": round(throughput / baseline_throughput, 3),
                "worker_maxrss_mb": [round(mb, 1) for mb in run["worker_maxrss_mb"]],
            }
        )

    speedup_at_4 = ladder[-1]["speedup"]
    target_evaluable = cores >= MIN_CORES_FOR_TARGET
    target_met = bool(speedup_at_4 >= SPEEDUP_TARGET) if target_evaluable else None

    continent: Dict[str, object] = {"skipped": True}
    if not quick:
        config = evaluation_config(
            "mnist",
            "fedavg",
            "iid",
            SCALES["continent"],
            seed=7,
            scenario="stable",
            dtype="float32",
            batched_execution="on",
            shards=4,
        )
        run = _run_instrumented(config)
        parent_mb = _maxrss_mb()
        worker_peak = max(run["worker_maxrss_mb"], default=0.0)
        continent = {
            "skipped": False,
            "shards": 4,
            "num_clients": SCALES["continent"].num_clients,
            "rounds": run["rounds"],
            "wall_s": round(run["wall_s"], 3),
            "parent_maxrss_mb": round(parent_mb, 1),
            "worker_maxrss_mb": [round(mb, 1) for mb in run["worker_maxrss_mb"]],
            "worker_rss_bounded": bool(
                worker_peak > 0.0 and worker_peak <= parent_mb * WORKER_RSS_FRACTION
            ),
        }

    results: Dict[str, object] = {
        "bench": "shard",
        "mode": "quick" if quick else "full",
        "cores": cores,
        "ladder": ladder,
        "bitwise_parity": parity,
        "speedup_at_4_shards": speedup_at_4,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_evaluable": target_evaluable,
        "speedup_target_met": target_met,
        "continent": continent,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return results


def render_shard_bench(results: Dict[str, object]) -> str:
    lines = [
        f"BENCH_shard ({results['mode']} ladder, {results['cores']} core(s))",
        "",
        f"{'shards':>6}  {'wall_s':>8}  {'rounds/s':>9}  {'speedup':>8}  worker peak RSS (MB)",
    ]
    for rung in results["ladder"]:
        rss = ", ".join(f"{mb:.0f}" for mb in rung["worker_maxrss_mb"]) or "-"
        lines.append(
            f"{rung['shards']:>6}  {rung['wall_s']:>8.2f}  {rung['rounds_per_s']:>9.3f}"
            f"  {rung['speedup']:>7.2f}x  {rss}"
        )
    lines.append("")
    lines.append(f"bitwise parity across rungs: {'ok' if results['bitwise_parity'] else 'FAILED'}")
    if results["speedup_target_evaluable"]:
        verdict = "met" if results["speedup_target_met"] else "NOT met"
        lines.append(
            f"4-shard speedup target (>= {results['speedup_target']:.1f}x): "
            f"{results['speedup_at_4_shards']:.2f}x — {verdict}"
        )
    else:
        lines.append(
            f"4-shard speedup target (>= {results['speedup_target']:.1f}x): "
            f"not evaluable on a {results['cores']}-core host (needs >= {MIN_CORES_FOR_TARGET})"
        )
    continent = results["continent"]
    if continent.get("skipped"):
        lines.append("continent run: skipped (quick mode)")
    else:
        bounded = "bounded" if continent["worker_rss_bounded"] else "NOT bounded"
        lines.append(
            f"continent ({continent['num_clients']} clients, {continent['shards']} shards): "
            f"{continent['rounds']} rounds in {continent['wall_s']:.1f}s — "
            f"worker RSS {bounded} (peak {max(continent['worker_maxrss_mb']):.0f} MB "
            f"vs parent {continent['parent_maxrss_mb']:.0f} MB)"
        )
    return "\n".join(lines)
