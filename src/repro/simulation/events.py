"""Virtual clock and discrete-event queue.

The simulation advances time only when events fire; computation and message
transfers are modelled by scheduling their completion at
``now + duration``.  Events scheduled for the same instant fire in FIFO
order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)`` so that ties are broken by
    insertion order.  A cancelled event stays in the heap but is skipped
    when popped.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        event = Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0


class SimulationEnvironment:
    """The simulation's global virtual clock and scheduler.

    All actors (federator, clients, network) share one environment.  The
    typical usage pattern is::

        env = SimulationEnvironment()
        env.schedule(0.0, federator.start)
        env.run()

    after which ``env.now`` holds the virtual time at which the last event
    fired.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now: float = 0.0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for debugging/limits)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past (time={time}, now={self.now})"
            )
        return self._queue.push(time, callback)

    def step(self) -> bool:
        """Process the next pending event; ``False`` when the queue is empty.

        Equivalent to one iteration of :meth:`run`, but O(log n) — unlike
        ``pending_events()``, it never scans the heap, so callers that pump
        the simulation one event at a time (the streaming run handles) pay
        the same total cost as a single :meth:`run` call.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self.now = event.time
        event.callback()
        self._events_processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue drains (or a limit is reached).

        Parameters
        ----------
        until:
            Stop once the next event would fire after this virtual time.
            The clock is advanced to ``until`` in that case.
        max_events:
            Safety limit on the number of events to process.
        """
        processed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            event = self._queue.pop()
            if event is None:  # pragma: no cover - guarded by peek_time
                break
            self.now = event.time
            event.callback()
            processed += 1
            self._events_processed += 1

    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._queue)
