"""Discrete-event simulation of a heterogeneous federated-learning cluster.

The paper runs its evaluation on a Kubernetes testbed of 24 Docker
containers whose CPU shares are throttled to fractions between 0.1 and 1.0
of a core.  This package replaces that testbed with a discrete-event
simulator:

* :mod:`repro.simulation.events` — the virtual clock and event queue,
* :mod:`repro.simulation.clock` — per-client local clocks with frequency
  skew (the paper assumes unsynchronised clocks of similar frequency),
* :mod:`repro.simulation.resources` — per-client compute-speed profiles,
  including the uniform [0.1, 1.0] sampling of the paper and transient
  background load,
* :mod:`repro.simulation.cost` — the cost model translating per-phase FLOP
  counts of the numpy substrate into virtual seconds,
* :mod:`repro.simulation.network` — an asynchronous, reliable, peer-to-peer
  message layer with per-link latency and bandwidth,
* :mod:`repro.simulation.cluster` — glue that wires nodes, resources and
  the network into a cluster object experiments can use,
* :mod:`repro.simulation.dynamics` — time-varying cluster behaviour
  (churn, dropouts, slowdown bursts, bandwidth traces),
* :mod:`repro.simulation.virtual_pool` — the virtualized client pool:
  descriptor-level cohorts with a bounded LRU arena of hydrated clients,
  so memory tracks participants-per-round instead of cohort size.

All timing-related results of the reproduction (round durations, deadlines,
profiling reports, offloading decisions) are measured in this virtual time.
"""

from repro.simulation.events import Event, EventQueue, SimulationEnvironment
from repro.simulation.clock import LocalClock
from repro.simulation.resources import (
    ResourceProfile,
    TransientLoad,
    uniform_speed_profiles,
    tiered_speed_profiles,
    speeds_with_variance,
)
from repro.simulation.cost import ComputeCostModel
from repro.simulation.network import LinkSpec, Network, Message
from repro.simulation.cluster import SimulatedCluster, Node

__all__ = [
    "Event",
    "EventQueue",
    "SimulationEnvironment",
    "LocalClock",
    "ResourceProfile",
    "TransientLoad",
    "uniform_speed_profiles",
    "tiered_speed_profiles",
    "speeds_with_variance",
    "ComputeCostModel",
    "LinkSpec",
    "Network",
    "Message",
    "SimulatedCluster",
    "Node",
]
