"""Sharded multi-process simulation: the compute plane behind ``--shards``.

One Python event loop pumping every simulated event is the scale ceiling
PR 8 left behind: the batched engine made a round's training a few big
numpy calls, but they still run on the parent's core.  This module
shards that compute plane across worker processes while keeping *all*
simulation state — the event queue, clients, network, dynamics — in the
parent, which is what makes the result bitwise identical to the
single-process run:

* :class:`ShardPlan` partitions the client population into ``N``
  contiguous ownership ranges (deterministic in ``(num_clients, N)``),
  so sorted client-id order *is* shard-block concatenation order.
* :class:`ShardedClientExecutor` subclasses the batched executor; only
  the cohort changes.  When a cohort's first wave is needed, its live
  lanes are split by owning shard and dispatched as one job per shard;
  each worker runs the same lockstep wave loop
  (:class:`repro.nn.batched.BatchedModel` for two or more lanes, the
  per-client oracle for a singleton) and snapshots every lane at its own
  batch horizon.  Because PR 8 pinned batched == solo for *any* lane
  width, a shard-local sub-cohort produces bitwise the same per-lane
  weights, losses and optimizer state as the parent's full-width cohort
  would — the partition is invisible in the results.
* Workers are stateless compute servers over ``multiprocessing`` pipes
  (spawn context, same re-import discipline as
  ``experiments/parallel``): a SIGKILLed worker is respawned and its
  outstanding jobs re-dispatched with identical results.
* :class:`HierarchicalAggregator` gives each shard an
  :class:`EdgeAggregator` over its block of round traffic and merges the
  edges at the root.  The default ``"exact"`` mode reduces the
  concatenation of the shard blocks — bitwise identical to the flat
  single-process reduction because ownership is contiguous — while
  ``"partial"`` reduces each block to a per-shard partial average first
  (mathematically equivalent, not bitwise, hence hash-relevant).

Per-shard RNG streams are split from the experiment seed with
``np.random.SeedSequence.spawn``; they seed each worker's template-model
initializer (overwritten by the round globals before any training, like
every client model's initializer).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.aggregation import fedavg_aggregate_flat
from repro.nn.batched import (
    BatchedClientExecutor,
    BatchedLane,
    BatchedModel,
    BatchedProximalSGD,
    BatchedSGD,
    _Cohort,
)
from repro.nn.optim import ProximalSGD, SGD

#: Directory whose presence on ``sys.path`` makes ``import repro`` work in
#: spawned workers (mirrors ``experiments/parallel.package_parent``).
_PACKAGE_PARENT = str(Path(__file__).resolve().parents[2])


# ---------------------------------------------------------------------------
# Deterministic shard ownership
# ---------------------------------------------------------------------------
class ShardPlan:
    """Contiguous, deterministic partition of client ids across shards.

    Shard ``s`` owns ``range(start_s, start_s + size_s)`` with the first
    ``num_clients % num_shards`` shards one client larger (the
    ``np.array_split`` convention).  Contiguity is the property the exact
    aggregation mode rests on: sorting contributions by client id groups
    them into shard blocks automatically.
    """

    def __init__(self, num_clients: int, num_shards: int) -> None:
        if num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_clients = int(num_clients)
        self.num_shards = int(num_shards)
        base, extra = divmod(self.num_clients, self.num_shards)
        self._base = base
        self._extra = extra
        self.ranges: List[range] = []
        start = 0
        for shard in range(self.num_shards):
            size = base + (1 if shard < extra else 0)
            self.ranges.append(range(start, start + size))
            start += size

    def shard_of(self, client_id: int) -> int:
        """The shard owning ``client_id`` (O(1), no table)."""
        cid = int(client_id)
        if not 0 <= cid < self.num_clients:
            raise ValueError(f"client id {cid} outside [0, {self.num_clients})")
        pivot = (self._base + 1) * self._extra
        if cid < pivot:
            return cid // (self._base + 1)
        return self._extra + (cid - pivot) // self._base

    def owned(self, shard: int) -> range:
        return self.ranges[shard]


# ---------------------------------------------------------------------------
# Worker side: a stateless compute server over one pipe
# ---------------------------------------------------------------------------
def _maxrss_kb() -> int:
    # /proc VmHWM first: some container kernels report the same ru_maxrss
    # for every process, which would make per-worker bounds meaningless.
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


class _WorkerCaches:
    """Template models and batched kernel sets, reused across jobs."""

    def __init__(self) -> None:
        self.templates: Dict[Tuple[str, str], object] = {}
        self.kernels: Dict[tuple, tuple] = {}

    def template(self, architecture: str, dtype_name: str, seed: int):
        from repro.nn.architectures import build_model
        from repro.nn.dtype import using_dtype

        cached = self.templates.get((architecture, dtype_name))
        if cached is None:
            with using_dtype(dtype_name):
                cached = build_model(architecture, rng=np.random.default_rng(seed))
            self.templates[(architecture, dtype_name)] = cached
        return cached

    def cohort_kernels(self, key: tuple, lanes: int, template):
        cache_key = (key, lanes)
        cached = self.kernels.get(cache_key)
        if cached is not None:
            return cached
        model = BatchedModel(template, lanes)
        opt_key = key[5]
        if opt_key[0] == "prox":
            optimizer: BatchedSGD = BatchedProximalSGD(
                lr=opt_key[1],
                mu=opt_key[2],
                momentum=opt_key[3],
                weight_decay=opt_key[4],
                backend=model.backend,
            )
        else:
            optimizer = BatchedSGD(
                lr=opt_key[1],
                momentum=opt_key[2],
                weight_decay=opt_key[3],
                backend=model.backend,
            )
        batch_n, input_shape, y_dtype = key[2], key[3], key[4]
        x_arena = np.empty((lanes, batch_n) + tuple(input_shape), dtype=template.dtype)
        y_arena = np.empty((lanes, batch_n), dtype=np.dtype(y_dtype))
        kernels = (model, optimizer, x_arena, y_arena)
        self.kernels[cache_key] = kernels
        return kernels


def _make_solo_optimizer(opt_key: tuple):
    if opt_key[0] == "prox":
        return ProximalSGD(
            lr=opt_key[1], mu=opt_key[2], momentum=opt_key[3], weight_decay=opt_key[4]
        )
    return SGD(lr=opt_key[1], momentum=opt_key[2], weight_decay=opt_key[3])


def _shadow_loader(lane: dict):
    from repro.data.loader import BatchLoader

    loader = BatchLoader(
        lane["x"], lane["y"], batch_size=lane["batch_size"], shuffle=lane["shuffle"]
    )
    loader.set_state(lane["loader_state"])
    return loader


def _train_solo(template, key: tuple, globals_by_section: dict, lane: dict) -> dict:
    """Singleton shard group: the per-client oracle path, verbatim."""
    loader = _shadow_loader(lane)
    model = template
    model.unfreeze_features()
    model.unfreeze_classifier()
    for section in model.SECTIONS:
        model.set_flat_weights(globals_by_section[section], section=section)
    optimizer = _make_solo_optimizer(key[5])
    optimizer.reset_state()
    if isinstance(optimizer, ProximalSGD):
        optimizer.set_anchor(
            {section: model.flat_parameters(section) for section in model.SECTIONS}
        )
    losses: List[float] = []
    for _ in range(lane["total"]):
        xb, yb = loader.next_batch()
        loss, _ = model.train_batch(xb, yb, optimizer)
        losses.append(float(loss))
    opt_state = optimizer.capture_state()
    opt_state.pop("anchor", None)
    return {
        "losses": losses,
        "weights": {s: model.get_flat_weights(s) for s in model.SECTIONS},
        "optimizer": opt_state,
        "loader_state": loader.state(),
    }


def _train_cohort(
    template, key: tuple, globals_by_section: dict, lanes: Sequence[dict], caches, stats
) -> dict:
    """Shard-local lockstep: the parent cohort's wave loop, verbatim.

    Every lane draws each wave up to the group's horizon (exactly like
    ``_Cohort.advance``); a lane is snapshotted the wave it reaches its
    *own* total, which is the state the parent's fast-materialize path
    would read at that step count.
    """
    from repro.nn.model import SplitCNN

    model, optimizer, x, y = caches.cohort_kernels(key, len(lanes), template)
    model.unfreeze_features()
    model.unfreeze_classifier()
    model.load_all_lanes(globals_by_section)
    optimizer.reset_state()
    if isinstance(optimizer, BatchedProximalSGD):
        optimizer.set_anchor(dict(globals_by_section))
    loaders = [_shadow_loader(lane) for lane in lanes]
    results: Dict[int, dict] = {}
    losses_by_lane: List[List[float]] = [[] for _ in lanes]
    max_steps = max(lane["total"] for lane in lanes)
    for step in range(1, max_steps + 1):
        for index, loader in enumerate(loaders):
            xb, yb = loader.next_batch()
            x[index] = xb
            y[index] = yb
        wave = model.train_step(x, y, optimizer)
        stats["waves"] += 1
        for index, lane in enumerate(lanes):
            losses_by_lane[index].append(float(wave[index]))
            if lane["total"] == step:
                opt_state = optimizer.lane_state(index)
                opt_state.pop("anchor", None)
                results[lane["client_id"]] = {
                    "losses": list(losses_by_lane[index]),
                    "weights": {
                        s: model.lane_flat(s, index) for s in SplitCNN.SECTIONS
                    },
                    "optimizer": opt_state,
                    "loader_state": loaders[index].state(),
                }
    return results


def _execute_job(job: dict, caches: _WorkerCaches, stats: dict) -> dict:
    key = job["key"]
    stats["jobs"] += 1
    stats["lanes"] += len(job["lanes"])
    template = caches.template(job["architecture"], key[1], job["seed"])
    lanes = job["lanes"]
    if len(lanes) == 1:
        stats["solo_lanes"] += 1
        lane = lanes[0]
        return {lane["client_id"]: _train_solo(template, key, job["globals"], lane)}
    return _train_cohort(template, key, job["globals"], lanes, caches, stats)


def _shard_worker_main(conn, shard_index: int, parent_pid: int, package_parent: str) -> None:
    """Entry point of one shard worker (spawn context).

    Request/reply over ``conn``; an orphan watchdog exits when the parent
    pid changes (the parent was SIGKILLed — the crash harness relies on
    workers not outliving it).
    """
    import sys

    if package_parent and package_parent not in sys.path:
        sys.path.insert(0, package_parent)
    from repro.registry import load_plugins

    load_plugins()

    stats = {"jobs": 0, "lanes": 0, "solo_lanes": 0, "waves": 0, "cancels_received": 0}
    caches = _WorkerCaches()
    while True:
        try:
            if not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return
                continue
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "cancel":
            # Fire-and-forget: the parent cancelled round traffic for one
            # of this shard's clients (churn/disconnect).  Results are
            # collected eagerly, so there is nothing to interrupt — the
            # counter is the observable.
            stats["cancels_received"] += 1
            continue
        if kind == "snapshot":
            conn.send(
                (
                    "snapshot",
                    {
                        "shard": shard_index,
                        "pid": os.getpid(),
                        "stats": dict(stats),
                        "maxrss_kb": _maxrss_kb(),
                    },
                )
            )
            continue
        if kind == "job":
            job_id, payload = message[1], message[2]
            try:
                result = _execute_job(payload, caches, stats)
            except BaseException as exc:  # surface worker bugs to the parent
                conn.send(("error", job_id, repr(exc)))
                continue
            conn.send(("result", job_id, result))


# ---------------------------------------------------------------------------
# Parent side: the worker pool
# ---------------------------------------------------------------------------
class ShardWorkerError(RuntimeError):
    """A shard worker raised while executing a job."""


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ShardPool:
    """One pipe-connected worker process per shard, spawned lazily.

    Workers are stateless (every job carries its full inputs), which is
    what makes the failure story simple: a dead worker — crashed,
    SIGKILLed, or found with a broken pipe — is respawned and its
    outstanding jobs re-dispatched, producing identical results.
    """

    def __init__(self, num_shards: int) -> None:
        self.num_shards = int(num_shards)
        self.stats_sink: Optional[dict] = None
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[Optional[_Worker]] = [None] * self.num_shards
        self._outstanding: Dict[Tuple[int, int], dict] = {}
        self._buffered: Dict[Tuple[int, int], dict] = {}

    # ---------------------------------------------------------------- spawn
    def _spawn(self, shard: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, shard, os.getpid(), _PACKAGE_PARENT),
            daemon=True,
        )
        # The spawned interpreter must be able to ``import repro`` before
        # it can unpickle the worker target: surface the package parent
        # through PYTHONPATH for the duration of the exec.
        saved = os.environ.get("PYTHONPATH")
        entries = [] if not saved else saved.split(os.pathsep)
        if _PACKAGE_PARENT not in entries:
            os.environ["PYTHONPATH"] = os.pathsep.join([_PACKAGE_PARENT] + entries)
        try:
            process.start()
        finally:
            if saved is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = saved
        child_conn.close()
        return _Worker(process, parent_conn)

    def _ensure_worker(self, shard: int) -> _Worker:
        worker = self._workers[shard]
        if worker is None:
            worker = self._spawn(shard)
            self._workers[shard] = worker
        return worker

    def worker_pid(self, shard: int) -> Optional[int]:
        worker = self._workers[shard]
        return worker.process.pid if worker is not None else None

    def _respawn_and_redispatch(self, shard: int) -> None:
        worker = self._workers[shard]
        if worker is not None:
            try:
                worker.process.terminate()
            except Exception:
                pass
            worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except Exception:
                pass
        self._workers[shard] = self._spawn(shard)
        if self.stats_sink is not None:
            self.stats_sink["worker_restarts"] = (
                self.stats_sink.get("worker_restarts", 0) + 1
            )
        for (job_shard, job_id), payload in sorted(self._outstanding.items()):
            if job_shard == shard:
                self._workers[shard].conn.send(("job", job_id, payload))

    # ------------------------------------------------------------------ rpc
    def submit(self, shard: int, job_id: int, payload: dict) -> None:
        self._outstanding[(shard, job_id)] = payload
        worker = self._ensure_worker(shard)
        try:
            worker.conn.send(("job", job_id, payload))
        except (BrokenPipeError, OSError):
            self._respawn_and_redispatch(shard)

    def collect(self, shard: int, job_id: int) -> dict:
        key = (shard, job_id)
        while True:
            if key in self._buffered:
                self._outstanding.pop(key, None)
                return self._buffered.pop(key)
            worker = self._ensure_worker(shard)
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._respawn_and_redispatch(shard)
                continue
            if message[0] == "result":
                self._buffered[(shard, message[1])] = message[2]
            elif message[0] == "error":
                self._outstanding.pop((shard, message[1]), None)
                raise ShardWorkerError(
                    f"shard {shard} worker failed job {message[1]}: {message[2]}"
                )

    def cancel(self, shard: int, client_id: int) -> None:
        """Fire-and-forget cancel notification for one client's traffic."""
        worker = self._workers[shard]
        if worker is None:
            return
        try:
            worker.conn.send(("cancel", int(client_id)))
        except (BrokenPipeError, OSError):
            pass

    def snapshot(self) -> List[Optional[dict]]:
        """Per-shard worker stats + peak RSS (``None`` for unspawned/dead)."""
        infos: List[Optional[dict]] = []
        for shard in range(self.num_shards):
            worker = self._workers[shard]
            if worker is None or not worker.process.is_alive():
                infos.append(None)
                continue
            try:
                worker.conn.send(("snapshot",))
                while True:
                    message = worker.conn.recv()
                    if message[0] == "snapshot":
                        infos.append(message[1])
                        break
                    if message[0] == "result":
                        self._buffered[(shard, message[1])] = message[2]
            except (BrokenPipeError, EOFError, OSError):
                infos.append(None)
        return infos

    # ------------------------------------------------------------ lifecycle
    def idle(self) -> bool:
        return not self._outstanding

    def close(self) -> None:
        for worker in self._workers:
            if worker is None:
                continue
            try:
                worker.conn.send(("stop",))
            except Exception:
                pass
        for worker in self._workers:
            if worker is None:
                continue
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except Exception:
                pass
        self._workers = [None] * self.num_shards
        self._outstanding.clear()
        self._buffered.clear()


#: Idle pools kept warm across executors/runs (workers are stateless and
#: generic — every job carries its architecture/dtype/globals — so reuse
#: is safe and saves the ~1s spawn cost per worker per run).
_POOL_CACHE: Dict[int, ShardPool] = {}


def _acquire_pool(num_shards: int) -> ShardPool:
    pool = _POOL_CACHE.pop(num_shards, None)
    if pool is None:
        pool = ShardPool(num_shards)
    return pool


def _release_pool(pool: ShardPool) -> None:
    pool.stats_sink = None
    if not pool.idle() or pool.num_shards in _POOL_CACHE:
        pool.close()
        return
    _POOL_CACHE[pool.num_shards] = pool


@atexit.register
def _shutdown_cached_pools() -> None:  # pragma: no cover - process teardown
    for pool in list(_POOL_CACHE.values()):
        pool.close()
    _POOL_CACHE.clear()


# ---------------------------------------------------------------------------
# Hierarchical aggregation: edge partials, root merge
# ---------------------------------------------------------------------------
class EdgeAggregator:
    """Partial FedAvg over one shard's block of round contributions."""

    def __init__(self, shard: int) -> None:
        self.shard = shard

    def reduce(
        self, rows: Sequence[np.ndarray], sizes: Sequence[int]
    ) -> Tuple[np.ndarray, float]:
        partial = fedavg_aggregate_flat(rows, sizes)
        total = float(sum(max(int(size), 0) for size in sizes))
        return partial, total


class HierarchicalAggregator:
    """Edge aggregators per shard plus the root merge.

    ``"exact"`` (default): contributions arrive sorted by client id and
    shard ownership is contiguous, so the sorted order already *is* the
    concatenation of the shard blocks — the root reduces that
    concatenation with the unchanged flat kernel, bitwise identical to
    the single-process path while the tree structure (counted in
    ``edge_reduces``/``root_merges``) stays real.

    ``"partial"``: each edge reduces its block to one weighted partial;
    the root merges the partials weighted by shard sample totals.
    Mathematically the same average, not bitwise (float reduction order
    changes), which is why the mode is hash-relevant.
    """

    def __init__(self, plan: ShardPlan, mode: str = "exact", stats: Optional[dict] = None) -> None:
        if mode not in {"exact", "partial"}:
            raise ValueError(f"unknown shard aggregation mode {mode!r}")
        self.plan = plan
        self.mode = mode
        self.stats = stats if stats is not None else {}
        self.edges = [EdgeAggregator(shard) for shard in range(plan.num_shards)]

    def _blocks(self, client_ids: Sequence[int]) -> List[Tuple[int, slice]]:
        blocks: List[Tuple[int, slice]] = []
        start = 0
        while start < len(client_ids):
            shard = self.plan.shard_of(client_ids[start])
            stop = start + 1
            while stop < len(client_ids) and self.plan.shard_of(client_ids[stop]) == shard:
                stop += 1
            blocks.append((shard, slice(start, stop)))
            start = stop
        return blocks

    def aggregate_flat(
        self,
        rows: Sequence[np.ndarray],
        sizes: Sequence[int],
        client_ids: Sequence[int],
    ) -> np.ndarray:
        if len(client_ids) != len(rows):
            # A subclass reshaped the contribution list; without the id
            # alignment the tree cannot attribute rows to shards.
            return fedavg_aggregate_flat(rows, sizes)
        blocks = self._blocks(client_ids)
        self.stats["edge_reduces"] = self.stats.get("edge_reduces", 0) + len(blocks)
        self.stats["root_merges"] = self.stats.get("root_merges", 0) + 1
        if self.mode == "exact":
            # The blocks' concatenation is the input order: the root
            # reduction over it is the flat reduction, bit for bit.
            return fedavg_aggregate_flat(rows, sizes)
        partials: List[np.ndarray] = []
        weights: List[float] = []
        for shard, block in blocks:
            partial, total = self.edges[shard].reduce(rows[block], sizes[block])
            partials.append(partial)
            weights.append(total)
        return fedavg_aggregate_flat(partials, weights)


# ---------------------------------------------------------------------------
# Sharded executor: remote cohorts and lanes
# ---------------------------------------------------------------------------
class _ShardLane(BatchedLane):
    """Lane handle whose training ran on the owning shard worker."""

    def consume_loss(self) -> float:
        state = self._state
        state.consumed += 1
        self._cohort.ensure_results()
        return state.losses[state.consumed - 1]

    def materialize(self, client, drawn: int):
        cohort = self._cohort
        state = self._state
        executor = cohort.executor
        try:
            if drawn > 0:
                cohort.ensure_results()
                result = cohort.result_for(state.client_id)
                if result is not None and drawn == state.total_batches:
                    model = client.model
                    for section in model.SECTIONS:
                        model.set_flat_weights(
                            result["weights"][section], section=section
                        )
                    opt_state = dict(result["optimizer"])
                    if isinstance(client.optimizer, ProximalSGD):
                        # The worker strips the (bulky) anchor; it equals
                        # the round-start globals verbatim.
                        opt_state["anchor"] = {
                            section: np.array(vector, copy=True)
                            for section, vector in cohort.globals.items()
                        }
                    client.optimizer.restore_state(opt_state)
                    client.loader.set_state(result["loader_state"])
                    executor.stats["fast_materializations"] += 1
                    return result["losses"][drawn - 1]
            # Divergence (offload freeze, partial progress) or a zero-draw
            # exit: replay through the per-client oracle, exactly like the
            # in-process cohort does when it ran ahead.
            executor.stats["replays"] += 1
            return self._replay(client, drawn)
        finally:
            cohort.detach(state)

    def abandon(self, client, drawn: int) -> None:
        cohort = self._cohort
        state = self._state
        executor = cohort.executor
        if cohort.started:
            executor.stats["remote_cancels"] += 1
            executor.pool.cancel(
                executor.plan.shard_of(state.client_id), state.client_id
            )
        super().abandon(client, drawn)


class _ShardCohort(_Cohort):
    """A cohort whose wave loop runs on the shard workers.

    The parent never trains: on first demand the live lanes are
    partitioned by owning shard, one job per shard is dispatched, and the
    blocking collect fills every lane's full loss history (workers finish
    the cohort's horizon eagerly — the lockstep has no data dependence on
    the parent between waves).
    """

    lane_cls = _ShardLane

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._jobs: List[Tuple[int, int]] = []
        self._results: Optional[Dict[int, dict]] = None

    def ensure_results(self) -> None:
        if not self.started:
            self._dispatch()
        if self._results is None:
            self._collect()

    def result_for(self, client_id: int) -> Optional[dict]:
        return (self._results or {}).get(client_id)

    def _dispatch(self) -> None:
        self.started = True
        executor = self.executor
        self._active = [
            state for state in self.members.values() if state.activated and not state.detached
        ]
        for index, state in enumerate(self._active):
            state.index = index
        self.max_steps = max(state.total_batches for state in self._active)
        by_shard: Dict[int, List] = {}
        for state in self._active:
            by_shard.setdefault(executor.plan.shard_of(state.client_id), []).append(state)
        for shard in sorted(by_shard):
            lanes = []
            for state in by_shard[shard]:
                loader = state.client.loader
                lanes.append(
                    {
                        "client_id": state.client_id,
                        "total": state.total_batches,
                        "x": loader.x,
                        "y": loader.y,
                        "batch_size": loader.batch_size,
                        "shuffle": loader.shuffle,
                        "loader_state": state.start_loader_state,
                    }
                )
            job = {
                "key": self.key,
                "architecture": executor.architecture,
                "seed": executor.shard_seed(shard),
                "globals": self.globals,
                "lanes": lanes,
            }
            job_id = executor._next_job_id()
            executor.pool.submit(shard, job_id, job)
            self._jobs.append((shard, job_id))
        executor.stats["cohorts_started"] += 1
        executor.stats["lanes"] += len(self._active)
        executor.stats["shard_jobs"] += len(self._jobs)

    def _collect(self) -> None:
        executor = self.executor
        results: Dict[int, dict] = {}
        for shard, job_id in self._jobs:
            results.update(executor.pool.collect(shard, job_id))
        self._results = results
        for state in self._active:
            state.losses = list(results[state.client_id]["losses"])
        executor.stats["waves"] += self.max_steps
        self.steps_done = self.max_steps

    def advance(self) -> None:  # safety net for base-path callers
        self.ensure_results()


class ShardedClientExecutor(BatchedClientExecutor):
    """Batched executor whose cohorts train on shard worker processes."""

    cohort_cls = _ShardCohort

    def __init__(
        self,
        num_shards: int,
        num_clients: int,
        architecture: str,
        seed: int,
        aggregate_mode: str = "exact",
        backend=None,
    ) -> None:
        super().__init__(backend=backend)
        self.plan = ShardPlan(num_clients, num_shards)
        self.architecture = architecture
        self.seed = int(seed)
        self.aggregate_mode = aggregate_mode
        self._shard_seeds = [
            int(stream.generate_state(1)[0])
            for stream in np.random.SeedSequence(self.seed).spawn(self.plan.num_shards)
        ]
        self._pool: Optional[ShardPool] = None
        self._job_counter = 0
        self.stats.update(
            {
                "shard_jobs": 0,
                "remote_cancels": 0,
                "worker_restarts": 0,
                "edge_reduces": 0,
                "root_merges": 0,
            }
        )
        self.hierarchy = HierarchicalAggregator(
            self.plan, mode=aggregate_mode, stats=self.stats
        )

    # ------------------------------------------------------------- plumbing
    @property
    def pool(self) -> ShardPool:
        if self._pool is None:
            self._pool = _acquire_pool(self.plan.num_shards)
            self._pool.stats_sink = self.stats
        return self._pool

    def shard_seed(self, shard: int) -> int:
        return self._shard_seeds[shard]

    def _next_job_id(self) -> int:
        self._job_counter += 1
        return self._job_counter

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            _release_pool(pool)

    def _maybe_release(self, cohort) -> None:
        live = cohort in self._live
        super()._maybe_release(cohort)
        if live and cohort not in self._live and isinstance(cohort, _ShardCohort):
            cohort._results = None

    # ----------------------------------------------------------- checkpoint
    def shard_snapshot(self) -> dict:
        """Per-shard state merged into the run checkpoint."""
        workers = self._pool.snapshot() if self._pool is not None else None
        return {
            "num_shards": self.plan.num_shards,
            "aggregate_mode": self.aggregate_mode,
            "seed": self.seed,
            "shard_seeds": list(self._shard_seeds),
            "stats": dict(self.stats),
            "workers": workers,
        }

    def restore_shard_snapshot(self, snapshot: Optional[dict]) -> None:
        """Re-absorb cumulative counters from a checkpoint.

        Worker processes are not restored — they are stateless, and the
        resumed run re-seeds its shard streams from the config — so only
        the parent-side counters carry over.
        """
        if not snapshot:
            return
        for key, value in (snapshot.get("stats") or {}).items():
            if key in self.stats:
                self.stats[key] = self.stats[key] + int(value)
