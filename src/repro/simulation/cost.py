"""Cost model translating FLOP counts into virtual seconds.

The numpy substrate reports per-phase FLOP counts for every training batch
(:class:`repro.nn.model.PhaseTrace`).  The cost model divides those counts
by a client's effective compute rate to obtain the virtual-time duration of
the batch, which is how the reproduction recreates the heterogeneous
per-phase timings of the paper's throttled containers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.nn.model import Phase, PhaseTrace
from repro.simulation.resources import ResourceProfile


@dataclass
class ComputeCostModel:
    """Converts FLOPs to seconds for a given client resource profile.

    Attributes
    ----------
    overhead_seconds_per_batch:
        Fixed per-batch framework overhead (data loading, Python
        dispatching); a small constant so that extremely small models do
        not train in zero virtual time.
    """

    overhead_seconds_per_batch: float = 1e-3

    def phase_seconds(
        self, trace: PhaseTrace, profile: ResourceProfile, time: float = 0.0
    ) -> Dict[Phase, float]:
        """Duration of each training phase for one batch."""
        rate = profile.effective_rate(time)
        return {phase: trace.flops[phase] / rate for phase in Phase}

    def batch_seconds(
        self, trace: PhaseTrace, profile: ResourceProfile, time: float = 0.0
    ) -> float:
        """Total duration of one full training batch."""
        return sum(self.phase_seconds(trace, profile, time).values()) + self.overhead_seconds_per_batch

    def frozen_batch_seconds(
        self, trace: PhaseTrace, profile: ResourceProfile, time: float = 0.0
    ) -> float:
        """Duration of a batch when the feature layers are frozen (no ``bf``)."""
        seconds = self.phase_seconds(trace, profile, time)
        return (
            seconds[Phase.FORWARD_FEATURES]
            + seconds[Phase.FORWARD_CLASSIFIER]
            + seconds[Phase.BACKWARD_CLASSIFIER]
            + self.overhead_seconds_per_batch
        )

    def feature_training_seconds(
        self, trace: PhaseTrace, profile: ResourceProfile, time: float = 0.0
    ) -> float:
        """Duration of training only the feature (convolutional) layers.

        This is the cost a strong client pays per batch when it trains an
        offloaded frozen model: forward through the features, forward
        through the (kept-fixed) classifier to obtain the loss, and the
        feature backward pass.  The classifier weight-gradient computation
        is skipped because the classifier stays frozen on the strong client;
        only the (comparatively negligible) input-gradient of the classifier
        is needed to reach the feature layers.  This matches the ``x_b``
        input of Algorithm 2 (the "training time of only the conv layer for
        client b").
        """
        seconds = self.phase_seconds(trace, profile, time)
        return (
            seconds[Phase.FORWARD_FEATURES]
            + seconds[Phase.FORWARD_CLASSIFIER]
            + seconds[Phase.BACKWARD_FEATURES]
            + self.overhead_seconds_per_batch
        )

    def seconds_for_flops(
        self, flops: float, profile: ResourceProfile, time: float = 0.0
    ) -> float:
        """Duration of an arbitrary amount of computation."""
        return profile.seconds_for_flops(flops, time)
