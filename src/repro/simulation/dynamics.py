"""Scenario dynamics: time-varying cluster behaviour on the event queue.

The original simulation froze the cluster at build time: every client
existed for the whole run, every link kept its construction-time bandwidth
and every ``speed_fraction`` was constant.  Real federated deployments are
dominated by *churn* (clients joining and leaving), *dropouts* (clients
disappearing mid-round), *straggler bursts* (co-located load stealing
compute for a while) and *bandwidth variation*.  :class:`ScenarioDynamics`
drives all four on top of the existing discrete-event queue:

* **Availability windows** — each client alternates between online and
  offline periods with exponentially distributed lengths.  Going offline
  mid-round is a dropout: the cluster fails the client's in-flight
  messages, aborts its local training and notifies the federator.
* **Straggler slowdown bursts** — a Poisson process picks a random online
  client and divides its ``speed_fraction`` by a configured factor for an
  exponentially distributed duration.
* **Bandwidth traces** — a Poisson process rescales a random client's
  links to the federator by a factor drawn uniformly from a configured
  range, reverting after a hold period.

Every draw comes from one :class:`numpy.random.Generator` seeded from the
experiment seed, and events fire at deterministic virtual times, so a given
configuration always produces the identical trace — including across
process boundaries (the parallel sweep runner).

The driver re-schedules follow-up events from inside its callbacks, which
would keep the event queue non-empty forever; the ``stop_when`` predicate
(typically ``lambda: federator.finished``) makes every callback a no-op
once the experiment is over so the simulation can drain.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.fl.config import DynamicsConfig
from repro.simulation.cluster import SimulatedCluster
from repro.simulation.events import Event


class ScenarioDynamics:
    """Schedules a :class:`~repro.fl.config.DynamicsConfig`'s behaviour.

    Parameters
    ----------
    cluster:
        The cluster whose clients, links and speeds the scenario mutates.
    dynamics:
        The scenario knobs.  An inert config (``is_active() == False``)
        results in no scheduled events at all.
    seed:
        Experiment seed; the driver derives its own independent stream.
    stop_when:
        Optional predicate checked at the start of every dynamics callback;
        once it returns ``True`` the driver stops acting and stops
        re-scheduling, letting the event queue drain.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        dynamics: DynamicsConfig,
        seed: int = 0,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.dynamics = dynamics
        self._stop_when = stop_when
        # An independent, deterministic stream: the experiment seed feeds
        # model init / partitioning / selection, so the dynamics derive a
        # distinct child stream from it.
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(0xD1A,))
        )
        self._installed = False

        #: Pending dynamics events: handle -> (event, kind, args).  All
        #: scheduling goes through :meth:`_schedule`, so the driver's future
        #: is fully declarative — (fire time, kind, args) tuples — which is
        #: what makes mid-run checkpoints serializable (the historical
        #: implementation scheduled bare closures).
        self._pending: Dict[int, Tuple[Event, str, tuple]] = {}
        self._next_handle = 0

        # Diagnostics (used by tests and experiment logs).
        self.offline_events = 0
        self.online_events = 0
        self.slowdown_events = 0
        self.bandwidth_events = 0
        self.loss_burst_events = 0
        #: Externally admitted availability events (service mode /checkin).
        self.checkin_events = 0
        #: Clients currently slowed down -> nesting depth of active bursts.
        self._active_slowdowns: Dict[int, int] = {}
        #: Latest bandwidth-trace token per client: when traces overlap on
        #: one client, only the most recent one may restore the link.
        self._link_trace_tokens: Dict[int, int] = {}
        self._link_trace_counter = 0
        #: Latest loss-burst token per client (same supersede rule as
        #: bandwidth traces: only the newest burst may clear the override).
        self._loss_burst_tokens: Dict[int, int] = {}
        self._loss_burst_counter = 0

    # ------------------------------------------------------------------ setup
    def install(self) -> None:
        """Schedule the scenario's initial events; idempotent."""
        if self._installed or not self.dynamics.is_active():
            return
        self._installed = True
        d = self.dynamics
        if d.churn:
            for client_id in self.cluster.client_ids:
                delay = d.first_event_s + self._exp(d.mean_online_s)
                self._schedule(delay, "go_offline", (client_id,))
        if d.slowdown_rate_per_s > 0:
            self._schedule(
                d.first_event_s + self._exp(1.0 / d.slowdown_rate_per_s),
                "slowdown_burst",
            )
        if d.bandwidth_rate_per_s > 0:
            self._schedule(
                d.first_event_s + self._exp(1.0 / d.bandwidth_rate_per_s),
                "bandwidth_event",
            )
        if d.loss_burst_rate_per_s > 0:
            self._schedule(
                d.first_event_s + self._exp(1.0 / d.loss_burst_rate_per_s),
                "loss_burst",
            )

    def _exp(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def _stopped(self) -> bool:
        return self._stop_when is not None and self._stop_when()

    # ------------------------------------------------------ event bookkeeping
    def _schedule(self, delay: float, kind: str, args: tuple = ()) -> Event:
        """Schedule a declarative dynamics event ``delay`` seconds from now."""
        return self._schedule_at(self.env.now + delay, kind, args)

    def _schedule_at(self, time: float, kind: str, args: tuple) -> Event:
        handle = self._next_handle
        self._next_handle += 1
        event = self.env.schedule_at(time, lambda: self._fire(handle))
        self._pending[handle] = (event, kind, tuple(args))
        return event

    def _fire(self, handle: int) -> None:
        _event, kind, args = self._pending.pop(handle)
        self._DISPATCH[kind](self, *args)

    def pending_count(self) -> int:
        """Dynamics events currently waiting on the queue."""
        return len(self._pending)

    # ------------------------------------------------------------------ churn
    def _go_offline(self, client_id: int) -> None:
        if self._stopped():
            return
        d = self.dynamics
        # Descriptor-level checks only — O(1) liveness lookups, never the
        # online-id list (a 5000-client cohort fires thousands of these).
        if (
            not self.cluster.is_online(client_id)
            or self.cluster.online_client_count <= d.min_online_clients
        ):
            # Taking this client down would leave too few online (or it is
            # already down): skip this window and try again later.
            self._schedule(self._exp(d.mean_online_s), "go_offline", (client_id,))
            return
        self.offline_events += 1
        self.cluster.set_client_offline(client_id)
        self._schedule(self._exp(d.mean_offline_s), "go_online", (client_id,))

    def _go_online(self, client_id: int) -> None:
        if self._stopped():
            return
        self.online_events += 1
        self.cluster.set_client_online(client_id)
        self._schedule(self._exp(self.dynamics.mean_online_s), "go_offline", (client_id,))

    # ------------------------------------------------------- slowdown bursts
    def _slowdown_burst(self) -> None:
        if self._stopped():
            return
        d = self.dynamics
        online = self.cluster.online_client_ids
        if online:
            client_id = int(self._rng.choice(online))
            self.slowdown_events += 1
            self._active_slowdowns[client_id] = self._active_slowdowns.get(client_id, 0) + 1
            self.cluster.scale_client_speed(client_id, 1.0 / d.slowdown_factor)
            self._schedule(self._exp(d.mean_slowdown_s), "restore_speed", (client_id,))
        self._schedule(self._exp(1.0 / d.slowdown_rate_per_s), "slowdown_burst")

    def _restore_speed(self, client_id: int) -> None:
        # Bursts always end, even after stop_when flips: leaving a
        # permanently slowed client behind would corrupt diagnostics.
        depth = self._active_slowdowns.get(client_id, 0)
        if depth <= 0:
            return
        if depth == 1:
            self._active_slowdowns.pop(client_id, None)
        else:
            self._active_slowdowns[client_id] = depth - 1
        self.cluster.scale_client_speed(client_id, self.dynamics.slowdown_factor)

    # -------------------------------------------------------- bandwidth traces
    def _bandwidth_event(self) -> None:
        if self._stopped():
            return
        d = self.dynamics
        clients: List[int] = self.cluster.client_ids
        client_id = int(self._rng.choice(clients))
        factor = float(self._rng.uniform(d.bandwidth_low_factor, d.bandwidth_high_factor))
        self.bandwidth_events += 1
        self._link_trace_counter += 1
        token = self._link_trace_counter
        self._link_trace_tokens[client_id] = token
        self.cluster.set_link_factor(client_id, factor)
        self._schedule(self._exp(d.mean_bandwidth_hold_s), "restore_link", (client_id, token))
        self._schedule(self._exp(1.0 / d.bandwidth_rate_per_s), "bandwidth_event")

    def _restore_link(self, client_id: int, token: int) -> None:
        # A newer trace superseded this one: its own restore (scheduled
        # later) owns the revert; restoring now would cut its hold short.
        if self._link_trace_tokens.get(client_id) != token:
            return
        self._link_trace_tokens.pop(client_id, None)
        self.cluster.set_link_factor(client_id, 1.0)

    # ------------------------------------------------------------ loss bursts
    def _loss_burst(self) -> None:
        if self._stopped():
            return
        d = self.dynamics
        clients: List[int] = self.cluster.client_ids
        client_id = int(self._rng.choice(clients))
        self.loss_burst_events += 1
        self._loss_burst_counter += 1
        token = self._loss_burst_counter
        self._loss_burst_tokens[client_id] = token
        self.cluster.set_link_loss(client_id, d.loss_burst_drop_rate)
        self._schedule(self._exp(d.mean_loss_burst_s), "restore_loss", (client_id, token))
        self._schedule(self._exp(1.0 / d.loss_burst_rate_per_s), "loss_burst")

    def _restore_loss(self, client_id: int, token: int) -> None:
        if self._loss_burst_tokens.get(client_id) != token:
            return
        self._loss_burst_tokens.pop(client_id, None)
        self.cluster.clear_link_loss(client_id)

    # ------------------------------------------------------- external checkins
    def admit_checkin(self, client_id: int, online: bool, delay: float = 0.0) -> Event:
        """Admit an externally driven availability event (service mode).

        ``repro serve``'s ``/checkin`` endpoint feeds simulated device
        check-ins into a hosted run through this seam: the transition is
        scheduled on the event queue like every scenario event (so it
        composes with churn, in-flight messages and checkpoints) and is
        applied at the next pump of the simulation.  Unlike churn windows,
        a check-in schedules no follow-up events and draws nothing from the
        rng stream.  Must be called from the thread driving the simulation
        (use :meth:`repro.api.RunHandle.inject` from other threads).
        """
        client_id = int(client_id)
        if not 0 <= client_id < len(self.cluster.client_ids):
            raise ValueError(
                f"check-in for unknown client {client_id} "
                f"(cohort has {len(self.cluster.client_ids)} clients)"
            )
        return self._schedule(float(delay), "checkin", (client_id, bool(online)))

    def _checkin(self, client_id: int, online: bool) -> None:
        if self._stopped():
            return
        self.checkin_events += 1
        if online:
            if not self.cluster.is_online(client_id):
                self.online_events += 1
                self.cluster.set_client_online(client_id)
        else:
            if (
                self.cluster.is_online(client_id)
                and self.cluster.online_client_count > self.dynamics.min_online_clients
            ):
                self.offline_events += 1
                self.cluster.set_client_offline(client_id)

    #: Declarative event kinds: every scheduled dynamics event is one of
    #: these method names plus plain-data args, so the pending set is
    #: serializable for checkpoints.
    _DISPATCH: Dict[str, Callable] = {
        "go_offline": _go_offline,
        "go_online": _go_online,
        "slowdown_burst": _slowdown_burst,
        "restore_speed": _restore_speed,
        "bandwidth_event": _bandwidth_event,
        "restore_link": _restore_link,
        "loss_burst": _loss_burst,
        "restore_loss": _restore_loss,
        "checkin": _checkin,
    }

    # ------------------------------------------------------ checkpoint seams
    def capture_state(self) -> dict:
        """Serializable snapshot: rng stream, counters, pending events."""
        pending = sorted(
            (
                (event.time, event.sequence, kind, list(args))
                for event, kind, args in self._pending.values()
                if not event.cancelled
            ),
            key=lambda entry: (entry[0], entry[1]),
        )
        return {
            "rng": self._rng.bit_generator.state,
            "installed": self._installed,
            "offline_events": self.offline_events,
            "online_events": self.online_events,
            "slowdown_events": self.slowdown_events,
            "bandwidth_events": self.bandwidth_events,
            "loss_burst_events": self.loss_burst_events,
            "checkin_events": self.checkin_events,
            "active_slowdowns": dict(self._active_slowdowns),
            "link_trace_tokens": dict(self._link_trace_tokens),
            "link_trace_counter": self._link_trace_counter,
            "loss_burst_tokens": dict(self._loss_burst_tokens),
            "loss_burst_counter": self._loss_burst_counter,
            "pending": pending,
        }

    def cancel_pending(self) -> None:
        """Cancel every scheduled dynamics event (resume replaces them)."""
        for event, _kind, _args in self._pending.values():
            event.cancel()
        self._pending.clear()

    def restore_state(self, state: dict) -> None:
        """Restore counters and the rng stream from :meth:`capture_state`.

        Pending events are *not* rescheduled here: the checkpoint
        orchestrator replays them via :meth:`schedule_restored` in the
        globally merged (time, sequence) order so cross-component ties
        resolve exactly as in the uninterrupted run.
        """
        self.cancel_pending()
        self._rng.bit_generator.state = state["rng"]
        self._installed = bool(state["installed"])
        self.offline_events = int(state["offline_events"])
        self.online_events = int(state["online_events"])
        self.slowdown_events = int(state["slowdown_events"])
        self.bandwidth_events = int(state["bandwidth_events"])
        self.loss_burst_events = int(state["loss_burst_events"])
        # Checkpoints written before service mode carry no check-in counter.
        self.checkin_events = int(state.get("checkin_events", 0))
        self._active_slowdowns = dict(state["active_slowdowns"])
        self._link_trace_tokens = dict(state["link_trace_tokens"])
        self._link_trace_counter = int(state["link_trace_counter"])
        self._loss_burst_tokens = dict(state["loss_burst_tokens"])
        self._loss_burst_counter = int(state["loss_burst_counter"])

    def schedule_restored(self, time: float, kind: str, args: list) -> Event:
        """Re-schedule one captured pending event at its absolute time."""
        if kind not in self._DISPATCH:
            raise ValueError(f"unknown dynamics event kind {kind!r}")
        return self._schedule_at(time, kind, tuple(args))
