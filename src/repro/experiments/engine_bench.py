"""Microbenchmarks of the compute engine against the seed reference engine.

Three hot paths are measured, each against the behaviour-preserved seed
implementation in :mod:`repro.nn.reference`:

* **train step** — one ``SplitCNN.train_batch`` (forward, backward, fused
  optimiser update) per architecture;
* **eval step** — one inference forward pass over a held-out batch;
* **aggregation** — a 16-client FedAvg/FedNova reduction, seed per-key
  dictionary loops versus the flat-vector kernels the federators now use.

Timings use the median over ``repeats`` runs after ``warmup`` discarded
runs.  :func:`run_engine_bench` returns a JSON-serialisable results dict
(written to ``BENCH_engine.json`` by the CLI and by
``benchmarks/bench_engine.py``) and :func:`render_engine_bench` renders the
human-readable table.
"""

from __future__ import annotations

import json
import os
import time
from statistics import median
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.aggregation import fedavg_aggregate_flat, fednova_aggregate_flat
from repro.nn.architectures import build_model
from repro.nn.batched import BatchedModel, BatchedSGD
from repro.nn.dtype import using_dtype
from repro.nn.optim import SGD
from repro.nn.reference import (
    REFERENCE_ARCHITECTURES,
    ReferenceSGD,
    reference_fedavg_aggregate,
    reference_fednova_aggregate,
)

DEFAULT_ARCHITECTURES = ("mnist-cnn", "cifar10-cnn")
AGGREGATION_CLIENTS = 16
ROUND_STEP_CLIENTS = 32

#: Thread-count environment variables that shape BLAS parallelism; their
#: values (when set) are recorded so BENCH_engine.json numbers can be
#: compared across machines and runs.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _blas_meta() -> Dict[str, object]:
    """BLAS/threading provenance for the benchmark metadata (numpy-only:
    the container has no threadpoolctl, so this reads numpy's build config
    and the standard thread-count environment variables instead)."""
    meta: Dict[str, object] = {
        "numpy_version": np.__version__,
        "cpu_count": os.cpu_count(),
        "thread_env": {var: os.environ[var] for var in _THREAD_ENV_VARS if var in os.environ},
    }
    config = getattr(np.__config__, "CONFIG", None)
    if isinstance(config, dict):
        deps = config.get("Build Dependencies", {})
        for lib in ("blas", "lapack"):
            info = deps.get(lib)
            if isinstance(info, dict):
                meta[lib] = {
                    key: info[key]
                    for key in ("name", "version", "openblas configuration")
                    if key in info
                }
    return meta


def _time_ms(fn: Callable[[], object], repeats: int, warmup: int) -> float:
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return float(median(samples))


def _time_paired_ms(
    fn_a: Callable[[], object], fn_b: Callable[[], object], repeats: int, warmup: int
) -> Tuple[float, float, float]:
    """Interleaved A/B timing: ``(median_a_ms, median_b_ms, a_over_b)``.

    Timing the two engines back to back in alternating pairs exposes both
    to the same machine-load drift; the reported ratio is the median of the
    per-pair ratios, which cancels any drift slower than one pair (a
    sequential A-block/B-block layout instead attributes a mid-run phase
    change entirely to one side).  The in-pair order flips every pair so
    neither engine always runs with the other's working set freshly
    evicted from cache.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    a_ms: List[float] = []
    b_ms: List[float] = []
    for pair in range(repeats):
        ordered = (fn_a, a_ms), (fn_b, b_ms)
        if pair % 2:
            ordered = ordered[::-1]
        for fn, sink in ordered:
            start = time.perf_counter()
            fn()
            sink.append((time.perf_counter() - start) * 1000.0)
    ratios = [a / b for a, b in zip(a_ms, b_ms)]
    return float(median(a_ms)), float(median(b_ms)), float(median(ratios))


def _input_batch(arch: str, batch_size: int, dtype) -> tuple:
    from repro.nn.architectures import ARCHITECTURES

    spec = ARCHITECTURES[arch]
    rng = np.random.default_rng(7)
    x = rng.normal(size=(batch_size, *spec.input_shape)).astype(dtype)
    y = rng.integers(0, spec.num_classes, size=batch_size)
    return x, y


def bench_train_step(arch: str, batch_size: int, repeats: int, warmup: int) -> Dict[str, float]:
    """Per-batch ``train_batch`` time: seed engine vs optimised float64/float32."""
    results: Dict[str, float] = {}

    reference = REFERENCE_ARCHITECTURES[arch](np.random.default_rng(0))
    x64, y = _input_batch(arch, batch_size, np.float64)
    ref_opt = ReferenceSGD(lr=0.05, momentum=0.9, model=reference)
    results["reference_ms"] = _time_ms(
        lambda: reference.train_batch(x64, y, ref_opt), repeats, warmup
    )

    for dtype_name in ("float64", "float32"):
        with using_dtype(dtype_name):
            model = build_model(arch, rng=np.random.default_rng(0))
        x = x64.astype(model.dtype)
        optimizer = SGD(lr=0.05, momentum=0.9)
        results[f"{dtype_name}_ms"] = _time_ms(
            lambda: model.train_batch(x, y, optimizer), repeats, warmup
        )

    results["speedup"] = results["reference_ms"] / results["float32_ms"]
    return results


def bench_eval_step(arch: str, batch_size: int, repeats: int, warmup: int) -> Dict[str, float]:
    """Per-batch inference time: seed engine vs optimised float64/float32."""
    results: Dict[str, float] = {}

    reference = REFERENCE_ARCHITECTURES[arch](np.random.default_rng(0))
    x64, y = _input_batch(arch, batch_size, np.float64)
    results["reference_ms"] = _time_ms(
        lambda: reference.evaluate(x64, y, batch_size=batch_size), repeats, warmup
    )

    for dtype_name in ("float64", "float32"):
        with using_dtype(dtype_name):
            model = build_model(arch, rng=np.random.default_rng(0))
        x = x64.astype(model.dtype)
        results[f"{dtype_name}_ms"] = _time_ms(
            lambda: model.evaluate(x, y, batch_size=batch_size), repeats, warmup
        )

    results["speedup"] = results["reference_ms"] / results["float32_ms"]
    return results


def bench_aggregation(
    arch: str, num_clients: int, repeats: int, warmup: int
) -> Dict[str, Dict[str, float]]:
    """16-client aggregation: seed per-key dict loops vs flat-vector kernels.

    The flat kernels are fed the clients' flat parameter vectors, exactly
    as the federators receive them in ``TrainingResult.flat_weights``.
    """
    sizes = [10 * (i + 1) for i in range(num_clients)]
    steps = [1 + (i % 5) for i in range(num_clients)]

    with using_dtype("float64"):
        dicts64 = [
            build_model(arch, rng=np.random.default_rng(i)).get_weights()
            for i in range(num_clients)
        ]
        global64 = build_model(arch, rng=np.random.default_rng(99)).get_weights()
    with using_dtype("float32"):
        models32 = [build_model(arch, rng=np.random.default_rng(i)) for i in range(num_clients)]
        rows32 = [model.get_flat_weights() for model in models32]
        global32 = build_model(arch, rng=np.random.default_rng(99)).get_flat_weights()
    rows64 = [np.concatenate([value.ravel() for value in weights.values()]) for weights in dicts64]
    global64_vec = np.concatenate([value.ravel() for value in global64.values()])

    fedavg_updates = list(zip(dicts64, sizes))
    fednova_updates = list(zip(dicts64, sizes, steps))

    fedavg = {
        "reference_ms": _time_ms(
            lambda: reference_fedavg_aggregate(fedavg_updates), repeats, warmup
        ),
        "flat_float64_ms": _time_ms(
            lambda: fedavg_aggregate_flat(rows64, sizes), repeats, warmup
        ),
        "flat_float32_ms": _time_ms(
            lambda: fedavg_aggregate_flat(rows32, sizes), repeats, warmup
        ),
    }
    fedavg["speedup"] = fedavg["reference_ms"] / fedavg["flat_float32_ms"]

    fednova = {
        "reference_ms": _time_ms(
            lambda: reference_fednova_aggregate(global64, fednova_updates), repeats, warmup
        ),
        "flat_float64_ms": _time_ms(
            lambda: fednova_aggregate_flat(global64_vec, rows64, sizes, steps), repeats, warmup
        ),
        "flat_float32_ms": _time_ms(
            lambda: fednova_aggregate_flat(global32, rows32, sizes, steps), repeats, warmup
        ),
    }
    fednova["speedup"] = fednova["reference_ms"] / fednova["flat_float32_ms"]

    return {"fedavg": fedavg, "fednova": fednova}


def bench_round_step(
    arch: str, num_clients: int, batch_size: int, repeats: int, warmup: int
) -> Dict[str, float]:
    """One round's coincident client batches: per-client loop vs one
    lockstep :class:`~repro.nn.batched.BatchedModel` wave.

    Every client starts from distinct weights and trains on distinct data
    (as in a real round after the first local step); the batched lane
    arenas are loaded from the same per-client states, so both sides do
    identical arithmetic — the batched path just does it in ``O(layers)``
    large kernels instead of ``O(clients * layers)`` small ones.
    """
    from repro.nn.architectures import ARCHITECTURES

    spec = ARCHITECTURES[arch]
    results: Dict[str, float] = {}
    for dtype_name in ("float64", "float32"):
        with using_dtype(dtype_name):
            models = [build_model(arch, rng=np.random.default_rng(i)) for i in range(num_clients)]
            batched = BatchedModel(models[0], num_clients)
        dtype = models[0].dtype
        rng = np.random.default_rng(7)
        x = rng.normal(size=(num_clients, batch_size, *spec.input_shape)).astype(dtype)
        y = rng.integers(0, spec.num_classes, size=(num_clients, batch_size))
        optimizers = [SGD(lr=0.05, momentum=0.9) for _ in range(num_clients)]
        batched_optimizer = BatchedSGD(lr=0.05, momentum=0.9, backend=batched.backend)
        for lane, model in enumerate(models):
            for section in model.SECTIONS:
                batched.load_lane(section, lane, model.get_flat_weights(section))

        def per_client_round() -> None:
            for model, optimizer, xi, yi in zip(models, optimizers, x, y):
                model.train_batch(xi, yi, optimizer)

        per_ms, batched_ms, ratio = _time_paired_ms(
            per_client_round,
            lambda: batched.train_step(x, y, batched_optimizer),
            repeats,
            warmup,
        )
        results[f"{dtype_name}_per_client_ms"] = per_ms
        results[f"{dtype_name}_batched_ms"] = batched_ms
        results[f"{dtype_name}_speedup"] = ratio
    results["speedup"] = results["float32_speedup"]
    return results


def run_engine_bench(
    architectures: Sequence[str] = DEFAULT_ARCHITECTURES,
    batch_size: int = 32,
    repeats: int = 20,
    warmup: int = 3,
    num_clients: int = AGGREGATION_CLIENTS,
    round_clients: int = ROUND_STEP_CLIENTS,
    output_path: Optional[str] = "BENCH_engine.json",
) -> Dict[str, object]:
    """Run every engine microbenchmark; optionally write ``BENCH_engine.json``."""
    results: Dict[str, object] = {
        "meta": {
            "batch_size": batch_size,
            "repeats": repeats,
            "warmup": warmup,
            "aggregation_clients": num_clients,
            "round_step_clients": round_clients,
            "unit": "ms (median)",
            "reference": "seed engine (repro.nn.reference): float64, per-key loops",
            "blas": _blas_meta(),
        },
        "train_step": {},
        "eval_step": {},
        "aggregation": {},
        "round_step": {},
    }
    for arch in architectures:
        results["train_step"][arch] = bench_train_step(arch, batch_size, repeats, warmup)
        results["eval_step"][arch] = bench_eval_step(arch, batch_size, repeats, warmup)
    # Aggregation cost scales with parameter count, not architecture detail;
    # benchmark it on the first (paper-default) architecture.
    results["aggregation"][architectures[0]] = bench_aggregation(
        architectures[0], num_clients, max(repeats * 5, 50), warmup * 5
    )
    # Batched round step: the paper-default architecture at the evaluation
    # round size, per-client loop vs one lockstep cohort.
    results["round_step"][architectures[0]] = bench_round_step(
        architectures[0], round_clients, batch_size, repeats, warmup
    )
    if output_path:
        with open(output_path, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        results["meta"]["output_path"] = output_path  # type: ignore[index]
    return results


def render_engine_bench(results: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`run_engine_bench` results."""
    lines: List[str] = []
    meta = results["meta"]
    lines.append("engine microbenchmarks (median ms; reference = seed float64 engine)")
    lines.append(
        f"  batch_size={meta['batch_size']}  repeats={meta['repeats']}  "
        f"aggregation_clients={meta['aggregation_clients']}"
    )
    header = f"  {'benchmark':<28} {'reference':>10} {'float64':>10} {'float32':>10} {'speedup':>9}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for section, title in (("train_step", "train"), ("eval_step", "eval")):
        for arch, row in results[section].items():  # type: ignore[union-attr]
            lines.append(
                f"  {title + ' ' + arch:<28} {row['reference_ms']:>10.2f} "
                f"{row['float64_ms']:>10.2f} {row['float32_ms']:>10.2f} "
                f"{row['speedup']:>8.2f}x"
            )
    for arch, rules in results["aggregation"].items():  # type: ignore[union-attr]
        for rule, row in rules.items():
            lines.append(
                f"  {rule + ' agg ' + arch:<28} {row['reference_ms']:>10.3f} "
                f"{row['flat_float64_ms']:>10.3f} {row['flat_float32_ms']:>10.3f} "
                f"{row['speedup']:>8.2f}x"
            )
    round_step = results.get("round_step") or {}
    if round_step:
        clients = results["meta"].get("round_step_clients", ROUND_STEP_CLIENTS)  # type: ignore[union-attr]
        lines.append(
            f"  {'round step (' + str(clients) + ' clients)':<28} "
            f"{'per-client':>10} {'batched':>10} {'speedup':>9}"
        )
        for arch, row in round_step.items():
            for dtype_name in ("float64", "float32"):
                lines.append(
                    f"  {arch + ' ' + dtype_name:<28} "
                    f"{row[f'{dtype_name}_per_client_ms']:>10.2f} "
                    f"{row[f'{dtype_name}_batched_ms']:>10.2f} "
                    f"{row[f'{dtype_name}_speedup']:>8.2f}x"
                )
    return "\n".join(lines)
