"""Helpers for running batches of experiment configurations."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.fl.config import ExperimentConfig
from repro.fl.metrics import ExperimentResult
from repro.fl.runtime import run_experiment


@dataclass
class SuiteResult:
    """Results of a batch of experiments, keyed by a caller-chosen label.

    ``cache_hits`` lists the labels that were loaded from the on-disk
    result cache rather than executed — always empty for the serial
    :func:`run_configs` path, populated by
    :func:`repro.experiments.parallel.run_configs_parallel` when a cache
    directory is in use.
    """

    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    wall_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: List[str] = field(default_factory=list)

    def __getitem__(self, label: str) -> ExperimentResult:
        return self.results[label]

    def __contains__(self, label: str) -> bool:
        return label in self.results

    def labels(self) -> Iterable[str]:
        return self.results.keys()

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Flat per-label summaries (the rows most figures report)."""
        return {label: result.summary() for label, result in self.results.items()}

    def total_wall_seconds(self) -> float:
        return float(sum(self.wall_seconds.values()))


def run_configs(
    configs: Mapping[str, ExperimentConfig],
    progress: Optional[Callable[[str, ExperimentResult], None]] = None,
) -> SuiteResult:
    """Run every configuration in ``configs`` and collect the results.

    Parameters
    ----------
    configs:
        Mapping from a label (e.g. ``"aergia"`` or ``"deadline=30"``) to the
        experiment configuration to run.
    progress:
        Optional callback invoked after each experiment with the label and
        its result — handy for long sweeps.
    """
    suite = SuiteResult()
    for label, config in configs.items():
        start = time.perf_counter()
        result = run_experiment(config)
        suite.results[label] = result
        suite.wall_seconds[label] = time.perf_counter() - start
        if progress is not None:
            progress(label, result)
    return suite
