"""Parallel sweep execution and on-disk result caching.

Every figure of the paper is regenerated from a batch of *independent*
:class:`repro.fl.config.ExperimentConfig` runs, which makes the sweeps
embarrassingly parallel: the simulation is driven entirely by virtual time
and every random stream is derived from ``config.seed``, so executing the
cells in worker processes produces byte-identical
:meth:`repro.fl.metrics.ExperimentResult.summary` rows to the serial path.

This module provides the three pieces the sweep infrastructure is built on:

``config_hash``
    A stable content hash of an :class:`ExperimentConfig` (canonical JSON of
    the dataclass fields), usable as a cache key across processes and runs.

``ResultCache``
    An on-disk cache mapping ``config_hash`` to a serialized
    :class:`ExperimentResult`, so re-running a figure skips cells that were
    already computed at the same configuration.

``run_configs_parallel`` / ``run_suite``
    A process-pool drop-in for :func:`repro.experiments.runner.run_configs`,
    and the policy-driven dispatcher the figure functions route through
    (configured by the CLI via :func:`configure`, or the ``REPRO_WORKERS``
    and ``REPRO_CACHE_DIR`` environment variables).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.experiments.runner import SuiteResult, run_configs
from repro.fl.config import ExperimentConfig, TransportConfig
from repro.fl.metrics import ExperimentResult, RoundRecord
from repro.fl.runtime import run_experiment

#: Bumped whenever the serialized result layout (or the semantics of a
#: config field) changes, so stale cache entries are never reused.
#: 2: ExperimentConfig grew DynamicsConfig + async-federation knobs and the
#:    round engine became dropout-tolerant.
#: (The client-materialization knobs — client_pool/pool_slots — are
#: excluded from hashing entirely, see MATERIALIZATION_FIELDS, so their
#: introduction required no format bump.)
CACHE_FORMAT = 2

#: Config fields describing *how* clients are materialized, not *what*
#: experiment runs.  Virtual and eager materialization produce bit-for-bit
#: identical results (pinned by tests/test_virtual_pool.py), so these
#: fields are not part of a configuration's identity: excluding them keeps
#: cache/store keys stable across the knobs and across their introduction
#: (pre-existing archives keep their keys).
MATERIALIZATION_FIELDS = ("client_pool", "pool_slots")

#: All config fields describing execution strategy rather than the
#: experiment itself.  ``checkpoint_interval`` joins the materialization
#: knobs: checkpointed and straight-through runs are bitwise identical
#: (pinned by tests/test_resume.py), so they must share cache and store
#: entries.  ``batched_execution`` likewise: the batched engine reproduces
#: the per-client path bitwise (pinned by tests/test_batched_engine.py).
#: ``shards`` joins too: sharded and single-process execution are bitwise
#: identical (pinned by tests/test_shard.py) — except under
#: ``shard_aggregate="partial"``, where :func:`canonical_config` re-adds it.
EXECUTION_FIELDS = MATERIALIZATION_FIELDS + (
    "checkpoint_interval",
    "batched_execution",
    "shards",
)


# ---------------------------------------------------------------------------
# Stable configuration hashing
# ---------------------------------------------------------------------------
def _canonical(value: object) -> object:
    """Normalise a config field value into a JSON-stable representation."""
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    return value


def canonical_config(config: ExperimentConfig) -> Dict[str, object]:
    """Canonical JSON-stable dict of a config's *result-relevant* fields.

    Drops :data:`EXECUTION_FIELDS` — execution-strategy knobs that cannot
    change results — so cache and store keys are shared across
    materialization modes and across checkpointed/straight-through runs.
    """
    canonical = _canonical(dataclasses.asdict(config))
    for field_name in EXECUTION_FIELDS:
        canonical.pop(field_name, None)
    # A null transport is bitwise identical to the historical network
    # (pinned by tests/test_golden_baselines.py), so it is dropped from the
    # canonical form: archives written before the field existed keep their
    # keys.  A non-null transport changes results and therefore the key.
    if canonical.get("transport") == _canonical(
        dataclasses.asdict(TransportConfig())
    ):
        canonical.pop("transport", None)
    # The exact shard-aggregation mode is bitwise identical to the flat
    # reduction, so (like the null transport) it is dropped and archives
    # written before the field existed keep their keys.  The partial mode
    # changes the float reduction order: it stays in the canonical form
    # *and* makes the shard topology result-relevant, so ``shards`` is
    # re-added alongside it.
    if canonical.get("shard_aggregate", "exact") == "exact":
        canonical.pop("shard_aggregate", None)
    else:
        canonical["shards"] = config.shards
    return canonical


def config_hash(config: ExperimentConfig) -> str:
    """A stable hex digest identifying an experiment configuration.

    The hash covers every result-relevant dataclass field (including the
    nested :class:`~repro.fl.config.ResourceConfig`) plus the cache format
    version, so two configs hash equal iff they describe the same
    experiment under the current result layout.
    """
    import repro

    # The package version is part of the key so a cache directory cannot
    # serve results computed by a different release of the simulation code.
    # Within a release, editing simulation internals still requires clearing
    # the cache (or bumping CACHE_FORMAT).
    canonical = canonical_config(config)
    # A config with dtype=None resolves to the process-wide compute dtype at
    # build time, so the *effective* dtype must be part of the key — otherwise
    # a REPRO_DTYPE=float64 run would be served float32 results cached earlier
    # (accuracy values differ across dtypes even though simulated times don't).
    from repro.nn.dtype import resolve_dtype

    canonical["dtype"] = resolve_dtype(config.dtype).name
    payload = {
        "format": CACHE_FORMAT,
        "version": repro.__version__,
        "config": canonical,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Result (de)serialization — everything in ExperimentResult is JSON-native
# ---------------------------------------------------------------------------
def _result_to_payload(result: ExperimentResult) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "algorithm": result.algorithm,
        "dataset": result.dataset,
        "config": result.config,
        "setup_time": result.setup_time,
        "rounds": [dataclasses.asdict(record) for record in result.rounds],
    }
    if result.network:
        payload["network"] = dict(result.network)
    return payload


def _result_from_payload(payload: Mapping[str, object]) -> ExperimentResult:
    return ExperimentResult(
        algorithm=str(payload["algorithm"]),
        dataset=str(payload["dataset"]),
        config=dict(payload["config"]),  # type: ignore[arg-type]
        setup_time=float(payload["setup_time"]),  # type: ignore[arg-type]
        rounds=[RoundRecord(**record) for record in payload["rounds"]],  # type: ignore[union-attr]
        network=dict(payload.get("network", {})),  # type: ignore[arg-type]
    )


class ResultCache:
    """On-disk experiment-result cache keyed by :func:`config_hash`.

    Entries are single JSON files written atomically (temp file + rename),
    so concurrent sweeps sharing a cache directory never observe partial
    writes.  Corrupt or format-incompatible entries are treated as misses.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, config: ExperimentConfig) -> Optional[Tuple[ExperimentResult, float]]:
        """The cached ``(result, original_wall_seconds)``, or ``None`` on a miss."""
        path = self._path(config_hash(config))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            return None
        try:
            result = _result_from_payload(payload["result"])
            wall = float(payload.get("wall_seconds", 0.0))
        except (KeyError, TypeError, ValueError):
            return None
        return result, wall

    def put(self, config: ExperimentConfig, result: ExperimentResult, wall_seconds: float) -> None:
        key = config_hash(config)
        payload = {
            "format": CACHE_FORMAT,
            "config_hash": key,
            "config": _canonical(dataclasses.asdict(config)),
            "wall_seconds": float(wall_seconds),
            "result": _result_to_payload(result),
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))


# ---------------------------------------------------------------------------
# Process-pool sweep runner
# ---------------------------------------------------------------------------
def _execute_labelled(item: Tuple[str, ExperimentConfig]) -> Tuple[str, ExperimentResult, float]:
    """Worker entry point: run one experiment, timing its wall clock.

    Must stay a module-level function so it pickles for the process pool.
    """
    label, config = item
    start = time.perf_counter()
    result = run_experiment(config)
    return label, result, time.perf_counter() - start


def _worker_init(package_parent: str) -> None:
    """Make ``repro`` importable in pool workers under the spawn start method.

    Under fork the child inherits the parent's ``sys.path``, but spawned
    workers (the default on macOS/Windows) start fresh — if the package is
    only importable through an in-process ``sys.path`` tweak (as the test
    and benchmark conftests do), unpickling the task would fail with
    ``ModuleNotFoundError`` without this.  Plugin modules are re-imported
    for the same reason: a spawned worker's registries start empty, so a
    ``REPRO_PLUGINS``-registered algorithm must be registered again before
    the worker's ``federator_class`` lookup.
    """
    import sys

    if package_parent not in sys.path:
        sys.path.insert(0, package_parent)
    from repro.registry import load_plugins

    load_plugins()


def default_workers() -> int:
    """The worker count used when none is requested: one per CPU."""
    return max(1, os.cpu_count() or 1)


def _workers_from_env() -> Optional[int]:
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None


def resolve_workers(requested: Optional[int] = None) -> int:
    """Worker-count precedence: explicit request > ``REPRO_WORKERS`` > one per CPU."""
    if requested is None:
        requested = _workers_from_env()
    if requested is None:
        requested = default_workers()
    return max(1, int(requested))


def run_configs_parallel(
    configs: Mapping[str, ExperimentConfig],
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Callable[[str, ExperimentResult], None]] = None,
) -> SuiteResult:
    """Run a sweep across a process pool, with optional result caching.

    Drop-in replacement for :func:`repro.experiments.runner.run_configs`:
    the returned :class:`SuiteResult` keeps the input label order and its
    per-label summaries are identical to the serial path, because each
    experiment derives all randomness from its own config.

    Parameters
    ----------
    configs:
        Mapping from label to the experiment configuration to run.
    workers:
        Process count.  ``None`` means one per CPU; ``1`` degenerates to
        in-process execution (still honouring the cache).
    cache_dir:
        When given, results are cached on disk keyed by
        :func:`config_hash`; already-computed cells are loaded instead of
        re-executed and recorded in ``SuiteResult.cache_hits``.
    progress:
        Callback invoked with ``(label, result)`` as each cell finishes.
        Unlike the serial runner this fires in *completion* order.
    """
    # Pin the effective compute dtype into every config before hashing or
    # shipping it to a worker: a worker process resolves dtype=None from its
    # *own* environment (fresh module state under the spawn start method), so
    # an explicit set_compute_dtype() in the parent would otherwise hash one
    # dtype and execute another.
    from repro.nn.dtype import resolve_dtype

    configs = {
        label: config
        if config.dtype is not None
        else config.with_overrides(dtype=resolve_dtype(None).name)
        for label, config in configs.items()
    }
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    suite = SuiteResult()
    pending: List[Tuple[str, ExperimentConfig]] = []

    results: Dict[str, ExperimentResult] = {}
    walls: Dict[str, float] = {}

    for label, config in configs.items():
        cached = cache.get(config) if cache is not None else None
        if cached is not None:
            result, _ = cached
            results[label] = result
            # Hits count as zero compute for this run; the original wall
            # time lives in the cache entry (second element of `cached`).
            walls[label] = 0.0
            suite.cache_hits.append(label)
            if progress is not None:
                progress(label, result)
        else:
            pending.append((label, config))

    workers = default_workers() if workers is None else max(1, int(workers))
    config_by_label = dict(configs)
    if pending:
        if workers == 1 or len(pending) == 1:
            for item in pending:
                label, result, wall = _execute_labelled(item)
                results[label] = result
                walls[label] = wall
                if cache is not None:
                    cache.put(config_by_label[label], result, wall)
                if progress is not None:
                    progress(label, result)
        else:
            package_parent = str(Path(__file__).resolve().parents[2])
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=_worker_init,
                initargs=(package_parent,),
            ) as pool:
                futures = {pool.submit(_execute_labelled, item) for item in pending}
                while futures:
                    done, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        label, result, wall = future.result()
                        results[label] = result
                        walls[label] = wall
                        if cache is not None:
                            cache.put(config_by_label[label], result, wall)
                        if progress is not None:
                            progress(label, result)

    # Preserve the caller's label order regardless of completion order.
    for label in configs:
        suite.results[label] = results[label]
        suite.wall_seconds[label] = walls[label]
    return suite


# ---------------------------------------------------------------------------
# Execution policy: how the figure functions route their sweeps
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class ExecutionPolicy:
    """How :func:`run_suite` executes a batch of configurations."""

    workers: int = 1
    cache_dir: Optional[Path] = None

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1 and self.cache_dir is None


def _policy_from_env() -> ExecutionPolicy:
    workers = _workers_from_env()
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    return ExecutionPolicy(
        workers=1 if workers is None else max(1, workers),
        cache_dir=Path(cache_dir) if cache_dir else None,
    )


_active_policy: Optional[ExecutionPolicy] = None


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> ExecutionPolicy:
    """Set the process-wide execution policy used by :func:`run_suite`.

    The CLI calls this from its ``--workers`` / ``--cache-dir`` flags.  An
    argument left as ``None`` falls back to the corresponding environment
    variable (``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``) before the built-in
    default, so flags refine rather than clobber the environment.
    """
    global _active_policy
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    _active_policy = ExecutionPolicy(
        workers=resolve_workers(workers),
        cache_dir=Path(cache_dir) if cache_dir else None,
    )
    return _active_policy


def reset_policy() -> None:
    """Drop any configured policy (tests; falls back to the environment)."""
    global _active_policy
    _active_policy = None


def active_policy() -> ExecutionPolicy:
    """The configured policy, or one derived from the environment."""
    if _active_policy is not None:
        return _active_policy
    return _policy_from_env()


def run_suite(
    configs: Mapping[str, ExperimentConfig],
    progress: Optional[Callable[[str, ExperimentResult], None]] = None,
) -> SuiteResult:
    """Run a sweep through the active execution policy.

    This is the seam every figure function routes through: serial by
    default (bit-for-bit the historical behaviour), parallel and/or cached
    when the CLI or environment configured it.
    """
    policy = active_policy()
    if policy.is_serial:
        return run_configs(configs, progress=progress)
    return run_configs_parallel(
        configs,
        workers=policy.workers,
        cache_dir=policy.cache_dir,
        progress=progress,
    )
