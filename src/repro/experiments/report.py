"""Plain-text report rendering, including Table 1 of the paper.

The benchmark harness prints these renderings so that the regenerated
numbers can be compared side by side with the paper's figures (the
comparison itself is recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a simple aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def table1_comparison() -> Dict[str, Dict[str, str]]:
    """Table 1: qualitative comparison of FL solutions for heterogeneity.

    The entries mirror the paper's table: how aware each algorithm is of
    data heterogeneity and resource heterogeneity, and whether it actively
    minimises the training time.  The reproduction's benchmark
    (`benchmarks/bench_table1_comparison.py`) additionally verifies the
    behavioural claims that are measurable (e.g. only TiFL and Aergia react
    to resource heterogeneity; only Aergia reduces the round time without
    dropping accuracy).
    """
    return {
        "FedAvg": {
            "data_heterogeneity": "-",
            "resource_heterogeneity": "-",
            "minimizes_training_time": "no",
        },
        "FedProx": {
            "data_heterogeneity": "+",
            "resource_heterogeneity": "-",
            "minimizes_training_time": "no",
        },
        "FedNova": {
            "data_heterogeneity": "+",
            "resource_heterogeneity": "-",
            "minimizes_training_time": "no",
        },
        "TiFL": {
            "data_heterogeneity": "+",
            "resource_heterogeneity": "+",
            "minimizes_training_time": "yes",
        },
        "Aergia": {
            "data_heterogeneity": "++",
            "resource_heterogeneity": "++",
            "minimizes_training_time": "yes",
        },
    }


def render_table1() -> str:
    """Text rendering of Table 1."""
    table = table1_comparison()
    rows = [
        [
            name,
            entry["data_heterogeneity"],
            entry["resource_heterogeneity"],
            entry["minimizes_training_time"],
        ]
        for name, entry in table.items()
    ]
    return format_table(
        headers=["Algorithm", "Data het. aware", "Resource het. aware", "Minimizes training time"],
        rows=rows,
        title="Table 1. FL solutions for heterogeneous settings",
    )


def render_summaries(summaries: Mapping[str, Mapping[str, float]], title: str = "") -> str:
    """Render per-label experiment summaries as a table."""
    headers = ["label", "final_accuracy", "total_time_s", "mean_round_duration_s", "total_offloads", "total_dropped"]
    rows = [
        [
            label,
            float(summary["final_accuracy"]),
            float(summary["total_time_s"]),
            float(summary["mean_round_duration_s"]),
            float(summary["total_offloads"]),
            float(summary["total_dropped"]),
        ]
        for label, summary in summaries.items()
    ]
    return format_table(headers, rows, title=title)


def render_network_counters(
    summaries: Mapping[str, Mapping[str, float]], title: str = ""
) -> str:
    """Render the per-label network/transport counters (``net_*`` summary keys).

    Returns an empty string when no summary carries network counters (runs
    recorded before the counters existed), so callers can print the result
    unconditionally.
    """
    keys: List[str] = sorted(
        {key for summary in summaries.values() for key in summary if key.startswith("net_")}
    )
    if not keys:
        return ""
    headers = ["label", *(key[len("net_"):] for key in keys)]
    rows = [
        [label, *(float(summary.get(key, 0.0)) for key in keys)]
        for label, summary in summaries.items()
    ]
    return format_table(headers, rows, title=title, float_format="{:.0f}")
