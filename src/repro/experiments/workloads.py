"""Workload definitions shared by the figure-regeneration functions.

The paper's evaluation uses 24 clients, 100 communication rounds and the
full MNIST/FMNIST/Cifar-10 datasets on a multi-core testbed.  A pure-numpy
reproduction cannot run that volume in CI, so every experiment is
parameterised by a :class:`ScaleProfile`: ``"smoke"`` (seconds, used by the
test-suite), ``"bench"`` (the default for the benchmark harness, a couple
of minutes for the full suite) and ``"full"`` (closest to the paper;
hours).  The *relative* comparisons the paper makes — which algorithm is
faster, by roughly what factor, how accuracy responds to non-IIDness — are
preserved at every scale because they derive from the same heterogeneity
structure.

Select a scale globally with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.fl.config import DynamicsConfig, ExperimentConfig, ResourceConfig, TransportConfig
from repro.registry import (
    DATASETS,
    SCALE_PROFILES,
    SCENARIOS,
    RegistryView,
    register_scale,
    register_scenario,
)


@dataclass(frozen=True)
class ScaleProfile:
    """Workload sizes for one reproduction scale.

    Validated at construction (i.e. at registration time for built-in and
    third-party profiles alike): a profile that selects more clients per
    round than its cohort holds is rejected here instead of being silently
    clamped when a config is resolved from it.  The cifar fractions shrink
    the cohort *proportionally*, so a valid profile stays valid after the
    rounding in :func:`evaluation_config`.
    """

    name: str
    num_clients: int
    clients_per_round: int
    rounds: int
    local_updates: int
    profile_batches: int
    train_size: int
    test_size: int
    batch_size: int
    cifar_client_fraction: float = 0.75
    cifar_round_fraction: float = 0.75

    def __post_init__(self) -> None:
        for field_name in (
            "num_clients",
            "clients_per_round",
            "rounds",
            "local_updates",
            "train_size",
            "test_size",
            "batch_size",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"scale profile {self.name!r}: {field_name} must be >= 1")
        if self.profile_batches < 0:
            raise ValueError(f"scale profile {self.name!r}: profile_batches cannot be negative")
        if self.clients_per_round > self.num_clients:
            raise ValueError(
                f"scale profile {self.name!r}: clients_per_round "
                f"({self.clients_per_round}) exceeds num_clients ({self.num_clients})"
            )
        if not 0 < self.cifar_client_fraction <= 1 or not 0 < self.cifar_round_fraction <= 1:
            raise ValueError(
                f"scale profile {self.name!r}: cifar fractions must be in (0, 1]"
            )

    @property
    def is_partial_participation(self) -> bool:
        """Whether rounds select a strict subset of the cohort."""
        return self.clients_per_round < self.num_clients


register_scale(
    "smoke",
    ScaleProfile(
        name="smoke",
        num_clients=4,
        clients_per_round=4,
        rounds=2,
        local_updates=6,
        profile_batches=2,
        train_size=400,
        test_size=120,
        batch_size=16,
    ),
)
register_scale(
    "bench",
    ScaleProfile(
        name="bench",
        num_clients=8,
        clients_per_round=8,
        rounds=4,
        local_updates=8,
        profile_batches=2,
        train_size=960,
        test_size=240,
        batch_size=16,
        cifar_client_fraction=0.75,
        cifar_round_fraction=0.5,
    ),
)
register_scale(
    "full",
    ScaleProfile(
        name="full",
        num_clients=24,
        clients_per_round=24,
        rounds=100,
        local_updates=64,
        profile_batches=8,
        train_size=12000,
        test_size=2000,
        batch_size=32,
    ),
)
# Large-cohort profiles: partial participation over a virtualized client
# pool (memory tracks the 32/64 hydrated participants, not the cohort —
# see docs/architecture.md "Client virtualization").
register_scale(
    "city",
    ScaleProfile(
        name="city",
        num_clients=1000,
        clients_per_round=32,
        rounds=6,
        local_updates=4,
        profile_batches=2,
        train_size=8000,
        test_size=400,
        batch_size=16,
    ),
    description="city-sized cohort (1k clients, 32 per round, virtualized pool)",
)
register_scale(
    "metro",
    ScaleProfile(
        name="metro",
        num_clients=5000,
        clients_per_round=64,
        rounds=4,
        local_updates=4,
        profile_batches=2,
        train_size=20000,
        test_size=400,
        batch_size=16,
    ),
    description="metro-sized cohort (5k clients, 64 per round, virtualized pool)",
)
# The sharded compute plane's flagship: one training sample per client
# (iid array_split over a 100k-sample synthetic set keeps every shard
# batch uniform), 128 participants per round dispatched to the shard
# workers (``--shards``); per-worker RSS stays bounded because workers
# receive only the participants' slices, never the cohort.
register_scale(
    "continent",
    ScaleProfile(
        name="continent",
        num_clients=100_000,
        clients_per_round=128,
        rounds=3,
        local_updates=2,
        profile_batches=1,
        train_size=100_000,
        test_size=500,
        batch_size=4,
    ),
    description="continent-sized cohort (100k clients, 128 per round, sharded workers)",
)

#: Dict-like facade over the scale registry, kept for the historical
#: ``SCALES[name]`` call sites; :data:`repro.registry.SCALE_PROFILES` is the
#: source of truth (third-party scales registered there appear here too).
SCALES: Mapping[str, ScaleProfile] = RegistryView(SCALE_PROFILES)


def scale_from_env(default: str = "bench") -> ScaleProfile:
    """Resolve the active scale from the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    if name not in SCALES:
        raise ValueError(f"unknown REPRO_SCALE {name!r}; valid: {sorted(SCALES)}")
    return SCALES[name]


def baseline_algorithms() -> Tuple[str, ...]:
    """The five algorithms compared in Figures 6 and 7."""
    return ("fedavg", "fedprox", "fednova", "tifl", "aergia")


# ---------------------------------------------------------------------------
# Named scenarios: time-varying cluster behaviour at a chosen scale
# ---------------------------------------------------------------------------
#: Reference dynamics time unit: roughly one smoke-scale training round.
#: Scenario time constants below are expressed in these units and stretched
#: proportionally to the scale profile's per-round client work, so "a churn
#: cycle every couple of rounds" means the same thing at every scale.
_SMOKE_ROUND_WORK = SCALES["smoke"].local_updates * SCALES["smoke"].batch_size


# Each builder maps a time-stretch factor to the scenario's DynamicsConfig;
# registration goes through repro.registry.SCENARIOS, where the one-line
# descriptions shown by `repro list` live.  Third-party scenarios plug in
# the same way via @register_scenario("name", description="...").
@register_scenario("stable")
def _stable_scenario(f: float) -> DynamicsConfig:
    return DynamicsConfig(scenario="stable")


@register_scenario("churn")
def _churn_scenario(f: float) -> DynamicsConfig:
    return DynamicsConfig(
        scenario="churn",
        churn=True,
        mean_online_s=2.5 * f,
        mean_offline_s=0.8 * f,
        min_online_clients=1,
        first_event_s=0.3 * f,
        client_timeout_s=8.0 * f,
    )


@register_scenario("flaky-network")
def _flaky_network_scenario(f: float) -> DynamicsConfig:
    return DynamicsConfig(
        scenario="flaky-network",
        bandwidth_rate_per_s=2.0 / f,
        bandwidth_low_factor=0.02,
        bandwidth_high_factor=0.6,
        mean_bandwidth_hold_s=1.0 * f,
        first_event_s=0.1 * f,
    )


@register_scenario("straggler-burst")
def _straggler_burst_scenario(f: float) -> DynamicsConfig:
    return DynamicsConfig(
        scenario="straggler-burst",
        slowdown_rate_per_s=1.5 / f,
        slowdown_factor=5.0,
        mean_slowdown_s=1.5 * f,
        first_event_s=0.1 * f,
    )


@register_scenario("mega-churn")
def _mega_churn_scenario(f: float) -> DynamicsConfig:
    return DynamicsConfig(
        scenario="mega-churn",
        churn=True,
        mean_online_s=1.2 * f,
        mean_offline_s=1.0 * f,
        min_online_clients=1,
        first_event_s=0.2 * f,
        client_timeout_s=5.0 * f,
        slowdown_rate_per_s=1.0 / f,
        slowdown_factor=4.0,
        mean_slowdown_s=1.0 * f,
        bandwidth_rate_per_s=1.0 / f,
        bandwidth_low_factor=0.05,
        bandwidth_high_factor=0.8,
        mean_bandwidth_hold_s=1.0 * f,
    )


# Transport-fault scenarios: the builder still returns the DynamicsConfig
# (loss bursts, churn, the client-timeout backstop); the TransportConfig
# knobs ride on the registration metadata and are resolved by
# :func:`scenario_transport`, with time-like knobs stretched like the
# dynamics time constants.
@register_scenario(
    "lossy",
    description="drop/duplicate/reorder/corrupt faults on every link, "
    "recovered by the reliable-delivery middleware (ACK + retransmit)",
    transport={
        "drop_rate": 0.15,
        "duplicate_rate": 0.05,
        "reorder_rate": 0.1,
        "reorder_max_delay_s": 0.05,
        "corrupt_rate": 0.02,
        "reliable": True,
        "ack_timeout_s": 0.35,
        "max_attempts": 4,
    },
)
def _lossy_scenario(f: float) -> DynamicsConfig:
    # The per-client timeout is the belt-and-braces bound: transport expiry
    # (ack_timeout_s * (1 + 2 + 4 + 8) * jitter, ~6f worst case) normally
    # degrades the round first, so no round ever hangs past it.
    return DynamicsConfig(scenario="lossy", client_timeout_s=8.0 * f)


@register_scenario(
    "lossy-churn",
    description="lossy links and churning clients at once: retransmissions "
    "race disconnects, expired sends degrade the round",
    transport={
        "drop_rate": 0.12,
        "duplicate_rate": 0.05,
        "reorder_rate": 0.08,
        "reorder_max_delay_s": 0.05,
        "corrupt_rate": 0.02,
        "reliable": True,
        "ack_timeout_s": 0.35,
        "max_attempts": 4,
    },
)
def _lossy_churn_scenario(f: float) -> DynamicsConfig:
    return DynamicsConfig(
        scenario="lossy-churn",
        churn=True,
        mean_online_s=2.5 * f,
        mean_offline_s=0.8 * f,
        min_online_clients=1,
        first_event_s=0.3 * f,
        client_timeout_s=8.0 * f,
    )


@register_scenario(
    "partition-storm",
    description="random client links collapse to 90% loss in bursts; "
    "rounds finalize on a 3/4 quorum instead of waiting out the partition",
    transport={
        "drop_rate": 0.05,
        "duplicate_rate": 0.03,
        "reliable": True,
        "ack_timeout_s": 0.35,
        "max_attempts": 4,
        "quorum_fraction": 0.75,
    },
)
def _partition_storm_scenario(f: float) -> DynamicsConfig:
    return DynamicsConfig(
        scenario="partition-storm",
        loss_burst_rate_per_s=1.5 / f,
        loss_burst_drop_rate=0.9,
        mean_loss_burst_s=1.2 * f,
        first_event_s=0.1 * f,
        client_timeout_s=8.0 * f,
    )


def available_scenarios() -> Tuple[str, ...]:
    """All registered scenarios, sorted (with ``stable`` first)."""
    names = sorted(name for name in SCENARIOS.names() if name != "stable")
    return ("stable", *names) if "stable" in SCENARIOS else tuple(names)


def scenario_description(name: str) -> str:
    """One-line description of a named scenario (used by ``repro list``)."""
    return SCENARIOS.describe(name)


def scenario_dynamics(name: str, scale: Optional[ScaleProfile] = None) -> DynamicsConfig:
    """Build the :class:`DynamicsConfig` behind a named scenario.

    Time constants stretch with the scale profile's per-round client work
    (``local_updates x batch_size``) so that, relative to a round, the
    dynamics are equally aggressive at every scale.
    """
    builder = SCENARIOS.get(name)
    stretch = 1.0
    if scale is not None:
        stretch = (scale.local_updates * scale.batch_size) / _SMOKE_ROUND_WORK
    return builder(stretch)


#: TransportConfig knobs that are virtual-time durations (stretched with
#: the scale profile, like the dynamics time constants).
_TRANSPORT_TIME_KNOBS = ("ack_timeout_s", "reorder_max_delay_s")


def scenario_transport(name: str, scale: Optional[ScaleProfile] = None) -> TransportConfig:
    """The :class:`TransportConfig` a named scenario implies.

    Scenarios attach their transport knobs as ``transport={...}``
    registration metadata; scenarios without it (all the pre-transport
    ones) resolve to the null config.  Time-like knobs stretch with the
    scale profile exactly like :func:`scenario_dynamics` time constants.
    """
    SCENARIOS.get(name)  # import the provider so metadata is complete
    knobs = SCENARIOS.entry(name).metadata.get("transport")
    if not knobs:
        return TransportConfig()
    knobs = dict(knobs)
    stretch = 1.0
    if scale is not None:
        stretch = (scale.local_updates * scale.batch_size) / _SMOKE_ROUND_WORK
    for knob in _TRANSPORT_TIME_KNOBS:
        if knob in knobs:
            knobs[knob] = knobs[knob] * stretch
    return TransportConfig(**knobs)


def known_datasets() -> Tuple[str, ...]:
    """Datasets the evaluation harness has a default architecture for."""
    return tuple(
        entry.name for entry in DATASETS.entries() if "architecture" in entry.metadata
    )


def architecture_for(dataset: str) -> str:
    """The network the paper pairs with each dataset (§5.1 "Networks").

    Derived from the ``architecture`` metadata attached when the dataset was
    registered (:func:`repro.registry.register_dataset`).
    """
    if dataset in DATASETS:
        architecture = DATASETS.entry(dataset).metadata.get("architecture")
        if architecture:
            return str(architecture)
    raise KeyError(f"no default architecture for dataset {dataset!r}")


def evaluation_config(
    dataset: str,
    algorithm: str,
    partition: str,
    scale: ScaleProfile,
    seed: int = 42,
    classes_per_client: int = 3,
    scenario: Optional[str] = None,
    **overrides,
) -> ExperimentConfig:
    """The per-figure building block: one algorithm on one dataset.

    Cifar-10 is substantially more expensive than the 28x28 datasets, so the
    scale profile shrinks its client count and round count by the configured
    fractions, exactly like the paper uses fewer rounds of the heavier
    workloads' wall-clock budget.

    ``scenario`` selects a named dynamics scenario (``"stable"``,
    ``"churn"``, ...) with time constants stretched to the scale profile;
    an explicit ``dynamics=...`` override takes precedence.
    """
    num_clients = scale.num_clients
    clients_per_round = scale.clients_per_round
    rounds = scale.rounds
    local_updates = scale.local_updates
    train_size = scale.train_size
    if dataset.startswith("cifar"):
        num_clients = max(3, int(round(num_clients * scale.cifar_client_fraction)))
        clients_per_round = min(clients_per_round, num_clients)
        rounds = max(2, int(round(rounds * scale.cifar_round_fraction)))
        local_updates = max(4, int(round(local_updates * scale.cifar_round_fraction)))
        train_size = max(240, int(round(train_size * scale.cifar_client_fraction * 0.5)))

    config = ExperimentConfig(
        dataset=dataset,
        architecture=architecture_for(dataset),
        algorithm=algorithm,
        partition=partition,
        classes_per_client=classes_per_client,
        num_clients=num_clients,
        clients_per_round=min(clients_per_round, num_clients),
        rounds=rounds,
        local_updates=local_updates,
        profile_batches=scale.profile_batches,
        train_size=train_size,
        test_size=scale.test_size,
        batch_size=scale.batch_size,
        resources=ResourceConfig(scheme="uniform", low=0.1, high=1.0),
        dynamics=scenario_dynamics(scenario if scenario is not None else "stable", scale),
        transport=scenario_transport(scenario if scenario is not None else "stable", scale),
        seed=seed,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config


def motivation_deadline_config(
    deadline_seconds: float | None,
    scale: ScaleProfile,
    partition: str = "noniid",
    seed: int = 42,
) -> ExperimentConfig:
    """Configuration behind Figures 1(b) and 1(c): MNIST with round deadlines.

    The compute rate is slowed down (relative to the evaluation configs) so
    that an unconstrained round lasts on the order of the paper's tens of
    seconds, making the paper's absolute deadline values (70/50/30/10 s)
    directly meaningful in virtual time.
    """
    return ExperimentConfig(
        dataset="mnist",
        architecture="mnist-cnn",
        algorithm="deadline",
        partition=partition,
        classes_per_client=3,
        num_clients=scale.num_clients,
        clients_per_round=scale.num_clients,
        rounds=max(3, scale.rounds),
        local_updates=scale.local_updates,
        profile_batches=0,
        train_size=scale.train_size,
        test_size=scale.test_size,
        batch_size=scale.batch_size,
        deadline_seconds=deadline_seconds,
        resources=ResourceConfig(
            scheme="uniform", low=0.1, high=1.0, base_flops_per_second=8.0e7
        ),
        seed=seed,
    )


def heterogeneity_config(
    num_clients: int,
    variance: float,
    scale: ScaleProfile,
    seed: int = 42,
) -> ExperimentConfig:
    """Configuration behind Figure 1(a): CPU-variance sweep on MNIST/FedAvg."""
    return ExperimentConfig(
        dataset="mnist",
        architecture="mnist-cnn",
        algorithm="fedavg",
        partition="iid",
        num_clients=num_clients,
        clients_per_round=num_clients,
        rounds=max(2, scale.rounds // 2),
        local_updates=scale.local_updates,
        profile_batches=0,
        train_size=max(scale.train_size // 2, 200),
        test_size=max(scale.test_size // 2, 80),
        batch_size=scale.batch_size,
        resources=ResourceConfig(scheme="variance", mean=0.5, variance=variance),
        seed=seed,
    )


def similarity_factor_config(
    factor: float,
    scale: ScaleProfile,
    seed: int = 42,
) -> ExperimentConfig:
    """Configuration behind Figure 9: FMNIST, non-IID, subset selection."""
    clients_per_round = max(3, scale.num_clients // 2)
    return evaluation_config(
        dataset="fmnist",
        algorithm="aergia",
        partition="noniid",
        scale=scale,
        seed=seed,
        aergia_similarity_factor=factor,
        clients_per_round=clients_per_round,
    )


def noniid_degree_configs(scale: ScaleProfile, seed: int = 42) -> List[Tuple[str, ExperimentConfig]]:
    """Configurations behind Figure 10: IID and non-IID(10/5/2) on FMNIST."""
    configs: List[Tuple[str, ExperimentConfig]] = [
        ("IID", evaluation_config("fmnist", "aergia", "iid", scale, seed=seed)),
    ]
    for classes in (10, 5, 2):
        configs.append(
            (
                f"non-IID({classes})",
                evaluation_config(
                    "fmnist",
                    "aergia",
                    "noniid",
                    scale,
                    seed=seed,
                    classes_per_client=classes,
                ),
            )
        )
    return configs
