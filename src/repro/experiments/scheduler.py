"""Budget-aware sweep scheduling with an explicit per-cell state machine.

:func:`repro.api.sweep` runs every cell unconditionally; the
:class:`SweepScheduler` adds the operational layer a long campaign needs:

* every cell moves through an explicit state machine
  (``pending -> running -> complete | failed``, plus the terminal
  ``budget_exceeded`` for cells the budget never let start) and illegal
  transitions raise — the scheduler cannot silently lose a cell;
* a :class:`BudgetTracker` bounds the campaign by wall-clock seconds
  and/or executed cell count.  The budget is checked *before* each cell,
  never mid-cell: a running cell always finishes (checkpointing makes a
  killed one resumable anyway), and once the budget is exhausted every
  remaining pending cell is marked ``budget_exceeded`` — never
  ``failed``, so a later ``--resume`` invocation picks them up;
* cells already complete in the :class:`~repro.api.store.RunStore` are
  served from disk before the budget starts ticking, and a crashed cell
  with a checkpoint resumes instead of recomputing (``resume=True``);
* a cell that raises is marked ``failed`` and the sweep *continues* —
  one bad configuration does not abort the campaign.

The executor is injectable (``executor(label, config) -> (result,
wall_seconds)``) so the state machine is testable with fake clocks and
scripted failures; the default executor routes through
:func:`repro.api.run` with the scheduler's ``resume`` and
``checkpoint_interval`` settings applied.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.fl.config import ExperimentConfig
from repro.fl.metrics import ExperimentResult


class CellState:
    """The sweep cell states (plain strings, JSON/manifest friendly)."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETE = "complete"
    FAILED = "failed"
    BUDGET_EXCEEDED = "budget_exceeded"

    ALL = (PENDING, RUNNING, COMPLETE, FAILED, BUDGET_EXCEEDED)


#: The only legal state transitions.  ``pending -> complete`` is the
#: store-hit shortcut (the cell never ran here); the three terminal states
#: have no outgoing edges — a finished cell's verdict never changes within
#: one scheduler run (a *new* run re-plans failed/budget_exceeded cells as
#: pending again).
LEGAL_TRANSITIONS: Dict[str, frozenset] = {
    CellState.PENDING: frozenset(
        {CellState.RUNNING, CellState.COMPLETE, CellState.BUDGET_EXCEEDED}
    ),
    CellState.RUNNING: frozenset({CellState.COMPLETE, CellState.FAILED}),
    CellState.COMPLETE: frozenset(),
    CellState.FAILED: frozenset(),
    CellState.BUDGET_EXCEEDED: frozenset(),
}


class IllegalTransition(RuntimeError):
    """A sweep cell was asked to make a transition the machine forbids."""


class BudgetTracker:
    """Wall-clock and cell-count budget for one sweep campaign.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    With neither limit set the tracker never exhausts.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_cells: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if wall_seconds is not None and wall_seconds < 0:
            raise ValueError("wall_seconds budget must be non-negative")
        if max_cells is not None and max_cells < 0:
            raise ValueError("max_cells budget must be non-negative")
        self.wall_seconds = wall_seconds
        self.max_cells = max_cells
        self._clock = clock
        self._started: Optional[float] = None
        self.cells_executed = 0

    @property
    def limited(self) -> bool:
        return self.wall_seconds is not None or self.max_cells is not None

    def start(self) -> None:
        if self._started is None:
            self._started = self._clock()

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def note_cell(self) -> None:
        """Record one executed (not store-served) cell."""
        self.cells_executed += 1

    def exhausted(self) -> bool:
        if self.wall_seconds is not None and self.elapsed() >= self.wall_seconds:
            return True
        if self.max_cells is not None and self.cells_executed >= self.max_cells:
            return True
        return False


class SweepScheduler:
    """Serial budget-aware scheduler over labelled experiment configs.

    After :meth:`run`, inspect ``states`` (label -> :class:`CellState`
    value), ``errors`` (label -> exception, for failed cells),
    ``store_hits``, and the returned handle.
    """

    def __init__(
        self,
        configs: Mapping[str, ExperimentConfig],
        *,
        store=None,
        budget: Optional[BudgetTracker] = None,
        resume: bool = False,
        checkpoint_interval: Optional[int] = None,
        executor: Optional[
            Callable[[str, ExperimentConfig], Tuple[ExperimentResult, float]]
        ] = None,
        progress: Optional[Callable[[str, ExperimentResult], None]] = None,
    ) -> None:
        self.configs: Dict[str, ExperimentConfig] = dict(configs)
        self.store = store
        self.budget = budget if budget is not None else BudgetTracker()
        self.resume = resume
        self.checkpoint_interval = checkpoint_interval
        self._executor = executor if executor is not None else self._default_executor
        self.progress = progress

        self.states: Dict[str, str] = {
            label: CellState.PENDING for label in self.configs
        }
        self.results: Dict[str, ExperimentResult] = {}
        self.wall_seconds: Dict[str, float] = {}
        self.errors: Dict[str, BaseException] = {}
        self.store_hits: List[str] = []

    # ------------------------------------------------------------ state machine
    def transition(self, label: str, new_state: str) -> None:
        old_state = self.states[label]
        if new_state not in LEGAL_TRANSITIONS[old_state]:
            raise IllegalTransition(
                f"cell {label!r}: illegal transition {old_state!r} -> {new_state!r}"
            )
        self.states[label] = new_state

    # --------------------------------------------------------------- execution
    def _default_executor(
        self, label: str, config: ExperimentConfig
    ) -> Tuple[ExperimentResult, float]:
        from repro.api.handles import run

        if self.checkpoint_interval is not None and config.checkpoint_interval is None:
            # checkpoint_interval is an execution field: the override keeps
            # the run key (and thus the store identity) unchanged.
            config = config.with_overrides(checkpoint_interval=self.checkpoint_interval)
        handle = run(config, store=self.store, label=label, resume=self.resume)
        result = handle.result()
        return result, handle.wall_seconds

    def run(self):
        """Execute the campaign; returns a :class:`repro.api.SweepHandle`."""
        from repro.api.handles import SweepHandle
        from repro.experiments.runner import SuiteResult

        # Store-complete cells are free: served before the budget starts,
        # and never counted against it.
        if self.store is not None:
            for label, config in self.configs.items():
                stored = self.store.get(config)
                if stored is None:
                    continue
                result = stored.load_result()
                self.results[label] = result
                self.wall_seconds[label] = 0.0
                self.store_hits.append(label)
                self.transition(label, CellState.COMPLETE)
                if self.progress is not None:
                    self.progress(label, result)

        self.budget.start()
        for label, config in self.configs.items():
            if self.states[label] != CellState.PENDING:
                continue
            if self.budget.exhausted():
                self.transition(label, CellState.BUDGET_EXCEEDED)
                continue
            self.transition(label, CellState.RUNNING)
            try:
                result, wall = self._executor(label, config)
            except Exception as exc:
                self.errors[label] = exc
                self.transition(label, CellState.FAILED)
                continue
            self.budget.note_cell()
            self.results[label] = result
            self.wall_seconds[label] = wall
            self.transition(label, CellState.COMPLETE)
            if self.progress is not None:
                self.progress(label, result)

        suite = SuiteResult()
        for label in self.configs:
            if label in self.results:
                suite.results[label] = self.results[label]
                suite.wall_seconds[label] = self.wall_seconds[label]
        handle = SweepHandle(suite, store=self.store, store_hits=self.store_hits)
        handle.states = dict(self.states)
        handle.errors = dict(self.errors)
        return handle
