"""Regeneration functions for every figure of the paper's evaluation.

Each ``figure*`` function runs the corresponding workload (at the requested
:class:`repro.experiments.workloads.ScaleProfile`) and returns a dictionary
with the same rows/series the paper plots, plus a ``render()``-able text
table.  EXPERIMENTS.md records how the regenerated shapes compare with the
paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profiler import profile_model_phases
from repro.core.scheduler import calc_op
from repro.data.datasets import load_dataset
from repro.experiments.report import format_table
from repro.experiments.runner import SuiteResult
from repro.experiments.workloads import (
    ScaleProfile,
    baseline_algorithms,
    evaluation_config,
    heterogeneity_config,
    motivation_deadline_config,
    noniid_degree_configs,
    scale_from_env,
    similarity_factor_config,
)
from repro.fl.metrics import round_duration_density
from repro.nn.architectures import ARCHITECTURES, build_model
from repro.nn.model import Phase


def _run_suite(configs, progress=None) -> SuiteResult:
    """Run a labelled batch through the public API.

    The figure functions are thin clients of :func:`repro.api.sweep`: the
    batch honours the active execution policy (workers/result cache) and —
    when a results directory is configured (``REPRO_RESULTS_DIR`` or the
    CLI's ``--results-dir``) — every run is persisted to, and replayed
    from, the :class:`repro.api.RunStore`, so figures can be re-rendered
    from the store alone.
    """
    from repro.api import sweep

    return sweep(configs, progress=progress).suite


# ---------------------------------------------------------------------------
# Figure 1 — motivation
# ---------------------------------------------------------------------------
def figure1a(
    scale: Optional[ScaleProfile] = None,
    client_counts: Sequence[int] = (3, 5, 7),
    variances: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
    seed: int = 42,
) -> Dict[str, object]:
    """Figure 1(a): round-duration multiplier vs. variance of client CPUs.

    For every cluster size the total FedAvg training time is normalised by
    the homogeneous (variance 0) case, reproducing the multiplicative
    impact that the paper reports.
    """
    scale = scale or scale_from_env()
    configs = {
        f"{clients}/{variance}": heterogeneity_config(clients, variance, scale, seed=seed)
        for clients in client_counts
        for variance in variances
    }
    suite = _run_suite(configs)
    multipliers: Dict[int, Dict[float, float]] = {}
    for clients in client_counts:
        baseline = suite[f"{clients}/{variances[0]}"].total_time
        multipliers[clients] = {
            variance: suite[f"{clients}/{variance}"].total_time / baseline
            for variance in variances
        }

    rows = [
        [clients] + [multipliers[clients][v] for v in variances] for clients in client_counts
    ]
    rendering = format_table(
        headers=["clients"] + [f"var={v}" for v in variances],
        rows=rows,
        title="Figure 1(a): impact of CPU-variance on training time (multiplier vs homogeneous)",
    )
    return {
        "client_counts": list(client_counts),
        "variances": list(variances),
        "multipliers": multipliers,
        "render": rendering,
    }


def figure1b_1c(
    scale: Optional[ScaleProfile] = None,
    deadlines: Sequence[Optional[float]] = (None, 70.0, 50.0, 30.0, 10.0),
    seed: int = 42,
) -> Dict[str, object]:
    """Figures 1(b) and 1(c): effect of round deadlines on time and accuracy.

    Runs the MNIST non-IID workload with the paper's deadline values
    (``None`` stands for the unbounded ∞ case).  Figure 1(b) reports the
    total training duration; Figure 1(c) the final test accuracy.
    """
    scale = scale or scale_from_env()
    configs = {
        ("inf" if d is None else f"{int(d)}s"): motivation_deadline_config(d, scale, seed=seed)
        for d in deadlines
    }
    suite = _run_suite(configs)
    rows = []
    for label, result in suite.results.items():
        rows.append(
            [
                label,
                result.total_time,
                result.final_accuracy,
                float(result.total_dropped()),
            ]
        )
    rendering = format_table(
        headers=["deadline", "total_time_s", "final_accuracy", "clients_dropped"],
        rows=rows,
        title="Figures 1(b)/1(c): training time and accuracy under round deadlines",
    )
    return {
        "deadlines": [label for label in suite.results],
        "total_time_s": {label: r.total_time for label, r in suite.results.items()},
        "final_accuracy": {label: r.final_accuracy for label, r in suite.results.items()},
        "dropped": {label: r.total_dropped() for label, r in suite.results.items()},
        "render": rendering,
    }


# ---------------------------------------------------------------------------
# Figure 4 — phase profiling
# ---------------------------------------------------------------------------
#: The (dataset, architecture) pairs profiled in Figure 4 of the paper.
FIGURE4_WORKLOADS: Tuple[Tuple[str, str], ...] = (
    ("cifar10", "cifar10-cnn"),
    ("cifar10", "cifar10-resnet"),
    ("cifar100", "cifar100-vgg"),
    ("cifar100", "cifar100-resnet"),
    ("fmnist", "fmnist-cnn"),
)


def figure4(
    batches: int = 3,
    batch_size: int = 16,
    sample_size: int = 64,
    seed: int = 7,
) -> Dict[str, object]:
    """Figure 4: share of a local update spent in each phase (ff, fc, bc, bf).

    Profiles every (dataset, network) pair of the paper under the
    single-client scenario and reports the per-phase percentages.  The key
    property to reproduce is that the backward pass over the feature layers
    (``bf``) dominates (the paper reports 52–75 %).
    """
    rows = []
    fractions: Dict[str, Dict[str, float]] = {}
    for dataset_name, architecture in FIGURE4_WORKLOADS:
        dataset = load_dataset(dataset_name, train_size=sample_size, test_size=16, seed=seed)
        model = build_model(architecture, rng=np.random.default_rng(seed))
        profile = profile_model_phases(
            model,
            dataset.x_train,
            dataset.y_train,
            batches=batches,
            batch_size=min(batch_size, sample_size),
            rng=np.random.default_rng(seed),
        )
        label = f"{dataset_name}-{architecture.split('-')[-1]}"
        phase_fractions = profile.fractions()
        fractions[label] = {phase.value: frac * 100.0 for phase, frac in phase_fractions.items()}
        rows.append(
            [label]
            + [phase_fractions[phase] * 100.0 for phase in Phase.ordered()]
        )
    rendering = format_table(
        headers=["workload", "ff %", "fc %", "bc %", "bf %"],
        rows=rows,
        title="Figure 4: per-phase share of a local update",
        float_format="{:.1f}",
    )
    return {"fractions": fractions, "render": rendering}


# ---------------------------------------------------------------------------
# Figures 6 and 7 — accuracy and training time, IID and non-IID
# ---------------------------------------------------------------------------
def _evaluation_grid(
    partition: str,
    scale: ScaleProfile,
    datasets: Sequence[str],
    algorithms: Sequence[str],
    seed: int,
) -> Dict[str, object]:
    per_dataset: Dict[str, SuiteResult] = {}
    for dataset in datasets:
        configs = {
            algorithm: evaluation_config(dataset, algorithm, partition, scale, seed=seed)
            for algorithm in algorithms
        }
        per_dataset[dataset] = _run_suite(configs)

    rows = []
    accuracy: Dict[str, Dict[str, float]] = {}
    time_s: Dict[str, Dict[str, float]] = {}
    for dataset, suite in per_dataset.items():
        accuracy[dataset] = {}
        time_s[dataset] = {}
        for algorithm, result in suite.results.items():
            accuracy[dataset][algorithm] = result.final_accuracy
            time_s[dataset][algorithm] = result.total_time
            rows.append([dataset, algorithm, result.final_accuracy, result.total_time])
    rendering = format_table(
        headers=["dataset", "algorithm", "final_accuracy", "total_time_s"],
        rows=rows,
        title=f"Accuracy and training time ({partition} partition)",
    )
    return {
        "partition": partition,
        "accuracy": accuracy,
        "total_time_s": time_s,
        "suites": per_dataset,
        "render": rendering,
    }


def figure6(
    scale: Optional[ScaleProfile] = None,
    datasets: Sequence[str] = ("mnist", "fmnist", "cifar10"),
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Figure 6: accuracy and training time after the budgeted rounds, IID data."""
    scale = scale or scale_from_env()
    algorithms = algorithms if algorithms is not None else baseline_algorithms()
    return _evaluation_grid("iid", scale, datasets, algorithms, seed)


def figure7(
    scale: Optional[ScaleProfile] = None,
    datasets: Sequence[str] = ("mnist", "fmnist", "cifar10"),
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 42,
) -> Dict[str, object]:
    """Figure 7: accuracy and training time after the budgeted rounds, non-IID data."""
    scale = scale or scale_from_env()
    algorithms = algorithms if algorithms is not None else baseline_algorithms()
    return _evaluation_grid("noniid", scale, datasets, algorithms, seed)


# ---------------------------------------------------------------------------
# Figure 8 — density of round durations
# ---------------------------------------------------------------------------
def figure8(
    scale: Optional[ScaleProfile] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 42,
    bins: int = 12,
) -> Dict[str, object]:
    """Figure 8: distribution of per-round durations on FMNIST (non-IID).

    Aergia's distribution should be shifted towards shorter rounds compared
    to every baseline.
    """
    scale = scale or scale_from_env()
    algorithms = algorithms if algorithms is not None else baseline_algorithms()
    configs = {
        algorithm: evaluation_config("fmnist", algorithm, "noniid", scale, seed=seed)
        for algorithm in algorithms
    }
    suite = _run_suite(configs)
    densities = round_duration_density(list(suite.results.values()), bins=bins)
    mean_durations = {
        algorithm: result.mean_round_duration() for algorithm, result in suite.results.items()
    }
    rows = [[algorithm, mean_durations[algorithm]] for algorithm in suite.results]
    rendering = format_table(
        headers=["algorithm", "mean_round_duration_s"],
        rows=rows,
        title="Figure 8: round-duration distribution (means shown; densities in payload)",
    )
    return {
        "densities": densities,
        "mean_round_duration_s": mean_durations,
        "round_durations": {a: r.round_durations().tolist() for a, r in suite.results.items()},
        "render": rendering,
    }


# ---------------------------------------------------------------------------
# Figure 9 — similarity factor
# ---------------------------------------------------------------------------
def figure9(
    scale: Optional[ScaleProfile] = None,
    factors: Sequence[float] = (1.0, 0.75, 0.5, 0.25, 0.0),
    seed: int = 42,
) -> Dict[str, object]:
    """Figure 9: impact of the similarity factor f on accuracy and round time.

    A positive factor restricts the offloading choices to data-compatible
    clients (higher accuracy, slightly longer rounds); ``f = 0`` ignores the
    similarity matrix entirely (shortest rounds, lower accuracy).
    """
    scale = scale or scale_from_env()
    configs = {
        f"f={factor}": similarity_factor_config(factor, scale, seed=seed) for factor in factors
    }
    suite = _run_suite(configs)
    rows = []
    for label, result in suite.results.items():
        rows.append([label, result.final_accuracy, result.mean_round_duration()])
    rendering = format_table(
        headers=["similarity factor", "final_accuracy", "mean_round_duration_s"],
        rows=rows,
        title="Figure 9: impact of the similarity factor",
    )
    return {
        "factors": list(factors),
        "accuracy": {label: r.final_accuracy for label, r in suite.results.items()},
        "mean_round_duration_s": {
            label: r.mean_round_duration() for label, r in suite.results.items()
        },
        "render": rendering,
    }


# ---------------------------------------------------------------------------
# Figure 10 — degree of non-IIDness
# ---------------------------------------------------------------------------
def figure10(scale: Optional[ScaleProfile] = None, seed: int = 42) -> Dict[str, object]:
    """Figure 10: accuracy over time for IID and non-IID(10/5/2) under Aergia.

    The runs use twice the scale's round budget: the accuracy gap between the
    non-IID levels only becomes visible once the curves have separated.
    """
    scale = scale or scale_from_env()
    labelled = [
        (label, config.with_overrides(rounds=max(config.rounds * 2, 6)))
        for label, config in noniid_degree_configs(scale, seed=seed)
    ]
    suite = _run_suite(dict(labelled))
    rows = []
    timelines: Dict[str, List[Tuple[float, float]]] = {}
    for label, result in suite.results.items():
        timelines[label] = result.accuracy_timeline()
        rows.append([label, result.final_accuracy, result.total_time])
    rendering = format_table(
        headers=["non-IID level", "final_accuracy", "total_time_s"],
        rows=rows,
        title="Figure 10: accuracy vs degree of non-IIDness (Aergia)",
    )
    return {
        "levels": [label for label, _ in labelled],
        "accuracy_timeline": timelines,
        "final_accuracy": {label: r.final_accuracy for label, r in suite.results.items()},
        "total_time_s": {label: r.total_time for label, r in suite.results.items()},
        "render": rendering,
    }


# ---------------------------------------------------------------------------
# Headline claims and profiler overhead
# ---------------------------------------------------------------------------
def headline_claims(
    scale: Optional[ScaleProfile] = None,
    dataset: str = "fmnist",
    partition: str = "noniid",
    seed: int = 42,
) -> Dict[str, object]:
    """The headline comparison (§1, §5.2): Aergia vs FedAvg and TiFL.

    The paper reports time reductions of up to 27 % vs FedAvg and 53 % vs
    TiFL at comparable accuracy; the reproduction reports the same derived
    quantities for the scaled workload.
    """
    scale = scale or scale_from_env()
    configs = {
        algorithm: evaluation_config(dataset, algorithm, partition, scale, seed=seed)
        for algorithm in ("fedavg", "tifl", "aergia")
    }
    suite = _run_suite(configs)
    aergia = suite["aergia"]
    fedavg = suite["fedavg"]
    tifl = suite["tifl"]
    reduction_vs_fedavg = 1.0 - aergia.total_time / fedavg.total_time
    reduction_vs_tifl = 1.0 - aergia.total_time / tifl.total_time
    accuracy_gap_fedavg = aergia.final_accuracy - fedavg.final_accuracy
    accuracy_gap_tifl = aergia.final_accuracy - tifl.final_accuracy
    rows = [
        ["aergia vs fedavg", reduction_vs_fedavg * 100.0, accuracy_gap_fedavg],
        ["aergia vs tifl", reduction_vs_tifl * 100.0, accuracy_gap_tifl],
    ]
    rendering = format_table(
        headers=["comparison", "time_reduction_%", "accuracy_delta"],
        rows=rows,
        title=f"Headline claims on {dataset} ({partition})",
    )
    return {
        "time_reduction_vs_fedavg": reduction_vs_fedavg,
        "time_reduction_vs_tifl": reduction_vs_tifl,
        "accuracy_delta_vs_fedavg": accuracy_gap_fedavg,
        "accuracy_delta_vs_tifl": accuracy_gap_tifl,
        "total_time_s": {label: r.total_time for label, r in suite.results.items()},
        "final_accuracy": {label: r.final_accuracy for label, r in suite.results.items()},
        "render": rendering,
    }


def profiler_overhead(
    scale: Optional[ScaleProfile] = None, seed: int = 42
) -> Dict[str, object]:
    """§4.2/§5.4: the online profiler's overhead as a fraction of training time.

    Compares Aergia runs with and without the profiling overhead surcharge;
    the measured overhead should stay well below one percent, as in the
    paper (0.22 % ± 0.09 reported).
    """
    scale = scale or scale_from_env()
    config = evaluation_config("fmnist", "aergia", "iid", scale, seed=seed)
    no_profile_config = config.with_overrides(profile_batches=0, algorithm="fedavg")
    suite = _run_suite({"with": config, "without": no_profile_config})
    with_profiling = suite["with"]
    without_profiling = suite["without"]

    # The cleanest estimate of the profiler's own overhead is the configured
    # per-batch surcharge times the number of profiled batches, relative to
    # the total training time of the run.
    from repro.core.profiler import OnlineProfiler

    surcharge = OnlineProfiler().overhead_fraction
    profiled_fraction = config.profile_batches / config.local_updates
    overhead_fraction = surcharge * profiled_fraction
    rows = [["profiler overhead (fraction of training time)", overhead_fraction * 100.0]]
    rendering = format_table(
        headers=["quantity", "percent"],
        rows=rows,
        title="Online profiler overhead",
        float_format="{:.4f}",
    )
    return {
        "overhead_fraction": overhead_fraction,
        "aergia_total_time_s": with_profiling.total_time,
        "fedavg_total_time_s": without_profiling.total_time,
        "render": rendering,
    }


# ---------------------------------------------------------------------------
# Ablations of the design choices called out in DESIGN.md
# ---------------------------------------------------------------------------
def ablation_profile_length(
    scale: Optional[ScaleProfile] = None,
    profile_lengths: Sequence[int] = (1, 2, 4),
    seed: int = 42,
) -> Dict[str, object]:
    """How the number of profiling batches affects Aergia's time and accuracy."""
    scale = scale or scale_from_env()
    configs = {}
    for length in profile_lengths:
        config = evaluation_config("fmnist", "aergia", "noniid", scale, seed=seed)
        configs[f"P={length}"] = config.with_overrides(
            profile_batches=min(length, config.local_updates)
        )
    suite = _run_suite(configs)
    rows = [
        [label, result.final_accuracy, result.total_time, result.mean_round_duration()]
        for label, result in suite.results.items()
    ]
    rendering = format_table(
        headers=["profiling batches", "final_accuracy", "total_time_s", "mean_round_s"],
        rows=rows,
        title="Ablation: online-profiling length",
    )
    return {
        "profile_lengths": list(profile_lengths),
        "total_time_s": {label: r.total_time for label, r in suite.results.items()},
        "final_accuracy": {label: r.final_accuracy for label, r in suite.results.items()},
        "render": rendering,
    }


def ablation_offload_point(
    speed_ratios: Sequence[float] = (2.0, 4.0, 8.0),
    remaining: int = 64,
) -> Dict[str, object]:
    """Algorithm 2's optimal offloading point vs a fixed midpoint split.

    For several weak/strong speed ratios, compares the estimated pair
    completion time using (i) the optimal ``d`` found by :func:`calc_op`
    and (ii) a naive 50 % split.  The optimal search should never be worse
    and typically improves the completion time substantially when the
    speed gap is large.
    """
    rows = []
    improvements: Dict[float, float] = {}
    for ratio in speed_ratios:
        weak_batch = 1.0
        strong_batch = 1.0 / ratio
        strong_feature = 0.7 / ratio  # bf dominates, so feature-only is ~70 % of a batch
        optimal_ct, optimal_d = calc_op(weak_batch, strong_batch, strong_feature, remaining, remaining)
        midpoint_d = remaining // 2
        midpoint_ct = max(
            (remaining - midpoint_d) * weak_batch + midpoint_d * strong_feature,
            (remaining - midpoint_d) * strong_batch,
        )
        improvement = 1.0 - optimal_ct / midpoint_ct if midpoint_ct > 0 else 0.0
        improvements[ratio] = improvement
        rows.append([f"{ratio:.0f}x", optimal_d, optimal_ct, midpoint_ct, improvement * 100.0])
    rendering = format_table(
        headers=["speed ratio", "optimal d", "optimal ct", "midpoint ct", "improvement %"],
        rows=rows,
        title="Ablation: Algorithm 2 offloading point vs fixed midpoint",
    )
    return {"improvements": improvements, "render": rendering}


def ablation_freeze_side(batches: int = 3, batch_size: int = 16) -> Dict[str, object]:
    """Freezing feature layers (the paper) vs freezing the classifier instead.

    Uses the Figure 4 phase profiles to compute the per-batch time saved by
    each choice on a straggler.  Freezing the feature layers skips the
    dominant ``bf`` phase and should save several times more work than
    freezing the classifier (which only skips ``bc``).
    """
    profile = figure4(batches=batches, batch_size=batch_size)
    rows = []
    savings: Dict[str, Dict[str, float]] = {}
    for workload, fractions in profile["fractions"].items():
        feature_saving = fractions["bf"]
        classifier_saving = fractions["bc"]
        savings[workload] = {
            "freeze_features_saving_pct": feature_saving,
            "freeze_classifier_saving_pct": classifier_saving,
        }
        rows.append([workload, feature_saving, classifier_saving])
    rendering = format_table(
        headers=["workload", "freeze features saves %", "freeze classifier saves %"],
        rows=rows,
        title="Ablation: which side of the model to freeze",
        float_format="{:.1f}",
    )
    return {"savings": savings, "render": rendering}
