"""Experiment harness regenerating every figure and table of the paper.

Each ``figure*`` function in :mod:`repro.experiments.figures` runs the
workload behind one figure of the paper's evaluation (scaled down to sizes
a pure-numpy reproduction can execute in seconds — see EXPERIMENTS.md for
the exact scaling) and returns the same rows/series the paper reports.
The benchmark suite under ``benchmarks/`` calls these functions and prints
their renderings.
"""

from repro.experiments.workloads import (
    ScaleProfile,
    SCALES,
    available_scenarios,
    baseline_algorithms,
    evaluation_config,
    known_datasets,
    scale_from_env,
    scenario_dynamics,
)
from repro.experiments.runner import run_configs, SuiteResult
from repro.experiments.parallel import (
    ResultCache,
    config_hash,
    configure,
    run_configs_parallel,
    run_suite,
)
from repro.experiments.report import format_table, table1_comparison, render_table1

__all__ = [
    "ScaleProfile",
    "SCALES",
    "available_scenarios",
    "baseline_algorithms",
    "evaluation_config",
    "known_datasets",
    "scale_from_env",
    "scenario_dynamics",
    "run_configs",
    "run_configs_parallel",
    "run_suite",
    "configure",
    "config_hash",
    "ResultCache",
    "SuiteResult",
    "format_table",
    "table1_comparison",
    "render_table1",
]
