"""Reproduction of "Aergia: Leveraging Heterogeneity in Federated Learning Systems".

This library re-implements the Aergia middleware (Cox, Chen and Decouchant,
Middleware 2022) and every substrate it depends on as a self-contained,
pure-Python package:

* :mod:`repro.nn` -- numpy CNN substrate with phase-aware training,
* :mod:`repro.data` -- synthetic image benchmarks, partitioning, EMD,
* :mod:`repro.simulation` -- discrete-event heterogeneous cluster simulator,
* :mod:`repro.fl` -- generic federated-learning runtime,
* :mod:`repro.baselines` -- FedAvg, FedProx, FedNova, FedSGD, TiFL, deadlines,
* :mod:`repro.core` -- the Aergia contribution (profiling, freezing,
  offloading, scheduling, SGX-enclave similarity),
* :mod:`repro.experiments` -- the harness regenerating every figure and
  table of the paper's evaluation,
* :mod:`repro.registry` -- central plugin registries (algorithms,
  scenarios, scales, datasets) third-party code extends with decorators,
* :mod:`repro.api` -- the public programmatic API: fluent experiment
  specs, streaming runs and the persistent RunStore.

Quickstart::

    import repro.api as api

    handle = (
        api.experiment("aergia")
        .scenario("churn").scale("smoke").seed(3)
        .run(store="results/")
    )
    for record in handle.stream():          # rounds as they finalize
        print(record.round_number, record.test_accuracy)
    print(handle.summary())

    print(api.Results.open("results/").render_summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
