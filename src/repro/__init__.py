"""Reproduction of "Aergia: Leveraging Heterogeneity in Federated Learning Systems".

This library re-implements the Aergia middleware (Cox, Chen and Decouchant,
Middleware 2022) and every substrate it depends on as a self-contained,
pure-Python package:

* :mod:`repro.nn` -- numpy CNN substrate with phase-aware training,
* :mod:`repro.data` -- synthetic image benchmarks, partitioning, EMD,
* :mod:`repro.simulation` -- discrete-event heterogeneous cluster simulator,
* :mod:`repro.fl` -- generic federated-learning runtime,
* :mod:`repro.baselines` -- FedAvg, FedProx, FedNova, FedSGD, TiFL, deadlines,
* :mod:`repro.core` -- the Aergia contribution (profiling, freezing,
  offloading, scheduling, SGX-enclave similarity),
* :mod:`repro.experiments` -- the harness regenerating every figure and
  table of the paper's evaluation.

Quickstart::

    from repro.fl import ExperimentConfig, run_experiment

    config = ExperimentConfig(algorithm="aergia", num_clients=8, rounds=3)
    result = run_experiment(config)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
