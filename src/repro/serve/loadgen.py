"""Load generator for ``repro serve`` — the ``BENCH_serve.json`` benchmark.

Spins up a server (as a subprocess, exactly the way an operator would),
hosts N concurrent long-running churn experiments on it, then replays a
high-rate client workload from a pool of **worker processes** — spawned
with the same spawn/seeding discipline as the experiment process pool in
:mod:`repro.experiments.parallel`, so the load comes from genuinely
independent processes rather than threads sharing the client's GIL.

The workload mixes the protocol's endpoints the way a device fleet would:

* ``checkin`` — the dominant traffic: batched JSONL device-availability
  events (``batch`` lines per request), targeting the hosted runs'
  scenario dynamics.  Every line counts as one event.
* ``status`` / ``list`` — dashboard-style polls of one run / all runs.
* ``stream``  — short live round-stream reads (``?from=0&max=K``).
* ``submit``  — duplicate submissions of hosted specs, exercising the
  dedupe path (one request, one event).

Latency is measured per request at the client (connect/reuse + request +
full response read) on a keep-alive connection; throughput is events over
the whole mixed-load window.  Per-endpoint rates therefore describe the
endpoint's share of a concurrent mix — not an isolated ceiling — which is
the number an operator actually gets.

Results land in ``BENCH_serve.json``::

    {"meta": {...}, "endpoints": {<name>: {"requests", "events", "errors",
     "latency_ms": {"mean", "p50", "p95", "p99", "max"},
     "events_per_s"}}, "totals": {...}}
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

import numpy as np

ENDPOINTS = ("checkin", "status", "list", "stream", "submit")


# --------------------------------------------------------------- client side
def _connect(host: str, port: int) -> http.client.HTTPConnection:
    """A keep-alive connection with Nagle off (matches the server side)."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.connect()
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn


def _request(
    conn: http.client.HTTPConnection,
    method: str,
    path: str,
    body: Optional[bytes] = None,
) -> Tuple[float, int, bytes]:
    """One timed request on a keep-alive connection: (seconds, status, body)."""
    start = time.perf_counter()
    conn.request(method, path, body=body, headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    data = response.read()
    return time.perf_counter() - start, response.status, data


def _worker_main(args: tuple) -> Dict[str, object]:
    """One load worker's replay loop (module-level: pickled under spawn)."""
    worker_id, host, port, runs, quota, batch, stream_max = args
    rng = np.random.default_rng(0xBE7C + worker_id)
    latencies: Dict[str, List[float]] = {name: [] for name in ENDPOINTS}
    counts: Dict[str, int] = {name: 0 for name in ENDPOINTS}  # events
    requests: Dict[str, int] = {name: 0 for name in ENDPOINTS}
    errors = 0
    conn = _connect(host, port)

    def fire(endpoint: str, method: str, path: str, body: Optional[bytes], events: int) -> bytes:
        nonlocal conn, errors
        try:
            elapsed, status, data = _request(conn, method, path, body)
        except (http.client.HTTPException, OSError):
            conn.close()
            conn = _connect(host, port)
            elapsed, status, data = _request(conn, method, path, body)
        latencies[endpoint].append(elapsed)
        requests[endpoint] += 1
        counts[endpoint] += events
        if status >= 400:
            errors += 1
        return data

    done = 0
    # Dashboard polls and the rarer stream/submit ops are scheduled by
    # event milestone (not iteration) so the mix holds whatever the
    # check-in batch size: ~40 polls and ~8 stream/submit ops per worker.
    poll_every = max(50, quota // 40)
    rare_every = max(200, quota // 8)
    next_poll, polls = poll_every, 0
    next_rare, rares = rare_every, 0
    while done < quota:
        run = runs[int(rng.integers(len(runs)))]
        if done >= next_rare:
            if rares % 2 == 0:
                fire("stream", "GET", f"/runs/{run['run_id']}/rounds?from=0&max={stream_max}", None, 1)
            else:
                body = json.dumps({"spec": run["spec"]}).encode()
                fire("submit", "POST", "/runs", body, 1)
            rares += 1
            next_rare += rare_every
            done += 1
        elif done >= next_poll:
            if polls % 2 == 0:
                fire("status", "GET", f"/runs/{run['run_id']}", None, 1)
            else:
                fire("list", "GET", "/runs", None, 1)
            polls += 1
            next_poll += poll_every
            done += 1
        else:
            size = min(batch, quota - done) or 1
            clients = rng.integers(0, run["num_clients"], size=size)
            online = rng.random(size=size) < 0.5
            lines = "".join(
                json.dumps(
                    {"run": run["run_id"], "client": int(client), "online": bool(up)}
                )
                + "\n"
                for client, up in zip(clients, online)
            )
            data = fire("checkin", "POST", "/checkin", lines.encode(), size)
            done += size
            try:
                if json.loads(data).get("accepted", 0) == 0:
                    errors += 1
            except ValueError:
                errors += 1
    conn.close()
    return {
        "latencies": {name: values for name, values in latencies.items()},
        "events": counts,
        "requests": requests,
        "errors": errors,
    }


# --------------------------------------------------------------- server side
def _start_server(results_dir: str, workers: int) -> Tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` as a subprocess and parse its listening URL."""
    package_parent = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = package_parent + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--results-dir",
            results_dir,
            "--workers",
            str(workers),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(f"repro serve exited with {proc.returncode} before listening")
            continue
        if "listening on" in line:
            url = line.split("listening on", 1)[1].split()[0]
            return proc, url
    proc.kill()
    raise RuntimeError("repro serve did not report a listening address in time")


def _submit_experiments(
    host: str, port: int, experiments: int, seed: int
) -> List[Dict[str, object]]:
    """Host N long-running churn experiments; returns their run documents."""
    conn = _connect(host, port)
    runs: List[Dict[str, object]] = []
    for index in range(experiments):
        spec = {
            "algorithm": "fedavg",
            "dataset": "mnist",
            "scale": "smoke",
            "scenario": "churn",
            "seed": seed + index,
            "label": f"loadgen-{index}",
            # A round budget far past the benchmark window: the runs must
            # stay live (accepting check-ins, producing stream records) for
            # the whole replay; they are cancelled afterwards.
            "overrides": {"rounds": 100000},
        }
        _, status, data = _request(
            conn, "POST", "/runs", json.dumps({"spec": spec}).encode()
        )
        if status >= 400:
            raise RuntimeError(f"loadgen submit failed ({status}): {data!r}")
        doc = json.loads(data)
        doc["spec"] = spec
        runs.append(doc)
    # Wait until every run is actually executing (not pool-queued) so the
    # replayed check-ins always hit live dynamics.
    deadline = time.monotonic() + 120
    for doc in runs:
        while time.monotonic() < deadline:
            _, status, data = _request(conn, "GET", f"/runs/{doc['run_id']}")
            state = json.loads(data).get("state")
            if state == "running":
                break
            if state in ("failed", "cancelled"):
                raise RuntimeError(f"loadgen run {doc['run_id']} entered {state}")
            time.sleep(0.1)
        else:
            raise RuntimeError("loadgen runs did not all reach running state")
    conn.close()
    return runs


# -------------------------------------------------------------- aggregation
def _percentiles_ms(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    array = np.asarray(samples, dtype=np.float64) * 1000.0
    return {
        "mean": float(array.mean()),
        "p50": float(np.percentile(array, 50)),
        "p95": float(np.percentile(array, 95)),
        "p99": float(np.percentile(array, 99)),
        "max": float(array.max()),
    }


def run_loadgen(
    events: int = 100_000,
    experiments: int = 4,
    workers: int = 4,
    batch: int = 200,
    output: Optional[str] = "BENCH_serve.json",
    results_dir: Optional[str] = None,
    seed: int = 42,
    stream_max: int = 3,
) -> Dict[str, object]:
    """Run the full serve benchmark and write ``output``.

    ``events`` is the total client-event budget across all workers (each
    check-in line, poll, stream read or submit counts as one).  The server
    runs as a subprocess against ``results_dir`` (a temporary directory by
    default) with ``experiments`` hosted churn runs.
    """
    if experiments < 1 or workers < 1 or events < workers:
        raise ValueError("need at least one experiment, one worker, and one event per worker")
    own_dir = None
    if results_dir is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
        results_dir = own_dir.name
    proc = None
    try:
        proc, url = _start_server(results_dir, workers=max(experiments, 2))
        parsed = urlsplit(url)
        host, port = parsed.hostname, parsed.port
        runs = _submit_experiments(host, port, experiments, seed)
        run_docs = [
            {"run_id": doc["run_id"], "num_clients": doc["num_clients"], "spec": doc["spec"]}
            for doc in runs
        ]

        quota = events // workers
        remainder = events - quota * workers
        tasks = [
            (index, host, port, run_docs, quota + (1 if index < remainder else 0), batch, stream_max)
            for index in range(workers)
        ]
        package_parent = str(Path(__file__).resolve().parents[2])
        from repro.experiments.parallel import _worker_init

        start = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=get_context("spawn"),
            initializer=_worker_init,
            initargs=(package_parent,),
        ) as pool:
            reports = list(pool.map(_worker_main, tasks))
        elapsed = time.perf_counter() - start

        # Tear down: cancel the long-running hosts, then drain the server.
        conn = _connect(host, port)
        for doc in run_docs:
            _request(conn, "POST", f"/runs/{doc['run_id']}/cancel", b"")
        _, _, stats_body = _request(conn, "GET", "/stats")
        server_stats = json.loads(stats_body)
        conn.close()
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if own_dir is not None:
            own_dir.cleanup()

    endpoints: Dict[str, object] = {}
    total_requests = 0
    total_events = 0
    total_errors = sum(report["errors"] for report in reports)
    for name in ENDPOINTS:
        samples: List[float] = []
        event_count = 0
        request_count = 0
        for report in reports:
            samples.extend(report["latencies"][name])
            event_count += report["events"][name]
            request_count += report["requests"][name]
        endpoints[name] = {
            "requests": request_count,
            "events": event_count,
            "events_per_s": event_count / elapsed if elapsed > 0 else 0.0,
            "requests_per_s": request_count / elapsed if elapsed > 0 else 0.0,
            "latency_ms": _percentiles_ms(samples),
        }
        total_requests += request_count
        total_events += event_count

    results = {
        "meta": {
            "benchmark": "repro serve loadgen",
            "events_target": events,
            "experiments": experiments,
            "client_workers": workers,
            "checkin_batch": batch,
            "timestamp": time.time(),
            "python": sys.version.split()[0],
            "server_checkins_admitted": server_stats.get("checkins"),
        },
        "endpoints": endpoints,
        "totals": {
            "requests": total_requests,
            "events": total_events,
            "errors": total_errors,
            "elapsed_s": elapsed,
            "events_per_s": total_events / elapsed if elapsed > 0 else 0.0,
            "requests_per_s": total_requests / elapsed if elapsed > 0 else 0.0,
        },
    }
    if output:
        path = Path(output)
        path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return results


def render_loadgen(results: Dict[str, object]) -> str:
    """Human-readable table of a loadgen result document."""
    from repro.experiments.report import format_table

    rows = []
    for name, stats in results["endpoints"].items():
        latency = stats["latency_ms"]
        rows.append(
            [
                name,
                float(stats["requests"]),
                float(stats["events"]),
                round(stats["events_per_s"], 1),
                round(latency["p50"], 2),
                round(latency["p95"], 2),
                round(latency["p99"], 2),
            ]
        )
    totals = results["totals"]
    title = (
        f"repro serve loadgen: {totals['events']} events in "
        f"{totals['elapsed_s']:.1f}s ({totals['events_per_s']:.0f} events/s, "
        f"{totals['errors']} errors)"
    )
    return format_table(
        headers=["endpoint", "requests", "events", "events/s", "p50_ms", "p95_ms", "p99_ms"],
        rows=rows,
        title=title,
    )
