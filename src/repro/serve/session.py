"""Hosted runs: the server side of multiplexed experiment execution.

A :class:`HostedRun` pairs one :class:`repro.api.RunHandle` with the
bookkeeping a server needs around it — a lifecycle state machine, the
rounds collected so far (under a condition variable so streaming readers
can block for the next one), and the worker future driving it.

The :class:`SessionManager` multiplexes N hosted runs over a fixed thread
pool.  Threads, not processes, are deliberate: the ``/checkin`` endpoint
and live round streams need to reach the *running* simulation's state
(its :class:`~repro.simulation.dynamics.ScenarioDynamics`, its record
stream), which only exists in the executing process.  The process-pool
spawn/seeding discipline of :mod:`repro.experiments.parallel` still
applies where processes make sense — the loadgen benchmark's client
workers use it — but execution here stays in-process, with all
cross-thread mutation funnelled through :meth:`RunHandle.inject` so the
simulation only ever sees state changes between two events.

Thread-safety of the compute dtype: the engine's dtype is process-global
(:mod:`repro.nn.dtype`), toggled around experiment construction.  Two
concurrent builds are only safe when they toggle X -> X, so the manager
rejects submissions whose resolved dtype differs from the server
process's — the error tells the client to start a server with the dtype
it wants instead of silently racing the global.

Lifecycle::

    queued -> running -> complete        (ran to its round budget)
                      -> checkpointed    (graceful drain; resumable)
                      -> cancelled       (client cancel / drained unstarted)
                      -> failed          (exception; message preserved)
"""

from __future__ import annotations

import dataclasses
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.api.handles import RunHandle
from repro.api.store import RunLockedError, RunStore, run_key
from repro.fl.config import ExperimentConfig
from repro.fl.metrics import RoundRecord
from repro.nn.dtype import compute_dtype, resolve_dtype
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    ERR_INVALID_SPEC,
    ERR_NO_DYNAMICS,
    ERR_RUN_NOT_ACTIVE,
    ERR_STORE_CONFLICT,
    ERR_UNKNOWN_RUN,
    ProtocolError,
)

logger = logging.getLogger(__name__)

#: States in which the run still makes progress.
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("complete", "checkpointed", "cancelled", "failed")


class HostedRun:
    """One experiment hosted by the server, with its streaming bookkeeping."""

    def __init__(self, handle: RunHandle, label: str) -> None:
        self.handle = handle
        self.run_id = handle.config_hash
        self.label = label
        self.state = "queued"
        self.error: Optional[str] = None
        self.records: List[RoundRecord] = []
        self.cond = threading.Condition()
        self.future = None
        self.submitted_at = time.time()
        self.checkins = 0

    # -------------------------------------------------------------- queries
    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    def snapshot(self) -> Dict[str, object]:
        """The run's status document (the ``GET /runs/<id>`` body)."""
        with self.cond:
            return {
                "run_id": self.run_id,
                "label": self.label,
                "state": self.state,
                "error": self.error,
                "rounds": len(self.records),
                "checkins": self.checkins,
                "resumed_from_round": self.handle.resumed_from_round,
                "loaded_from_store": self.handle.loaded_from_store,
                "algorithm": self.handle.config.algorithm,
                "dataset": self.handle.config.dataset,
                "scenario": self.handle.config.dynamics.scenario,
                "num_clients": self.handle.config.num_clients,
                "seed": self.handle.config.seed,
                "submitted_at": self.submitted_at,
            }

    def wait_record(self, index: int, timeout: Optional[float] = None) -> Optional[RoundRecord]:
        """Block until round ``index`` exists; ``None`` once the run is over.

        The streaming endpoint's pull loop: readers consume the shared
        records list by index, so any number of clients can stream the
        same live run without coordinating.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while index >= len(self.records):
                if self.state in TERMINAL_STATES:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self.cond.wait(remaining if remaining is not None else 1.0)
            return self.records[index]

    def wait_terminal(self, timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while self.state not in TERMINAL_STATES:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self.cond.wait(remaining if remaining is not None else 1.0)
            return True

    def _finish(self, state: str, error: Optional[str] = None) -> None:
        with self.cond:
            self.state = state
            self.error = error
            self.cond.notify_all()


class SessionManager:
    """Multiplexes hosted experiments over a worker-thread pool."""

    def __init__(
        self,
        store: RunStore,
        workers: int = 4,
        checkpoint_interval: Optional[int] = 1,
    ) -> None:
        self.store = store
        self.checkpoint_interval = checkpoint_interval
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(workers)), thread_name_prefix="repro-serve"
        )
        self._sessions: Dict[str, HostedRun] = {}
        self._lock = threading.Lock()
        self._draining = False
        self.submitted = 0
        self.deduplicated = 0

    # ------------------------------------------------------------ submission
    def submit(
        self,
        config: ExperimentConfig,
        label: Optional[str] = None,
        resume: bool = False,
    ) -> Tuple[HostedRun, bool]:
        """Host a run of ``config``; returns ``(session, created)``.

        Submission is idempotent per configuration: the run's identity is
        its :func:`repro.api.run_key`, and a second submit of an active
        key returns the existing session (``created=False``) instead of
        racing two writers for one store directory.
        """
        requested = resolve_dtype(config.dtype)
        if requested != compute_dtype():
            raise ProtocolError(
                ERR_INVALID_SPEC,
                f"this server computes in {compute_dtype().name}; a "
                f"{requested.name} run needs a server started with "
                f"REPRO_DTYPE={requested.name} (the compute dtype is "
                "process-wide and cannot change per run)",
            )
        if config.checkpoint_interval is None and self.checkpoint_interval is not None:
            # Drainability by default: an execution-strategy knob, outside
            # the run_key, so server runs stay byte-identical to library
            # runs of the same spec.
            config = dataclasses.replace(
                config, checkpoint_interval=self.checkpoint_interval
            )
        run_id = run_key(config)
        with self._lock:
            if self._draining:
                raise ProtocolError(ERR_DRAINING, "server is draining; not accepting runs")
            existing = self._sessions.get(run_id)
            if existing is not None and existing.active:
                self.deduplicated += 1
                return existing, False
            handle = RunHandle(
                config, store=self.store, label=label, resume=resume
            )
            hosted = HostedRun(handle, handle.label)
            self._sessions[run_id] = hosted
            self.submitted += 1
            hosted.future = self._pool.submit(self._drive, hosted)
            return hosted, True

    def resume_all(self) -> List[HostedRun]:
        """Re-host every resumable run in the store (server restart path)."""
        resumed: List[HostedRun] = []
        for stored in self.store.scan()["resumable"]:
            try:
                config = stored.load_config()
                hosted, created = self.submit(config, label=stored.label, resume=True)
            except (ProtocolError, TypeError, ValueError) as exc:
                logger.warning("cannot resume stored run %s: %s", stored.config_hash, exc)
                continue
            if created:
                resumed.append(hosted)
        return resumed

    def _drive(self, hosted: HostedRun) -> None:
        with hosted.cond:
            if hosted.state != "queued":
                return
            hosted.state = "running"
            hosted.cond.notify_all()
        try:
            for record in hosted.handle.stream():
                with hosted.cond:
                    hosted.records.append(record)
                    hosted.cond.notify_all()
        except RunLockedError as exc:
            hosted._finish("failed", f"{ERR_STORE_CONFLICT}: {exc}")
        except Exception as exc:
            logger.exception("hosted run %s failed", hosted.run_id)
            hosted._finish("failed", str(exc))
        else:
            if hosted.handle.stopped:
                mode = hosted.handle._stop_mode
                hosted._finish("checkpointed" if mode == "checkpoint" else "cancelled")
            else:
                hosted._finish("complete")

    # --------------------------------------------------------------- queries
    def get(self, run_id: str) -> HostedRun:
        with self._lock:
            hosted = self._sessions.get(run_id)
        if hosted is None:
            raise ProtocolError(ERR_UNKNOWN_RUN, f"no active run {run_id!r}")
        return hosted

    def sessions(self) -> List[HostedRun]:
        with self._lock:
            return list(self._sessions.values())

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> Dict[str, object]:
        by_state: Dict[str, int] = {}
        checkins = 0
        for hosted in self.sessions():
            by_state[hosted.state] = by_state.get(hosted.state, 0) + 1
            checkins += hosted.checkins
        return {
            "sessions": by_state,
            "submitted": self.submitted,
            "deduplicated": self.deduplicated,
            "checkins": checkins,
            "draining": self._draining,
        }

    # --------------------------------------------------------------- control
    def checkin(self, run_id: str, client_id: int, online: bool, delay: float = 0.0) -> None:
        """Feed one device-availability event into a hosted run's scenario.

        The event is injected through :meth:`RunHandle.inject`, so the
        simulation applies it between two events of its queue — never
        mid-event, never from a foreign thread.
        """
        hosted = self.get(run_id)
        if not hosted.handle.config.dynamics.is_active():
            raise ProtocolError(
                ERR_NO_DYNAMICS,
                f"run {run_id!r} has no scenario dynamics (scenario "
                f"{hosted.handle.config.dynamics.scenario!r}); check-ins "
                "need a dynamic scenario such as churn",
            )
        if not hosted.active:
            raise ProtocolError(
                ERR_RUN_NOT_ACTIVE, f"run {run_id!r} is {hosted.state}; not accepting check-ins"
            )
        if not 0 <= int(client_id) < hosted.handle.config.num_clients:
            # Validate here, against the config, instead of letting the
            # injected action raise inside the simulation thread where the
            # client could never see the error.
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"client {client_id} out of range for run {run_id!r} "
                f"({hosted.handle.config.num_clients} clients)",
            )
        handle = hosted.handle

        def admit() -> None:
            experiment = handle.experiment
            if experiment is not None and experiment.dynamics is not None:
                experiment.dynamics.admit_checkin(client_id, online, delay)

        handle.inject(admit)
        with hosted.cond:
            hosted.checkins += 1

    def cancel(self, run_id: str) -> Dict[str, object]:
        """Cancel a hosted run (idempotent; terminal states pass through)."""
        hosted = self.get(run_id)
        with hosted.cond:
            if hosted.state == "queued" and hosted.future is not None and hosted.future.cancel():
                hosted.state = "cancelled"
                hosted.cond.notify_all()
                return hosted.snapshot()
        if hosted.active:
            hosted.handle.request_stop("abort")
        return hosted.snapshot()

    def drain(self, timeout: float = 60.0) -> Dict[str, object]:
        """Stop accepting work and checkpoint everything in flight.

        Queued runs that never started are cancelled outright (nothing to
        checkpoint); running ones are asked to stop at their next
        checkpoint opportunity.  Returns a summary of where every session
        ended up; sessions that failed to reach a terminal state within
        ``timeout`` are reported as still in flight.
        """
        with self._lock:
            self._draining = True
            sessions = list(self._sessions.values())
        for hosted in sessions:
            with hosted.cond:
                if hosted.state == "queued" and hosted.future is not None and hosted.future.cancel():
                    hosted.state = "cancelled"
                    hosted.cond.notify_all()
                    continue
            if hosted.active:
                hosted.handle.request_stop("checkpoint")
        deadline = time.monotonic() + timeout
        summary: Dict[str, object] = {}
        for hosted in sessions:
            hosted.wait_terminal(max(0.0, deadline - time.monotonic()))
            summary[hosted.run_id] = hosted.state
        self._pool.shutdown(wait=False)
        return summary
