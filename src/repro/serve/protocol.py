"""Wire protocol of ``repro serve``: payload parsing, framing, error codes.

The service speaks plain HTTP/1.1 with JSON bodies; round streams are
JSON-lines over chunked transfer encoding.  Three invariants keep clients
simple and the server honest:

* **Validation is the library's validation.**  A submitted spec payload is
  routed through :func:`repro.api.experiment` — the same fluent builder
  every other entry point uses — so an unknown algorithm/dataset/
  scenario/scale fails fast with *exactly* the registry's error message,
  before any experiment state exists.
* **Stream framing is storage framing.**  Each streamed round is the same
  ``json.dumps(..., sort_keys=True)`` line the :class:`repro.api.RunStore`
  appends to ``rounds.jsonl``, so a client that saves the stream to a file
  reproduces the store's records byte for byte.  The stream's final line
  is a trailer object carrying an ``"event"`` key — round records never
  have one — so clients can split data from control without heuristics.
* **Errors are machine-readable.**  Every failure body is
  ``{"error": <code>, "message": <human text>}`` with a stable code from
  the table below; HTTP status classes mirror the codes.

Error codes:

=====================  ======  ===========================================
code                   status  meaning
=====================  ======  ===========================================
``invalid_json``       400     request body is not parseable JSON / JSONL
``bad_request``        400     structurally valid but malformed request
``invalid_spec``       422     spec rejected by registry validation
``unknown_run``        404     no such run (active or stored)
``run_not_active``     409     run exists but is not live (checkins/cancel)
``no_dynamics``        409     run has no scenario dynamics to check into
``store_conflict``     409     another writer holds the run's store lock
``draining``           503     server is shutting down; resubmit elsewhere
=====================  ======  ===========================================
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Tuple

from repro.experiments.parallel import _canonical as _jsonable
from repro.fl.config import ExperimentConfig
from repro.fl.metrics import RoundRecord

ERR_INVALID_JSON = "invalid_json"
ERR_BAD_REQUEST = "bad_request"
ERR_INVALID_SPEC = "invalid_spec"
ERR_UNKNOWN_RUN = "unknown_run"
ERR_RUN_NOT_ACTIVE = "run_not_active"
ERR_NO_DYNAMICS = "no_dynamics"
ERR_STORE_CONFLICT = "store_conflict"
ERR_DRAINING = "draining"

#: Error code -> HTTP status.
ERROR_STATUS: Dict[str, int] = {
    ERR_INVALID_JSON: 400,
    ERR_BAD_REQUEST: 400,
    ERR_INVALID_SPEC: 422,
    ERR_UNKNOWN_RUN: 404,
    ERR_RUN_NOT_ACTIVE: 409,
    ERR_NO_DYNAMICS: 409,
    ERR_STORE_CONFLICT: 409,
    ERR_DRAINING: 503,
}


class ProtocolError(Exception):
    """A client-visible failure with a stable code and HTTP status."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = ERROR_STATUS.get(code, 500)

    def body(self) -> Dict[str, str]:
        return {"error": self.code, "message": self.message}


# ----------------------------------------------------------------- payloads
#: Fields a spec payload may carry; anything else is rejected loudly so a
#: typo ("dataest") cannot silently run the default experiment.
SPEC_FIELDS = ("algorithm", "dataset", "partition", "scale", "scenario",
               "seed", "label", "overrides")


def parse_spec_payload(payload: object) -> Tuple[ExperimentConfig, str]:
    """Build a validated ``(config, label)`` from a submit payload.

    The payload mirrors the fluent builder::

        {"algorithm": "aergia", "dataset": "fmnist", "partition": "noniid",
         "scale": "smoke", "scenario": "churn", "seed": 3,
         "overrides": {"rounds": 5}, "label": "my-run"}

    Every field is optional (the builder's defaults apply) and every value
    passes through the corresponding :class:`repro.api.ExperimentSpec`
    method, so validation failures carry the registry's own messages.
    """
    import repro.api as api

    if not isinstance(payload, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "spec payload must be a JSON object")
    unknown = sorted(set(payload) - set(SPEC_FIELDS))
    if unknown:
        raise ProtocolError(
            ERR_INVALID_SPEC,
            f"unknown spec field(s): {', '.join(unknown)}; "
            f"valid fields: {', '.join(SPEC_FIELDS)}",
        )
    try:
        spec = api.experiment(str(payload.get("algorithm", "fedavg")))
        if "dataset" in payload:
            spec = spec.dataset(str(payload["dataset"]))
        if "partition" in payload:
            spec = spec.partition(str(payload["partition"]))
        if "scale" in payload:
            spec = spec.scale(str(payload["scale"]))
        if "scenario" in payload:
            spec = spec.scenario(str(payload["scenario"]))
        if "seed" in payload:
            spec = spec.seed(int(payload["seed"]))
        if "label" in payload:
            spec = spec.label(str(payload["label"]))
        overrides = payload.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "overrides must be a JSON object")
        if overrides:
            spec = spec.override(**overrides)
        return spec.build(), spec.run_label
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        # The registry/builder error, verbatim: same message the library
        # raises, so server and library clients debug identically.
        raise ProtocolError(ERR_INVALID_SPEC, str(exc))


# ------------------------------------------------------------------ framing
def record_line(record: RoundRecord) -> str:
    """One streamed round, framed exactly like a ``rounds.jsonl`` line."""
    return json.dumps(_jsonable(dataclasses.asdict(record)), sort_keys=True)


def trailer_line(state: str, rounds: int, error: Optional[str] = None) -> str:
    """The stream's final control line (the only line with an ``event`` key)."""
    trailer: Dict[str, object] = {"event": "end", "state": state, "rounds": rounds}
    if error:
        trailer["error"] = error
    return json.dumps(trailer, sort_keys=True)


def parse_json_body(raw: bytes) -> object:
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(ERR_INVALID_JSON, "request body is not valid JSON")


def parse_jsonl_body(raw: bytes) -> list:
    """Parse a JSON-lines body (the ``/checkin`` batch format)."""
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError(ERR_INVALID_JSON, "request body is not valid UTF-8")
    items = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            items.append(json.loads(line))
        except ValueError:
            raise ProtocolError(ERR_INVALID_JSON, f"line {lineno} is not valid JSON")
    return items
