"""Service mode: the ``repro serve`` experiment server and its benchmark.

* :mod:`repro.serve.protocol` — wire format: spec payloads, JSONL round
  framing, machine-readable error codes.
* :mod:`repro.serve.session` — hosted runs multiplexed over a worker pool,
  with graceful checkpoint-drain and restart-resume.
* :mod:`repro.serve.server` — the HTTP front (``repro serve``).
* :mod:`repro.serve.loadgen` — the multi-process load generator behind
  ``repro bench --serve`` (writes ``BENCH_serve.json``).
"""

from repro.serve.protocol import ProtocolError, parse_spec_payload
from repro.serve.server import ExperimentServer, run_server
from repro.serve.session import HostedRun, SessionManager

__all__ = [
    "ExperimentServer",
    "HostedRun",
    "ProtocolError",
    "SessionManager",
    "parse_spec_payload",
    "run_server",
]
