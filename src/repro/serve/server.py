"""``repro serve`` — the long-lived experiment service.

A thin HTTP/1.1 front over :class:`repro.serve.session.SessionManager`:
clients submit validated experiment specs, stream their rounds live as
JSON-lines, feed device check-ins into running scenarios, and query or
cancel anything the server hosts — while every run persists through the
ordinary :class:`repro.api.RunStore`, so ``repro report`` (and every other
store consumer) works on a served results directory unchanged.

Endpoints::

    GET  /healthz                 liveness + drain state
    GET  /stats                   server counters (sessions, checkins, ...)
    GET  /runs                    active sessions + stored-run classification
    GET  /runs/<id>               one run's status (active first, then disk)
    POST /runs                    submit a spec: {"spec": {...}, "resume": bool}
    POST /runs/<id>/cancel        stop a hosted run, drop its checkpoint
    GET  /runs/<id>/rounds        stream rounds as JSONL (chunked); query
                                  params: from=<round index>, max=<count>
    POST /checkin                 JSONL batch of device availability events:
                                  {"run": id, "client": n, "online": bool,
                                   "delay": seconds?} per line

Graceful shutdown: SIGTERM (or SIGINT) drains — submissions start failing
with ``draining``, every in-flight run checkpoints at its next safe
boundary and stops, and the stored runs are left ``incomplete`` with a
checkpoint on disk.  A restarted server finds them via
:meth:`RunStore.scan` and resumes each one bitwise-identically.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.api.store import ROUNDS_NAME, RunStore
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_UNKNOWN_RUN,
    ProtocolError,
    parse_json_body,
    parse_jsonl_body,
    parse_spec_payload,
    record_line,
    trailer_line,
)
from repro.serve.session import SessionManager

#: Default wall-clock allowance for checkpointing everything on SIGTERM.
DRAIN_TIMEOUT_S = 120.0

#: Hard cap on request bodies; a Content-Length beyond this is rejected
#: before any bytes are read (the largest legitimate payload — a bulk
#: check-in batch — is a few hundred KB).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Set by ExperimentServer after construction.
    app: "ExperimentServer" = None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Without this, small keep-alive request/response pairs serialize on
    # the kernel's Nagle + delayed-ACK handshake (~40ms per round trip).
    disable_nagle_algorithm = True
    server: _ServeHTTPServer

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging at 100k+ req scale would dominate the server

    def _send_json(self, payload: object, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ProtocolError(ERR_BAD_REQUEST, "bad Content-Length header")
        if length < 0:
            raise ProtocolError(ERR_BAD_REQUEST, "bad Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"request body too large: {length} bytes (max {MAX_BODY_BYTES})",
            )
        if length == 0:
            return b""
        # A socket read may return fewer bytes than asked (segmented
        # delivery, slow client): keep reading until the declared length
        # or EOF.  A short body is a truncated request, not a valid one.
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        if remaining > 0:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"request body truncated: got {length - remaining} of {length} bytes",
            )
        return b"".join(chunks)

    def _chunk(self, text: str) -> None:
        data = text.encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")

    def _end_chunks(self) -> None:
        self.wfile.write(b"0\r\n\r\n")

    # -------------------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        app = self.server.app
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if method == "GET":
                if parts == ["healthz"]:
                    return self._send_json(
                        {"ok": True, "draining": app.manager.draining}
                    )
                if parts == ["stats"]:
                    return self._send_json(app.stats())
                if parts == ["runs"]:
                    return self._send_json(app.list_runs())
                if len(parts) == 2 and parts[0] == "runs":
                    return self._send_json(app.run_status(parts[1]))
                if len(parts) == 3 and parts[0] == "runs" and parts[2] == "rounds":
                    query = parse_qs(url.query)
                    return self._stream_rounds(
                        parts[1],
                        start=int(query.get("from", ["0"])[0]),
                        max_records=(
                            int(query["max"][0]) if "max" in query else None
                        ),
                    )
            elif method == "POST":
                if parts == ["runs"]:
                    return self._send_json(app.submit(self._read_body()), status=202)
                if len(parts) == 3 and parts[0] == "runs" and parts[2] == "cancel":
                    return self._send_json(app.manager.cancel(parts[1]))
                if parts == ["checkin"]:
                    return self._send_json(app.checkin(self._read_body()))
            raise ProtocolError(
                ERR_UNKNOWN_RUN if parts and parts[0] == "runs" else ERR_BAD_REQUEST,
                f"no route {method} {url.path}",
            )
        except ProtocolError as exc:
            self._send_json(exc.body(), status=exc.status)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # the server must outlive any one request
            self._send_json({"error": "internal", "message": str(exc)}, status=500)

    # ------------------------------------------------------------ streaming
    def _stream_rounds(self, run_id: str, start: int, max_records: Optional[int]) -> None:
        app = self.server.app
        hosted = app.manager._sessions.get(run_id)
        stored = None
        if hosted is None:
            stored = app.store.get(run_id)
            if stored is None:
                raise ProtocolError(ERR_UNKNOWN_RUN, f"no run {run_id!r}")

        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        sent = 0
        try:
            if hosted is not None:
                index = max(0, start)
                while max_records is None or sent < max_records:
                    record = hosted.wait_record(index)
                    if record is None:
                        break
                    self._chunk(record_line(record) + "\n")
                    index += 1
                    sent += 1
                with hosted.cond:
                    state, total, error = hosted.state, len(hosted.records), hosted.error
                self._chunk(trailer_line(state, total, error) + "\n")
            else:
                # Stored run: relay the rounds.jsonl lines byte-for-byte.
                total = 0
                with open(stored.path / ROUNDS_NAME) as rounds:
                    for lineno, line in enumerate(rounds):
                        if lineno < start:
                            total += 1
                            continue
                        if max_records is not None and sent >= max_records:
                            total += 1
                            continue
                        self._chunk(line if line.endswith("\n") else line + "\n")
                        sent += 1
                        total += 1
                self._chunk(trailer_line(stored.status, total) + "\n")
            self._end_chunks()
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.close_connection = True


class ExperimentServer:
    """The assembled service: store + session manager + HTTP front."""

    def __init__(
        self,
        results_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        checkpoint_interval: Optional[int] = 1,
    ) -> None:
        self.store = RunStore(results_dir)
        self.manager = SessionManager(
            self.store, workers=workers, checkpoint_interval=checkpoint_interval
        )
        self._httpd = _ServeHTTPServer((host, port), _Handler)
        self._httpd.app = self
        self._serving = threading.Event()

    # ------------------------------------------------------------ lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._serving.set()
        self._httpd.serve_forever(poll_interval=0.1)

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def drain(self, timeout: float = DRAIN_TIMEOUT_S) -> Dict[str, object]:
        """Checkpoint everything in flight, then stop the HTTP loop."""
        summary = self.manager.drain(timeout)
        self._stop_http()
        return summary

    def close(self) -> None:
        self._stop_http()
        self.manager._pool.shutdown(wait=False)

    def _stop_http(self) -> None:
        # shutdown() blocks on an event only serve_forever sets; calling it
        # on a server that never served would hang forever.
        if self._serving.is_set():
            self._httpd.shutdown()
        self._httpd.server_close()

    # ------------------------------------------------------------- handlers
    def submit(self, raw: bytes) -> Dict[str, object]:
        payload = parse_json_body(raw)
        if not isinstance(payload, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "submit body must be a JSON object")
        config, label = parse_spec_payload(payload.get("spec", {}))
        hosted, created = self.manager.submit(
            config, label=label, resume=bool(payload.get("resume", False))
        )
        doc = hosted.snapshot()
        doc["created"] = created
        return doc

    def checkin(self, raw: bytes) -> Dict[str, object]:
        """Apply a JSONL batch of device availability events.

        Per-event errors don't fail the batch: the response counts what
        was admitted and reports the first few rejections, so a fleet of
        devices checking in at high rate is never gated on its slowest
        (or most confused) member.
        """
        accepted = 0
        rejected = 0
        errors = []
        for item in parse_jsonl_body(raw):
            try:
                if not isinstance(item, dict):
                    raise ProtocolError(ERR_BAD_REQUEST, "checkin line must be an object")
                self.manager.checkin(
                    str(item.get("run", "")),
                    int(item.get("client", -1)),
                    bool(item.get("online", True)),
                    float(item.get("delay", 0.0)),
                )
                accepted += 1
            except ProtocolError as exc:
                rejected += 1
                if len(errors) < 8:
                    errors.append(exc.body())
            except (TypeError, ValueError) as exc:
                rejected += 1
                if len(errors) < 8:
                    errors.append({"error": ERR_BAD_REQUEST, "message": str(exc)})
        return {"accepted": accepted, "rejected": rejected, "errors": errors}

    def run_status(self, run_id: str) -> Dict[str, object]:
        hosted = self.manager._sessions.get(run_id)
        if hosted is not None:
            return hosted.snapshot()
        stored = None
        try:
            from repro.api.store import StoredRun

            path = self.store.run_dir(run_id)
            if (path / "manifest.json").exists():
                stored = StoredRun(path)
        except (OSError, ValueError):
            stored = None
        if stored is None:
            raise ProtocolError(ERR_UNKNOWN_RUN, f"no run {run_id!r}")
        return {
            "run_id": stored.config_hash,
            "label": stored.label,
            "state": stored.status,
            "rounds": stored.manifest.get("num_rounds"),
            "has_checkpoint": stored.has_checkpoint,
            "summary": stored.summary,
        }

    def list_runs(self) -> Dict[str, object]:
        classified = self.store.scan()
        return {
            "active": [hosted.snapshot() for hosted in self.manager.sessions()],
            "stored": {
                bucket: [
                    {
                        "run_id": run.config_hash,
                        "label": run.label,
                        "state": run.status,
                        "rounds": run.manifest.get("num_rounds"),
                    }
                    for run in runs
                ]
                for bucket, runs in classified.items()
            },
        }

    def stats(self) -> Dict[str, object]:
        stats = self.manager.stats()
        stats["url"] = self.url
        stats["results_dir"] = str(self.store.root)
        return stats


def run_server(
    results_dir: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 4,
    checkpoint_interval: Optional[int] = 1,
    resume: bool = True,
    drain_timeout: float = DRAIN_TIMEOUT_S,
) -> int:
    """The ``repro serve`` loop: serve until SIGTERM/SIGINT, then drain."""
    server = ExperimentServer(
        results_dir,
        host=host,
        port=port,
        workers=workers,
        checkpoint_interval=checkpoint_interval,
    )
    resumed = server.manager.resume_all() if resume else []
    for hosted in resumed:
        print(f"repro serve: resuming {hosted.label} ({hosted.run_id[:12]})", file=sys.stderr)
    # The machine-readable line loadgen and the CI smoke step parse; stdout
    # and flushed so a pipe reader sees it before the first request.
    print(f"repro serve: listening on {server.url} (results: {server.store.root})", flush=True)

    drained = threading.Event()

    def _on_signal(signum, frame) -> None:
        if drained.is_set():
            return
        drained.set()
        threading.Thread(
            target=lambda: server.drain(drain_timeout), daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        if not drained.is_set():
            drained.set()
            server.drain(drain_timeout)
    summary = {hosted.run_id: hosted.state for hosted in server.manager.sessions()}
    if summary:
        counts: Dict[str, int] = {}
        for state in summary.values():
            counts[state] = counts.get(state, 0) + 1
        rendered = ", ".join(f"{state}={count}" for state, count in sorted(counts.items()))
        print(f"repro serve: drained ({rendered})", file=sys.stderr)
    return 0
