"""Deadline-based straggler mitigation (the motivation baseline of Figure 1).

The naive way to bound the duration of a round is to impose a deadline:
clients that have not returned their update when the deadline expires are
simply excluded from the aggregation.  Figures 1(b) and 1(c) of the paper
show that this effectively caps the training time but severely degrades
accuracy, especially with non-IID data — which motivates Aergia's
freeze-and-offload design.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fl.federator import BaseFederator, RoundState
from repro.registry import register_federator


@register_federator("deadline")
class DeadlineFederator(BaseFederator):
    """FedAvg with a per-round deadline after which late clients are dropped.

    Since the round-engine refactor this baseline is a pure *policy*: it
    only supplies the deadline value.  The engine itself arms the deadline
    timer, drops the stragglers when it fires, excludes them from the
    aggregation weights and finalises the round with whatever arrived.
    """

    algorithm_name = "deadline"

    def round_deadline_seconds(self) -> Optional[float]:
        #: ``None`` means an infinite deadline, i.e. plain FedAvg behaviour.
        return self.config.deadline_seconds

    @property
    def deadline_seconds(self) -> Optional[float]:
        """The configured deadline (kept for tests and diagnostics)."""
        return self.config.deadline_seconds

    @property
    def drop_rate(self) -> float:
        """Fraction of selected clients dropped so far (diagnostics)."""
        selected = sum(len(r.selected_clients) for r in self.result.rounds)
        dropped = sum(len(r.dropped_clients) for r in self.result.rounds)
        return dropped / selected if selected else 0.0


def deadline_sweep_values() -> Sequence[Optional[float]]:
    """The deadline values used by Figures 1(b) and 1(c): ∞, 70, 50, 30, 10 s."""
    return (None, 70.0, 50.0, 30.0, 10.0)


def scaled_deadline(seconds: Optional[float], scale: float) -> Optional[float]:
    """Scale a paper deadline to the reproduction's virtual-time units."""
    if seconds is None:
        return None
    if scale <= 0:
        raise ValueError("scale must be positive")
    return float(seconds) * scale


def drop_fraction(results: Sequence[RoundState]) -> float:  # pragma: no cover - helper for notebooks
    """Fraction of clients dropped across a set of round states."""
    selected = sum(len(state.selected_clients) for state in results)
    dropped = sum(len(state.dropped_clients) for state in results)
    return dropped / selected if selected else 0.0
