"""Deadline-based straggler mitigation (the motivation baseline of Figure 1).

The naive way to bound the duration of a round is to impose a deadline:
clients that have not returned their update when the deadline expires are
simply excluded from the aggregation.  Figures 1(b) and 1(c) of the paper
show that this effectively caps the training time but severely degrades
accuracy, especially with non-IID data — which motivates Aergia's
freeze-and-offload design.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fl.config import ExperimentConfig
from repro.fl.federator import BaseFederator, RoundState
from repro.nn.model import SplitCNN
from repro.simulation.cluster import SimulatedCluster


class DeadlineFederator(BaseFederator):
    """FedAvg with a per-round deadline after which late clients are dropped."""

    algorithm_name = "deadline"

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExperimentConfig,
        global_model: SplitCNN,
        x_test: np.ndarray,
        y_test: np.ndarray,
        client_ids: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(cluster, config, global_model, x_test, y_test, client_ids=client_ids)
        #: ``None`` means an infinite deadline, i.e. plain FedAvg behaviour.
        self.deadline_seconds = config.deadline_seconds

    def on_round_started(self, state: RoundState) -> None:
        if self.deadline_seconds is None:
            return
        round_number = state.round_number

        def expire() -> None:
            self._expire_round(round_number)

        self.env.schedule(self.deadline_seconds, expire)

    def _expire_round(self, round_number: int) -> None:
        state = self._round_state
        if state is None or state.finalized or state.round_number != round_number:
            return
        missing = [cid for cid in state.selected_clients if cid not in state.results]
        state.dropped_clients.extend(missing)
        # Aggregate whatever arrived in time.  If nothing arrived, the global
        # model is left unchanged for this round (the paper's federator also
        # keeps the previous model in that case).
        self._finalize_round(state)

    def round_complete(self, state: RoundState) -> bool:
        # Without a deadline the behaviour is plain FedAvg; with one, the
        # round also completes early when every client made it in time.
        return super().round_complete(state)

    def collect_contributions(self, state: RoundState):
        contributions = []
        for client_id in sorted(state.results):
            if client_id in state.dropped_clients:
                continue
            result = state.results[client_id]
            contributions.append((result.weights, result.num_samples, result.num_steps))
        return contributions

    @property
    def drop_rate(self) -> float:
        """Fraction of selected clients dropped so far (diagnostics)."""
        selected = sum(len(r.selected_clients) for r in self.result.rounds)
        dropped = sum(len(r.dropped_clients) for r in self.result.rounds)
        return dropped / selected if selected else 0.0


def deadline_sweep_values() -> Sequence[Optional[float]]:
    """The deadline values used by Figures 1(b) and 1(c): ∞, 70, 50, 30, 10 s."""
    return (None, 70.0, 50.0, 30.0, 10.0)


def scaled_deadline(seconds: Optional[float], scale: float) -> Optional[float]:
    """Scale a paper deadline to the reproduction's virtual-time units."""
    if seconds is None:
        return None
    if scale <= 0:
        raise ValueError("scale must be positive")
    return float(seconds) * scale


def drop_fraction(results: Sequence[RoundState]) -> float:  # pragma: no cover - helper for notebooks
    """Fraction of clients dropped across a set of round states."""
    selected = sum(len(state.selected_clients) for state in results)
    dropped = sum(len(state.dropped_clients) for state in results)
    return dropped / selected if selected else 0.0
