"""FedAvg baseline (McMahan et al., AISTATS 2017).

FedAvg is the reference synchronous algorithm: random client selection,
multiple local SGD steps per round, and data-size-weighted averaging of the
client models.  The implementation lives in
:class:`repro.fl.federator.FedAvgFederator` because every other federator
specialises it; this module re-exports it so that the baselines package
presents a uniform surface.
"""

from __future__ import annotations

from repro.fl.federator import FedAvgFederator

__all__ = ["FedAvgFederator"]
