"""FedSGD baseline (McMahan et al., 2016).

FedSGD is the communication-heavy ancestor of FedAvg: every round each
selected client performs a *single* local step on its data and the
federator averages the resulting models (equivalently, the gradients).
It is included for completeness of the background section (§2.2); the
paper's evaluation focuses on the multi-step algorithms.
"""

from __future__ import annotations

from repro.fl.federator import BaseFederator
from repro.registry import register_federator


@register_federator("fedsgd")
class FedSGDFederator(BaseFederator):
    """FedAvg with exactly one local update per client per round."""

    algorithm_name = "fedsgd"

    def total_batches_for(self, client_id: int, round_number: int) -> int:
        return 1
