"""Asynchronous federation: FedAsync (Xie et al., 2019).

The synchronous federators bound every round by their slowest participant.
Asynchronous federation removes the barrier entirely: the server hands each
client its own training task and folds updates into the global model *as
they arrive*, weighted down by their **staleness** (how many server updates
happened since the client's model snapshot was taken).  Fast clients cycle
many times while a straggler computes once, so heterogeneity costs
throughput instead of latency — the other classic answer to stragglers next
to Aergia's offloading.

:class:`AsyncFederatorBase` implements the shared machinery on top of the
same message/network substrate as the synchronous engine:

* a *dispatch loop* that keeps up to ``config.effective_async_concurrency``
  clients training concurrently, re-dispatching each client as soon as its
  update arrives (and re-engaging clients when they rejoin after churn);
* *staleness tracking* — every dispatch records the server's model version;
* *virtual rounds* for reporting: one :class:`RoundRecord` is emitted every
  ``updates_per_record`` applied updates so results stay comparable with
  the synchronous algorithms (same number of records, same evaluation
  cadence in terms of client work);
* a fixed *update budget* (``rounds x updates_per_record``) so every run
  terminates after the same amount of client work as its synchronous
  counterpart.

:class:`FedAsyncFederator` applies every update immediately::

    w_global <- (1 - a_s) * w_global + a_s * w_client,
    a_s = fedasync_alpha * (1 + staleness) ** -fedasync_staleness_power

:mod:`repro.baselines.fedbuff` builds buffered aggregation (FedBuff) on the
same base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.aggregation import average_metric, flatten_weights, unflatten_weights, weight_spec
from repro.fl.config import ExperimentConfig
from repro.fl.federator import BaseFederator
from repro.fl.messages import MessageKind, TrainingResult
from repro.fl.metrics import RoundRecord
from repro.nn.model import SplitCNN
from repro.registry import register_federator
from repro.simulation.cluster import FEDERATOR_ID, SimulatedCluster
from repro.simulation.network import Message, weights_wire_bytes


@dataclass
class DispatchRecord:
    """Book-keeping for one training task handed to a client."""

    task_id: int
    model_version: int
    #: Flat snapshot of the global model at dispatch time (only kept when
    #: the algorithm aggregates deltas, i.e. FedBuff).
    snapshot: Optional[np.ndarray] = None


class AsyncFederatorBase(BaseFederator):
    """Event-driven asynchronous federator base.

    Subclasses implement :meth:`apply_update` (and may override
    :meth:`needs_snapshot` when they aggregate deltas against the
    dispatch-time model).
    """

    algorithm_name = "async-base"

    #: The dispatch loop is self-sustaining: the checkpoint's restored
    #: in-flight tasks re-trigger dispatching, no bootstrap needed.
    checkpoint_bootstraps_round = False

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExperimentConfig,
        global_model: SplitCNN,
        x_test: np.ndarray,
        y_test: np.ndarray,
        client_ids: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(cluster, config, global_model, x_test, y_test, client_ids=client_ids)
        self._spec = weight_spec(self.global_weights)
        self.global_flat = flatten_weights(self.global_weights, self._spec)
        #: Server model version; bumped on every aggregation.
        self.model_version = 0
        self._task_counter = 0
        self._in_flight: Dict[int, DispatchRecord] = {}
        self._updates_applied = 0
        #: Applied updates per emitted RoundRecord (evaluation cadence).
        self.updates_per_record = max(1, self.updates_per_virtual_round())
        self._updates_budget = config.rounds * self.updates_per_record
        self.concurrency = min(
            config.effective_async_concurrency, len(self.client_ids)
        )
        # Per-window accumulators for the next RoundRecord.
        self._window_start = 0.0
        self._window_contributors: List[int] = []
        self._window_losses: List[float] = []
        self._window_sizes: List[float] = []
        self._window_dropped: List[int] = []
        #: Staleness of every applied update (diagnostics / tests).
        self.staleness_history: List[int] = []

    # ----------------------------------------------------------------- policy
    def updates_per_virtual_round(self) -> int:
        """Applied updates per reported round (default: the per-round client
        count, matching the synchronous algorithms' work per round)."""
        return self.config.effective_clients_per_round

    def needs_snapshot(self) -> bool:
        """Whether dispatches must snapshot the global model (delta-based
        aggregation, e.g. FedBuff)."""
        return False

    def apply_update(self, result: TrainingResult, dispatch: DispatchRecord) -> None:
        """Fold one client update into the server state."""
        raise NotImplementedError

    def staleness_of(self, dispatch: DispatchRecord) -> int:
        """Server updates since the dispatch's model snapshot was taken."""
        return self.model_version - dispatch.model_version

    # -------------------------------------------------------------- lifecycle
    @property
    def finished(self) -> bool:
        return self._updates_applied >= self._updates_budget

    def _start_round(self) -> None:
        """Bootstrap the dispatch loop (called once via ``start()``)."""
        self._window_start = self.env.now
        pool = self.selectable_clients()
        if not pool:
            self._round_pending = True
            return
        self._round_pending = False
        # Deterministic initial spread over the online clients.
        order = [int(cid) for cid in self._rng.permutation(pool)]
        for client_id in order[: self.concurrency]:
            self._dispatch(client_id)

    def _dispatch(self, client_id: int) -> None:
        """Hand one training task (the current global model) to a client."""
        if (
            self.finished
            or client_id in self._in_flight
            or not self.cluster.is_online(client_id)
            or not self.client_has_data(client_id)
            or len(self._in_flight) >= self.concurrency
        ):
            return
        if self.client_pool is not None:
            # Pin the in-flight set plus the new dispatchee: the async loop
            # has no round boundary, so the pinned set tracks whoever is
            # currently training.
            self.client_pool.ensure_active([*self._in_flight, client_id])
        self._task_counter += 1
        task_id = self._task_counter
        self._in_flight[client_id] = DispatchRecord(
            task_id=task_id,
            model_version=self.model_version,
            snapshot=self.global_flat.copy() if self.needs_snapshot() else None,
        )
        payload = {
            "weights": unflatten_weights(self.global_flat, self._spec),
            "total_batches": self.total_batches_for(client_id, task_id),
            "profile_batches": 0,
            "report_profile": False,
        }
        self.transport.send(
            FEDERATOR_ID,
            client_id,
            MessageKind.TRAIN_REQUEST,
            payload=payload,
            round_number=task_id,
            size_bytes=weights_wire_bytes(self.global_flat),
        )

    # --------------------------------------------------------------- messaging
    def handle_message(self, message: Message) -> None:
        if message.kind != MessageKind.TRAIN_RESULT:
            return  # async federation uses no profiling/offloading messages
        result: TrainingResult = message.payload
        dispatch = self._in_flight.get(result.client_id)
        if dispatch is None or dispatch.task_id != message.round_number:
            return  # stale task (client was re-dispatched after a blip)
        del self._in_flight[result.client_id]
        if self.finished:
            return  # budget exhausted while this update was in flight
        self.apply_update(result, dispatch)
        self._note_update(result)
        self._dispatch(result.client_id)
        if self.checkpoint_hook is not None:
            # After the re-dispatch: the captured in-flight set then includes
            # the task this update just triggered, so the snapshot is a
            # complete cut of the dispatch loop.
            self.checkpoint_hook()

    def _note_update(self, result: TrainingResult) -> None:
        self._updates_applied += 1
        self._window_contributors.append(result.client_id)
        self._window_losses.append(result.train_loss)
        self._window_sizes.append(result.num_samples)
        if self._updates_applied % self.updates_per_record == 0:
            self._emit_record()

    # ----------------------------------------------------- dropouts & rejoins
    def on_client_dropout(self, client_id: int) -> None:
        # The client's in-flight task died with it (the network already
        # failed any message carrying its result).
        if self._in_flight.pop(client_id, None) is not None:
            self._window_dropped.append(client_id)
            # The dropout freed concurrency capacity: re-engage idle
            # online clients so throughput survives churn.
            for idle_id in self.selectable_clients():
                if self.finished or len(self._in_flight) >= self.concurrency:
                    break
                self._dispatch(idle_id)

    def on_client_rejoin(self, client_id: int) -> None:
        if self._round_pending:
            self._round_pending = False
            self._window_start = self.env.now
        self._dispatch(client_id)

    def _on_transport_expiry(self, entry: dict) -> None:
        """A task message exhausted its retransmissions: abandon the task.

        Mirrors :meth:`on_client_dropout` — the task died in transit rather
        than with its client — and re-offers the freed concurrency slot to
        every idle online client (including the affected one, which simply
        receives a fresh task with a new id).
        """
        if entry["kind"] not in (MessageKind.TRAIN_REQUEST, MessageKind.TRAIN_RESULT):
            return
        client_id = (
            entry["recipient"] if entry["sender"] == FEDERATOR_ID else entry["sender"]
        )
        dispatch = self._in_flight.get(client_id)
        if dispatch is None or dispatch.task_id != entry["round_number"]:
            return  # the task was already superseded or completed
        del self._in_flight[client_id]
        self._window_dropped.append(client_id)
        for idle_id in self.selectable_clients():
            if self.finished or len(self._in_flight) >= self.concurrency:
                break
            self._dispatch(idle_id)

    # ------------------------------------------------------ checkpoint seams
    def _capture_extra_state(self) -> Optional[dict]:
        return {
            "global_flat": self.global_flat.copy(),
            "model_version": self.model_version,
            "task_counter": self._task_counter,
            "in_flight": {
                client_id: (
                    record.task_id,
                    record.model_version,
                    None if record.snapshot is None else record.snapshot.copy(),
                )
                for client_id, record in self._in_flight.items()
            },
            "updates_applied": self._updates_applied,
            "window_start": self._window_start,
            "window_contributors": list(self._window_contributors),
            "window_losses": list(self._window_losses),
            "window_sizes": list(self._window_sizes),
            "window_dropped": list(self._window_dropped),
            "staleness_history": list(self.staleness_history),
        }

    def _restore_extra_state(self, extra: dict) -> None:
        self.global_flat = np.array(extra["global_flat"], copy=True)
        self.model_version = int(extra["model_version"])
        self._task_counter = int(extra["task_counter"])
        self._in_flight = {
            client_id: DispatchRecord(
                task_id=task_id,
                model_version=model_version,
                snapshot=None if snapshot is None else np.array(snapshot, copy=True),
            )
            for client_id, (task_id, model_version, snapshot) in extra["in_flight"].items()
        }
        self._updates_applied = int(extra["updates_applied"])
        self._window_start = extra["window_start"]
        self._window_contributors = list(extra["window_contributors"])
        self._window_losses = list(extra["window_losses"])
        self._window_sizes = list(extra["window_sizes"])
        self._window_dropped = list(extra["window_dropped"])
        self.staleness_history = list(extra["staleness_history"])

    # ------------------------------------------------------------- reporting
    def _emit_record(self) -> None:
        self.global_weights = unflatten_weights(self.global_flat, self._spec)
        self.global_model.set_weights(self.global_weights)
        test_loss, test_accuracy = self.global_model.evaluate(self.x_test, self.y_test)
        contributors = sorted(set(self._window_contributors))
        record = RoundRecord(
            round_number=self._rounds_completed + 1,
            start_time=self._window_start,
            end_time=self.env.now,
            selected_clients=contributors,
            completed_clients=contributors,
            dropped_clients=sorted(set(self._window_dropped)),
            num_offloads=0,
            test_accuracy=test_accuracy,
            test_loss=test_loss,
            mean_train_loss=average_metric(self._window_losses, self._window_sizes),
        )
        self._record_network(record)
        self.result.add_round(record)
        self.result.setup_time = self.setup_time
        self._rounds_completed += 1
        self._window_start = self.env.now
        self._window_contributors = []
        self._window_losses = []
        self._window_sizes = []
        self._window_dropped = []


@register_federator("fedasync")
class FedAsyncFederator(AsyncFederatorBase):
    """FedAsync: apply every update on arrival, discounted by staleness."""

    algorithm_name = "fedasync"

    def mixing_weight(self, staleness: int) -> float:
        """Polynomial staleness discount of Xie et al. (2019)."""
        alpha = self.config.fedasync_alpha
        power = self.config.fedasync_staleness_power
        return float(alpha * (1.0 + staleness) ** -power)

    def apply_update(self, result: TrainingResult, dispatch: DispatchRecord) -> None:
        staleness = self.staleness_of(dispatch)
        self.staleness_history.append(staleness)
        weight = self.mixing_weight(staleness)
        update = result.flat_weights
        if update is None:  # pragma: no cover - clients always attach flats
            update = flatten_weights(result.weights, self._spec)
        self.global_flat = (1.0 - weight) * self.global_flat + weight * update
        self.model_version += 1
