"""TiFL baseline (Chai et al., HPDC 2020).

TiFL mitigates stragglers at the *selection* level: clients are grouped
into tiers of similar speed by an offline profiling pass, and in every
round the federator picks one tier and selects clients only from it, so
the clients of a round finish at roughly the same time.  A credit system
bounds how often each tier can be picked so that slow tiers (and their
possibly unique data) still contribute.

Reproduction notes
------------------
* The offline profiling pass is simulated: each client's per-batch time is
  estimated from the cost model, and the profiling duration (every client
  training ``profiling_batches`` batches in parallel) is charged to the
  experiment's setup time, matching the paper's definition of the overall
  training time ("we add the time required for any pre-training
  requirements such as offline profiling").
* Tier selection follows TiFL's adaptive credit scheme in its simplest
  form: tiers receive equal credits and are drawn with a probability that
  favours faster tiers, skipping tiers whose credits are exhausted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.config import ExperimentConfig
from repro.fl.federator import BaseFederator
from repro.fl.selection import select_random
from repro.registry import register_federator
from repro.nn.model import SplitCNN
from repro.simulation.cluster import SimulatedCluster


@register_federator("tifl")
class TiFLFederator(BaseFederator):
    """Tier-based client selection."""

    algorithm_name = "tifl"

    #: Number of batches each client runs during the offline profiling pass.
    offline_profiling_batches = 20

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExperimentConfig,
        global_model: SplitCNN,
        x_test: np.ndarray,
        y_test: np.ndarray,
        client_batch_seconds: Optional[Dict[int, float]] = None,
        client_ids: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(cluster, config, global_model, x_test, y_test, client_ids=client_ids)
        if client_batch_seconds is None:
            # Fall back to the cluster's resource profiles (equivalent to a
            # noiseless offline profiling pass on a unit workload).
            client_batch_seconds = {
                client_id: 1.0 / cluster.profile(client_id).speed_fraction
                for client_id in self.client_ids
            }
        self.client_batch_seconds = dict(client_batch_seconds)
        self.num_tiers = max(1, min(config.tifl_num_tiers, len(self.client_ids)))
        self.tiers = self._build_tiers()
        self._tier_credits = [max(1, config.rounds // self.num_tiers + 1)] * self.num_tiers

        # Offline profiling happens before round 1 and is charged to the
        # total training time: all clients profile in parallel, so the cost
        # is the slowest client's profiling duration.
        slowest = max(self.client_batch_seconds[cid] for cid in self.client_ids)
        self.setup_time = slowest * self.offline_profiling_batches

    # ------------------------------------------------------------------ tiers
    def _build_tiers(self) -> List[List[int]]:
        """Group clients into ``num_tiers`` tiers of similar speed."""
        ordered = sorted(self.client_ids, key=lambda cid: self.client_batch_seconds[cid])
        tiers = [list(chunk) for chunk in np.array_split(ordered, self.num_tiers) if len(chunk)]
        return [[int(c) for c in tier] for tier in tiers]

    def tier_of(self, client_id: int) -> int:
        """Index of the tier a client belongs to (0 = fastest)."""
        for index, tier in enumerate(self.tiers):
            if client_id in tier:
                return index
        raise KeyError(f"client {client_id} is not in any tier")

    def _pick_tier(self) -> int:
        available = [i for i, credits in enumerate(self._tier_credits) if credits > 0]
        if not available:
            # All credits exhausted: reset them, as TiFL does between epochs.
            self._tier_credits = [1] * self.num_tiers
            available = list(range(self.num_tiers))
        # Favour faster tiers (smaller index) with geometrically decreasing
        # probabilities, which mirrors TiFL's bias towards fast tiers while
        # keeping slow tiers reachable.
        weights = np.array([2.0 ** -(i) for i in available])
        probabilities = weights / weights.sum()
        tier = int(self._rng.choice(available, p=probabilities))
        self._tier_credits[tier] -= 1
        return tier

    # ------------------------------------------------------ checkpoint seams
    def _capture_extra_state(self) -> Optional[dict]:
        # Tiers and setup time are recomputed deterministically by the
        # constructor; only the credit ledger mutates across rounds.
        return {"tier_credits": list(self._tier_credits)}

    def _restore_extra_state(self, extra: dict) -> None:
        self._tier_credits = list(extra["tier_credits"])

    # -------------------------------------------------------------- selection
    def select_clients(self, round_number: int) -> List[int]:
        tier_index = self._pick_tier()
        tier = [
            cid
            for cid in self.tiers[tier_index]
            if self.cluster.is_online(cid) and self.client_has_data(cid)
        ]
        if not tier:
            # The whole tier is offline (churn): fall back to whoever is up.
            tier = self.selectable_clients()
        per_round = min(self.config.effective_clients_per_round, len(tier))
        if per_round >= len(tier):
            return sorted(tier)
        return select_random(tier, per_round, rng=self._rng)
