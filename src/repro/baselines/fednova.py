"""FedNova baseline (Wang et al., NeurIPS 2020).

FedNova addresses the *objective inconsistency* that arises when clients
perform different numbers of local steps: clients that run more steps push
the plain FedAvg average further in their direction.  FedNova normalises
every client's update by its number of local steps before averaging and
rescales the aggregate by the effective number of steps
(:func:`repro.fl.aggregation.fednova_aggregate`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.fl.aggregation import (
    fednova_aggregate,
    fednova_aggregate_flat,
    flatten_weights,
    unflatten_weights,
    weight_spec,
)
from repro.fl.federator import BaseFederator, RoundState
from repro.registry import register_federator

Weights = Dict[str, np.ndarray]


@register_federator("fednova")
class FedNovaFederator(BaseFederator):
    """Federator applying FedNova's normalised aggregation rule."""

    algorithm_name = "fednova"

    def aggregate(
        self, state: RoundState, contributions: List[Tuple[Weights, int, int]]
    ) -> Weights:
        rows = self.flat_contributions(state, contributions)
        if rows is not None:
            # Hot path: normalised averaging over the clients' flat vectors.
            spec = weight_spec(self.global_weights)
            new_vector = fednova_aggregate_flat(
                flatten_weights(self.global_weights, spec),
                rows,
                [num_samples for _, num_samples, _ in contributions],
                [num_steps for _, _, num_steps in contributions],
            )
            return unflatten_weights(new_vector, spec)
        return fednova_aggregate(
            self.global_weights,
            [(weights, num_samples, num_steps) for weights, num_samples, num_steps in contributions],
        )
