"""FedNova baseline (Wang et al., NeurIPS 2020).

FedNova addresses the *objective inconsistency* that arises when clients
perform different numbers of local steps: clients that run more steps push
the plain FedAvg average further in their direction.  FedNova normalises
every client's update by its number of local steps before averaging and
rescales the aggregate by the effective number of steps
(:func:`repro.fl.aggregation.fednova_aggregate`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.fl.aggregation import fednova_aggregate
from repro.fl.federator import BaseFederator, RoundState

Weights = Dict[str, np.ndarray]


class FedNovaFederator(BaseFederator):
    """Federator applying FedNova's normalised aggregation rule."""

    algorithm_name = "fednova"

    def aggregate(
        self, state: RoundState, contributions: List[Tuple[Weights, int, int]]
    ) -> Weights:
        return fednova_aggregate(
            self.global_weights,
            [(weights, num_samples, num_steps) for weights, num_samples, num_steps in contributions],
        )
