"""Baseline federated-learning algorithms the paper compares against.

The evaluation (§5) compares Aergia to four published systems plus the
naive deadline-based straggler mitigation used in the motivation figures:

* :mod:`repro.baselines.fedavg` — FedAvg (re-exported from
  :mod:`repro.fl.federator`, where it doubles as the base implementation),
* :mod:`repro.baselines.fedprox` — FedProx (proximal local objective),
* :mod:`repro.baselines.fednova` — FedNova (normalised aggregation),
* :mod:`repro.baselines.fedsgd` — FedSGD (single-step local updates),
* :mod:`repro.baselines.tifl` — TiFL (tier-based client selection),
* :mod:`repro.baselines.deadline` — per-round deadlines that drop late
  clients (Figures 1(b) and 1(c)).

Beyond the paper, two *asynchronous* federators extend the straggler
comparison along the scenario-dynamics axis:

* :mod:`repro.baselines.fedasync` — FedAsync (staleness-weighted updates
  applied as they arrive),
* :mod:`repro.baselines.fedbuff` — FedBuff (buffered asynchronous
  aggregation of K staleness-discounted deltas).
"""

from repro.baselines.fedavg import FedAvgFederator
from repro.baselines.fedprox import FedProxFederator
from repro.baselines.fednova import FedNovaFederator
from repro.baselines.fedsgd import FedSGDFederator
from repro.baselines.tifl import TiFLFederator
from repro.baselines.deadline import DeadlineFederator
from repro.baselines.fedasync import AsyncFederatorBase, FedAsyncFederator
from repro.baselines.fedbuff import FedBuffFederator

__all__ = [
    "FedAvgFederator",
    "FedProxFederator",
    "FedNovaFederator",
    "FedSGDFederator",
    "TiFLFederator",
    "DeadlineFederator",
    "AsyncFederatorBase",
    "FedAsyncFederator",
    "FedBuffFederator",
]
