"""FedBuff: buffered asynchronous aggregation (Nguyen et al., AISTATS 2022).

Pure FedAsync applies every client update the moment it arrives, which
makes the global trajectory very sensitive to a single stale straggler.
FedBuff interposes a small server-side **buffer**: client *deltas* (update
minus the model the client started from) accumulate until ``K`` of them
arrived, then one aggregation step folds the staleness-discounted average
of the buffer into the global model.  The server still never blocks on
stragglers — the buffer fills with whichever clients finish first — but
each aggregation mixes several quasi-independent directions, recovering
much of synchronous FedAvg's stability.

The buffer size ``K`` comes from ``config.effective_fedbuff_buffer_size``
(default: half the per-round client count); one aggregation (buffer flush)
advances the server's model version, and a :class:`RoundRecord` is emitted
per ``updates_per_record`` applied updates exactly like FedAsync, so the
reported round count matches the synchronous algorithms.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.fedasync import AsyncFederatorBase, DispatchRecord
from repro.fl.aggregation import flatten_weights
from repro.fl.messages import TrainingResult
from repro.registry import register_federator


@register_federator("fedbuff")
class FedBuffFederator(AsyncFederatorBase):
    """Asynchronous federator aggregating buffered, staleness-weighted deltas."""

    algorithm_name = "fedbuff"

    def needs_snapshot(self) -> bool:
        # Deltas are taken against the model each client actually received.
        return True

    @property
    def buffer_size(self) -> int:
        return min(self.config.effective_fedbuff_buffer_size, len(self.client_ids))

    def staleness_discount(self, staleness: int) -> float:
        """The same polynomial discount family as FedAsync."""
        return float((1.0 + staleness) ** -self.config.fedasync_staleness_power)

    def apply_update(self, result: TrainingResult, dispatch: DispatchRecord) -> None:
        staleness = self.staleness_of(dispatch)
        self.staleness_history.append(staleness)
        update = result.flat_weights
        if update is None:  # pragma: no cover - clients always attach flats
            update = flatten_weights(result.weights, self._spec)
        assert dispatch.snapshot is not None
        delta = update - dispatch.snapshot
        self._buffer.append((delta, self.staleness_discount(staleness)))
        if len(self._buffer) >= self.buffer_size:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        """One server aggregation step: fold the discounted mean delta in."""
        total_discount = sum(discount for _, discount in self._buffer)
        if total_discount > 0:
            aggregate = np.zeros_like(self.global_flat)
            for delta, discount in self._buffer:
                aggregate += discount * delta
            self.global_flat = self.global_flat + aggregate / total_discount
        self._buffer = []
        self.model_version += 1
        self.aggregations += 1

    # ------------------------------------------------------ checkpoint seams
    def _capture_extra_state(self):
        extra = super()._capture_extra_state()
        extra["buffer"] = [(delta.copy(), discount) for delta, discount in self._buffer]
        extra["aggregations"] = self.aggregations
        return extra

    def _restore_extra_state(self, extra: dict) -> None:
        super()._restore_extra_state(extra)
        self._buffer = [
            (np.array(delta, copy=True), discount) for delta, discount in extra["buffer"]
        ]
        self.aggregations = int(extra["aggregations"])

    # ------------------------------------------------------------- plumbing
    def __init__(self, *args, **kwargs) -> None:
        self._buffer: List[Tuple[np.ndarray, float]] = []
        #: Number of buffer flushes (server aggregation steps) so far.
        self.aggregations = 0
        super().__init__(*args, **kwargs)
