"""FedProx baseline (Li et al., MLSys 2020).

FedProx keeps FedAvg's server-side behaviour but changes the *local*
objective: every client minimises its loss plus a proximal term
``(mu / 2) * ||w - w_global||^2`` that limits how far the local model can
drift from the global model during a round.  In the reproduction the
proximal term is applied by :class:`repro.nn.optim.ProximalSGD`, which the
client selects whenever the experiment's algorithm is ``"fedprox"``; the
federator itself is therefore identical to FedAvg apart from its name.
"""

from __future__ import annotations

from repro.fl.federator import BaseFederator
from repro.registry import register_federator


@register_federator("fedprox")
class FedProxFederator(BaseFederator):
    """FedAvg-style federator whose clients train with the proximal term."""

    algorithm_name = "fedprox"
