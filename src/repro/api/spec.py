"""The fluent, validated experiment builder behind :func:`repro.api.experiment`.

>>> import repro.api as api
>>> spec = api.experiment("aergia").scenario("churn").scale("smoke").seed(3)
>>> config = spec.build()                      # a plain ExperimentConfig
>>> handle = spec.run(store="results/")        # or run it, streaming rounds
>>> for record in handle.stream():
...     print(record.round_number, record.test_accuracy)

Every fluent method validates its argument against the central registries
(:mod:`repro.registry`) *immediately* — an unknown algorithm, dataset,
scenario or scale raises a ``ValueError`` naming every valid choice at
call time, not deep inside the run.  Specs are immutable: each method
returns a new spec, so partial specs can be shared and forked safely::

    base = api.experiment("fedavg").dataset("fmnist").scale("bench")
    runs = [base.seed(s).run() for s in range(5)]   # base is unchanged
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.fl.config import ExperimentConfig
from repro.registry import DATASETS, FEDERATORS, SCALE_PROFILES, SCENARIOS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.handles import RunHandle

_PARTITIONS = ("iid", "noniid", "dirichlet")


class ExperimentSpec:
    """Immutable fluent builder for one experiment configuration.

    The spec captures the *evaluation-level* description — algorithm,
    dataset, partition, scale profile, scenario, seed — and builds the full
    :class:`~repro.fl.config.ExperimentConfig` through the same
    :func:`repro.experiments.workloads.evaluation_config` path the figures
    and the CLI use, so a spec-built run is bit-for-bit identical to the
    harness's own runs.  Arbitrary config fields are reachable through
    :meth:`override`.
    """

    __slots__ = (
        "_algorithm",
        "_dataset",
        "_partition",
        "_scale",
        "_scenario",
        "_seed",
        "_overrides",
        "_label",
    )

    def __init__(self, algorithm: str = "fedavg") -> None:
        self._algorithm = FEDERATORS.validate(algorithm)
        self._dataset = "mnist"
        self._partition = "iid"
        self._scale: Optional[str] = None  # None -> $REPRO_SCALE (else bench)
        self._scenario = "stable"
        self._seed = 42
        self._overrides: Dict[str, object] = {}
        self._label: Optional[str] = None

    # ------------------------------------------------------------- internals
    def _replace(self, **changes: object) -> "ExperimentSpec":
        clone = object.__new__(ExperimentSpec)
        for slot in ExperimentSpec.__slots__:
            value = changes.get(slot, getattr(self, slot))
            object.__setattr__(clone, slot, value)
        return clone

    def __setattr__(self, name: str, value: object) -> None:
        if hasattr(self, "_label"):  # fully constructed -> frozen
            raise AttributeError(
                "ExperimentSpec is immutable; fluent methods return a new spec"
            )
        object.__setattr__(self, name, value)

    # --------------------------------------------------------------- builder
    def algorithm(self, name: str) -> "ExperimentSpec":
        """Select the federated-learning algorithm (registry-validated)."""
        return self._replace(_algorithm=FEDERATORS.validate(name))

    def dataset(self, name: str) -> "ExperimentSpec":
        """Select the dataset (registry-validated)."""
        return self._replace(_dataset=DATASETS.validate(name))

    def partition(self, scheme: str) -> "ExperimentSpec":
        """Select the client data partition: iid, noniid or dirichlet."""
        if scheme not in _PARTITIONS:
            raise ValueError(
                f"unknown partition {scheme!r}; valid partitions: {', '.join(_PARTITIONS)}"
            )
        return self._replace(_partition=scheme)

    def scale(self, name: str) -> "ExperimentSpec":
        """Select the workload scale profile (registry-validated)."""
        return self._replace(_scale=SCALE_PROFILES.validate(name))

    def scenario(self, name: str) -> "ExperimentSpec":
        """Select the cluster-dynamics scenario (registry-validated)."""
        return self._replace(_scenario=SCENARIOS.validate(name))

    def seed(self, value: int) -> "ExperimentSpec":
        """Set the experiment seed (every random stream derives from it)."""
        return self._replace(_seed=int(value))

    def rounds(self, value: int) -> "ExperimentSpec":
        """Override the communication-round budget of the scale profile."""
        return self.override(rounds=int(value))

    def dtype(self, name: str) -> "ExperimentSpec":
        """Select the compute dtype (float32 fast path / float64 bit-exact)."""
        return self.override(dtype=name)

    def override(self, **fields: object) -> "ExperimentSpec":
        """Override arbitrary :class:`ExperimentConfig` fields by name."""
        merged = dict(self._overrides)
        merged.update(fields)
        return self._replace(_overrides=merged)

    def label(self, text: str) -> "ExperimentSpec":
        """Set the display label used by run handles and the RunStore."""
        return self._replace(_label=str(text))

    # ------------------------------------------------------------ inspection
    @property
    def run_label(self) -> str:
        """The label persisted with the run (defaults to dataset/algorithm)."""
        if self._label is not None:
            return self._label
        return f"{self._dataset}/{self._algorithm}"

    def describe(self) -> Dict[str, object]:
        """The spec's fields as a plain dictionary (reprs, logs, tests)."""
        return {
            "algorithm": self._algorithm,
            "dataset": self._dataset,
            "partition": self._partition,
            "scale": self._scale,
            "scenario": self._scenario,
            "seed": self._seed,
            "overrides": dict(self._overrides),
            "label": self.run_label,
        }

    def __repr__(self) -> str:
        parts = [
            f"experiment({self._algorithm!r})",
            f"dataset({self._dataset!r})",
            f"partition({self._partition!r})",
        ]
        if self._scale is not None:
            parts.append(f"scale({self._scale!r})")
        parts.append(f"scenario({self._scenario!r})")
        parts.append(f"seed({self._seed})")
        if self._overrides:
            kwargs = ", ".join(f"{k}={v!r}" for k, v in sorted(self._overrides.items()))
            parts.append(f"override({kwargs})")
        return ".".join(parts)

    # ------------------------------------------------------------- execution
    def build(self) -> ExperimentConfig:
        """Materialise the full experiment configuration."""
        from repro.experiments.workloads import SCALES, evaluation_config, scale_from_env

        profile = SCALES[self._scale] if self._scale is not None else scale_from_env()
        return evaluation_config(
            self._dataset,
            self._algorithm,
            self._partition,
            profile,
            seed=self._seed,
            scenario=self._scenario,
            **self._overrides,
        )

    def run(
        self,
        store: object = None,
        on_round: object = None,
        resume: bool = False,
    ) -> "RunHandle":
        """Build and start the experiment, returning its streaming handle.

        ``store`` (a :class:`~repro.api.store.RunStore` or path) persists
        the run; if the store already holds a complete run of this exact
        configuration, the handle replays it from disk instead of
        recomputing.  ``on_round`` is called with every
        :class:`~repro.fl.metrics.RoundRecord` as rounds finalize.
        ``resume=True`` continues an interrupted store-backed run from its
        last mid-run checkpoint (enable checkpointing with
        ``.override(checkpoint_interval=K)``).
        """
        from repro.api.handles import RunHandle

        return RunHandle(
            self.build(),
            store=store,
            on_round=on_round,
            label=self.run_label,
            resume=resume,
        )

    def stream(self, store: object = None, on_round: object = None, resume: bool = False):
        """Shorthand for ``.run(...).stream()``."""
        return self.run(store=store, on_round=on_round, resume=resume).stream()


def experiment(algorithm: str = "fedavg") -> ExperimentSpec:
    """Start a fluent experiment spec (the main :mod:`repro.api` entry)."""
    return ExperimentSpec(algorithm)
