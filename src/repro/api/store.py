"""Persistent run storage: typed manifests + per-round JSONL records.

Every run executed through :mod:`repro.api` can be persisted into a
:class:`RunStore` — a results directory with one sub-directory per run,
keyed by the run's :func:`run_key` (a content hash of its configuration)::

    results/
      <config_hash>/
        manifest.json     # typed manifest: config hash, scenario, dtype,
                          # source revision, status, summary, full config
        rounds.jsonl      # one JSON object per RoundRecord, appended as
                          # rounds finalize (so a crash leaves the rounds
                          # recorded so far on disk)

The manifest is written twice: once when the run starts (``status:
"running"``) and once when it completes (``status: "complete"``, now
including the flat summary and wall-clock).  :class:`Results` is the query
facade: open a results directory, filter runs by algorithm / dataset /
scenario, reload full :class:`repro.fl.metrics.ExperimentResult` objects
(bit-for-bit summaries — JSON round-trips Python floats exactly) and render
report tables from the store alone, with no in-memory results.
"""

from __future__ import annotations

import dataclasses
import fcntl
import json
import os
import random
import subprocess
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

import hashlib

import repro
from repro.experiments.parallel import _canonical as _jsonable
from repro.experiments.parallel import canonical_config
from repro.fl.config import ExperimentConfig
from repro.fl.metrics import ExperimentResult, RoundRecord
from repro.nn.dtype import resolve_dtype

#: Bumped whenever the on-disk layout of manifests/round records changes,
#: or when simulation semantics change such that replaying an old stored
#: run would silently misrepresent the current code's behaviour.
STORE_FORMAT = 1


def run_key(config: ExperimentConfig) -> str:
    """The store key of a configuration: a sha256 over its canonical JSON.

    Unlike the result cache's :func:`repro.experiments.parallel.config_hash`
    — which deliberately salts in the package version and cache format so
    stale cache entries die across releases — the store key depends only on
    the configuration (with the dtype resolved) and :data:`STORE_FORMAT`.
    The RunStore is an *archive*: a version bump must not orphan weeks of
    persisted runs, and provenance lives in each manifest's ``version`` /
    ``source_revision`` fields instead.  For the same reason the key drops
    the client-materialization knobs (``client_pool``/``pool_slots``):
    materialization cannot change results, so virtual and eager runs of one
    experiment share a key — and archives written before those knobs
    existed keep theirs.
    """
    canonical = canonical_config(config)
    # A config with dtype=None resolves to the process default at build
    # time, so the effective dtype is part of the identity (results differ
    # across dtypes even though simulated times do not).
    canonical["dtype"] = resolve_dtype(config.dtype).name
    payload = {"store_format": STORE_FORMAT, "config": canonical}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

MANIFEST_NAME = "manifest.json"
ROUNDS_NAME = "rounds.jsonl"
#: Per-run writer lock: exists (holding the writer's pid) while a
#: RunWriter materializes the run, so two sessions can never interleave
#: ``manifest.json``/``rounds.jsonl`` writes for one ``run_key``.
LOCK_NAME = "writer.lock"


class RunLockedError(RuntimeError):
    """Another live writer is materializing this run right now."""


#: Lock files held by writers of *this* process, so a same-pid conflict
#: (two threads, e.g. two server sessions) is distinguished from a stale
#: lock left behind by a crashed previous process that recycled our pid.
_HELD_LOCKS: set = set()
_HELD_LOCKS_GUARD = threading.Lock()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned elsewhere
    return True


def _read_lock(lock_path: Path) -> Optional[tuple]:
    """Read one lock file as ``(pid, inode)``, or ``None`` when gone.

    Opening by fd binds the pid we classify to the *inode* we read it from:
    a later break must name that same inode, so a stale-lock verdict can
    never be applied to a fresh lock that replaced it in the meantime.
    """
    try:
        fd = os.open(str(lock_path), os.O_RDONLY)
    except OSError:
        return None
    try:
        inode = os.fstat(fd).st_ino
        raw = os.read(fd, 64).strip()
    except OSError:
        return None
    finally:
        os.close(fd)
    try:
        pid = int(raw) if raw else None
    except ValueError:
        pid = None
    return (pid, inode)


def _break_stale_lock(lock_path: Path, stale_inode: int) -> None:
    """Break one *verified-stale* lock without ever deleting a fresh one.

    The naive break (``unlink(lock_path)``) races: two processes classify
    the same lock stale, breaker A unlinks and re-creates, and breaker B's
    delayed unlink then deletes A's *fresh* lock — two live writers on one
    ``rounds.jsonl``.  Fix: all breaks for a path are serialized through an
    ``flock``-ed guard file, and the verdict is re-checked *under* the
    guard against the inode the classification was made from.  A lock that
    was replaced (different inode) or revived (live pid again) is left
    alone; only the exact stale inode we classified is unlinked — and
    while we hold the guard nothing else can swap the file out from under
    us (writers only ever create through ``O_EXCL`` on an absent path, a
    stale lock has no live owner to release it, and rival breakers queue
    on the guard).  The zero-byte guard file is left behind; it is inert
    advisory state, and deleting it would reopen the race on its inode.
    """
    guard = lock_path.with_name(lock_path.name + ".break")
    try:
        guard_fd = os.open(str(guard), os.O_CREAT | os.O_RDWR)
    except OSError:
        return
    try:
        fcntl.flock(guard_fd, fcntl.LOCK_EX)
        current = _read_lock(lock_path)
        if current is None:
            return  # a rival breaker got here first
        pid, inode = current
        if inode != stale_inode:
            return  # replaced by a fresh lock since we classified
        if pid is not None and _pid_alive(pid):
            return  # pid recycled into a live process: not ours to break
        os.unlink(str(lock_path))
    except OSError:
        pass
    finally:
        os.close(guard_fd)


def _sleep_backoff(rng: "random.Random", attempt: int) -> None:
    """Jittered exponential backoff between lock-acquire attempts.

    The fixed-cadence spin let every contender re-classify and re-break in
    lockstep — a retry storm where N processes hammer the same inode and
    keep colliding.  Seeding the jitter off the pid decorrelates them while
    keeping each process's schedule deterministic for tests.
    """
    base = min(0.2, 0.005 * (2 ** min(attempt, 5)))
    time.sleep(base * (0.5 + rng.random()))


def _acquire_run_lock(lock_path: Path) -> None:
    """Take the per-run writer lock or raise :class:`RunLockedError`.

    The lock is an ``O_CREAT | O_EXCL`` file holding the writer's pid.  A
    lock whose pid is no longer alive is *stale* — its writer crashed (the
    SIGKILL crash-injection tests leave exactly this behind) — and is
    broken and re-taken; a live pid means a genuinely concurrent writer.
    Stale locks are broken through the serialized, inode-verified path of
    :func:`_break_stale_lock`, never by a blind unlink.
    """
    key = str(lock_path)
    rng = random.Random(os.getpid())
    for attempt in range(64):
        try:
            fd = os.open(key, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            with _HELD_LOCKS_GUARD:
                held_here = key in _HELD_LOCKS
            if held_here:
                raise RunLockedError(
                    f"run is already being written by this process: {lock_path.parent}"
                )
            lock = _read_lock(lock_path)
            if lock is None:
                continue  # gone between EXCL-fail and read: retry
            pid, inode = lock
            if pid is None:
                # Creator may be mid-write; give it a beat, then re-read —
                # a still-empty file is debris from a crash.
                time.sleep(0.01)
                lock = _read_lock(lock_path)
                if lock is None:
                    continue
                pid, inode = lock
            if pid is not None and _pid_alive(pid):
                raise RunLockedError(
                    f"run is locked by live writer pid {pid}: {lock_path.parent}"
                )
            _break_stale_lock(lock_path, inode)
            _sleep_backoff(rng, attempt)
            continue
        try:
            os.write(fd, str(os.getpid()).encode("ascii"))
        finally:
            os.close(fd)
        with _HELD_LOCKS_GUARD:
            _HELD_LOCKS.add(key)
        return
    raise RunLockedError(f"could not acquire writer lock: {lock_path}")


def _release_run_lock(lock_path: Path) -> None:
    key = str(lock_path)
    with _HELD_LOCKS_GUARD:
        _HELD_LOCKS.discard(key)
    try:
        os.unlink(key)
    except OSError:
        pass
#: Mid-run resume checkpoint (see :mod:`repro.fl.checkpoint`), written
#: into the run directory every ``config.checkpoint_interval`` rounds and
#: removed when the run finalizes.
CHECKPOINT_NAME = "checkpoint.pkl"

_source_revision_cache: Optional[str] = None
_source_revision_known = False


def _source_revision() -> Optional[str]:
    """Best-effort ``git describe`` of the source tree (None outside git)."""
    global _source_revision_cache, _source_revision_known
    if _source_revision_known:
        return _source_revision_cache
    _source_revision_known = True
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            _source_revision_cache = out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        _source_revision_cache = None
    return _source_revision_cache


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


class RunWriter:
    """Incrementally persists one run: manifest first, rounds as they come.

    Created by :meth:`RunStore.start_run`; used by the streaming
    :class:`repro.api.handles.RunHandle` (append per round) and by
    :meth:`RunStore.put` (bulk write of a finished result).
    """

    def __init__(
        self,
        store: "RunStore",
        config: ExperimentConfig,
        label: Optional[str] = None,
        initial_records: Optional[Sequence[RoundRecord]] = None,
    ):
        self.store = store
        self.config = config
        self.config_hash = run_key(config)
        self.label = label or f"{config.dataset}/{config.algorithm}"
        self.path = store.run_dir(self.config_hash)
        self.path.mkdir(parents=True, exist_ok=True)
        self._rounds_path = self.path / ROUNDS_NAME
        self.checkpoint_path = self.path / CHECKPOINT_NAME
        self._lock_path = self.path / LOCK_NAME
        # Exclusive materialization: a second concurrent writer of the same
        # run_key raises RunLockedError instead of interleaving writes.
        _acquire_run_lock(self._lock_path)
        self._num_rounds = 0
        self._manifest = {
            "format": STORE_FORMAT,
            "version": repro.__version__,
            "source_revision": _source_revision(),
            "config_hash": self.config_hash,
            "label": self.label,
            "algorithm": config.algorithm,
            "dataset": config.dataset,
            "partition": config.partition,
            "scenario": config.dynamics.scenario,
            "seed": config.seed,
            "dtype": resolve_dtype(config.dtype).name,
            "created_at": time.time(),
            "status": "running",
            "config": _jsonable(dataclasses.asdict(config)),
        }
        try:
            self._write_manifest()
            # Truncate any stale rounds from a previous (crashed) attempt; a
            # resume re-writes the rounds recorded before the checkpoint (they
            # are part of the snapshot), so a torn last line from the crash can
            # never survive into the resumed file.
            self._rounds_file = open(self._rounds_path, "w")
            for record in initial_records or ():
                self.append(record)
        except BaseException:
            _release_run_lock(self._lock_path)
            raise

    def _write_manifest(self) -> None:
        _atomic_write(
            self.path / MANIFEST_NAME, json.dumps(self._manifest, sort_keys=True, indent=1)
        )

    def append(self, record: RoundRecord) -> None:
        """Persist one finalized round (flushed so crashes lose nothing)."""
        self._rounds_file.write(
            json.dumps(_jsonable(dataclasses.asdict(record)), sort_keys=True) + "\n"
        )
        self._rounds_file.flush()
        self._num_rounds += 1

    def finalize(self, result: ExperimentResult, wall_seconds: float = 0.0) -> "StoredRun":
        """Mark the run complete: summary, result metadata, wall-clock."""
        if self._num_rounds == 0 and result.rounds:
            for record in result.rounds:
                self.append(record)
        self._rounds_file.close()
        # The finished run supersedes any mid-run checkpoint.
        try:
            self.checkpoint_path.unlink()
        except OSError:
            pass
        self._manifest.update(
            status="complete",
            completed_at=time.time(),
            wall_seconds=float(wall_seconds),
            num_rounds=len(result.rounds),
            summary=_jsonable(result.summary()),
            result={
                "algorithm": result.algorithm,
                "dataset": result.dataset,
                "config": _jsonable(result.config),
                "setup_time": result.setup_time,
                "network": _jsonable(dict(result.network)),
            },
        )
        self._write_manifest()
        _release_run_lock(self._lock_path)
        return StoredRun(self.path)

    def abort(self) -> None:
        """Mark the run as incomplete (stream abandoned mid-flight)."""
        if not self._rounds_file.closed:
            self._rounds_file.close()
        self._manifest["status"] = "incomplete"
        self._write_manifest()
        _release_run_lock(self._lock_path)


class StoredRun:
    """One persisted run: lazy access to its manifest, rounds and result."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.manifest: Dict[str, Any] = json.loads((self.path / MANIFEST_NAME).read_text())

    # ------------------------------------------------------------ properties
    @property
    def config_hash(self) -> str:
        return str(self.manifest["config_hash"])

    @property
    def label(self) -> str:
        return str(self.manifest.get("label", self.config_hash[:12]))

    @property
    def status(self) -> str:
        return str(self.manifest.get("status", "unknown"))

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    @property
    def algorithm(self) -> str:
        return str(self.manifest["algorithm"])

    @property
    def dataset(self) -> str:
        return str(self.manifest["dataset"])

    @property
    def scenario(self) -> str:
        return str(self.manifest.get("scenario", "stable"))

    @property
    def summary(self) -> Dict[str, object]:
        """The flat summary recorded at completion (empty while running)."""
        return dict(self.manifest.get("summary", {}))

    @property
    def has_checkpoint(self) -> bool:
        """Whether a mid-run resume checkpoint exists for this run."""
        return (self.path / CHECKPOINT_NAME).exists()

    @property
    def checkpoint_path(self) -> Path:
        return self.path / CHECKPOINT_NAME

    # --------------------------------------------------------------- loading
    def rounds(self) -> List[RoundRecord]:
        """Parse the per-round JSONL records.

        Parsing stops at the first unparseable line: a crash mid-``write``
        can tear the last line of an appended file, and everything after a
        torn line is unreliable.  The records before it are intact (each
        append is flushed whole), so callers see the longest clean prefix —
        :meth:`load_result` and :meth:`RunStore.get` then compare that
        prefix length against the manifest to detect the truncation.
        """
        records: List[RoundRecord] = []
        path = self.path / ROUNDS_NAME
        if not path.exists():
            return records
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(RoundRecord(**json.loads(line)))
                except (ValueError, TypeError):
                    break
        return records

    def load_result(self) -> ExperimentResult:
        """Reconstruct the full :class:`ExperimentResult` from disk.

        The reloaded result's :meth:`~ExperimentResult.summary` is bitwise
        identical to the in-memory one: every field is a Python float and
        ``json`` round-trips those exactly.  A rounds file that disagrees
        with the manifest's recorded round count (deleted, truncated,
        partially synced) raises instead of silently replaying a shorter
        run.
        """
        meta = self.manifest.get("result")
        if meta is None:
            raise ValueError(
                f"run {self.config_hash} is not complete (status: {self.status})"
            )
        rounds = self.rounds()
        expected = self.manifest.get("num_rounds")
        if expected is not None and len(rounds) != int(expected):
            raise ValueError(
                f"run {self.config_hash} is corrupt: manifest records "
                f"{expected} rounds but {ROUNDS_NAME} holds {len(rounds)}"
            )
        return ExperimentResult(
            algorithm=str(meta["algorithm"]),
            dataset=str(meta["dataset"]),
            config=dict(meta["config"]),
            setup_time=float(meta["setup_time"]),
            rounds=rounds,
            # Manifests from before the transport work carry no counters.
            network={str(k): float(v) for k, v in meta.get("network", {}).items()},
        )

    def load_config(self) -> ExperimentConfig:
        """Rebuild the run's full :class:`ExperimentConfig` from the manifest.

        This is how a restarted ``repro serve`` resumes in-flight runs: the
        manifest's ``config`` field is the ``asdict`` form written at start.
        """
        from repro.fl.config import config_from_dict

        return config_from_dict(dict(self.manifest["config"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoredRun({self.label!r}, {self.status}, {self.config_hash[:12]})"


class RunStore:
    """A directory of persisted runs keyed by configuration hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def run_dir(self, key: str) -> Path:
        return self.root / key

    # --------------------------------------------------------------- writing
    def start_run(
        self,
        config: ExperimentConfig,
        label: Optional[str] = None,
        initial_records: Optional[Sequence[RoundRecord]] = None,
    ) -> RunWriter:
        """Open a writer for a new run (overwrites an incomplete attempt).

        ``initial_records`` seeds the rounds file before streaming starts —
        the resume path passes the checkpoint's round records so the
        rewritten file is whole regardless of how the crashed attempt died.
        """
        return RunWriter(self, config, label=label, initial_records=initial_records)

    def put(
        self,
        config: ExperimentConfig,
        result: ExperimentResult,
        wall_seconds: float = 0.0,
        label: Optional[str] = None,
    ) -> StoredRun:
        """Persist an already-computed result in one shot."""
        writer = self.start_run(config, label=label)
        return writer.finalize(result, wall_seconds=wall_seconds)

    # --------------------------------------------------------------- reading
    def get(self, config: Union[ExperimentConfig, str]) -> Optional[StoredRun]:
        """The *complete* stored run for a config (or hash), else ``None``.

        This is the already-present check: a second run of the same spec
        finds its predecessor here and is served from disk instead of being
        recomputed.
        """
        key = config if isinstance(config, str) else run_key(config)
        path = self.run_dir(key)
        if not (path / MANIFEST_NAME).exists():
            return None
        try:
            run = StoredRun(path)
        except (OSError, ValueError):
            return None
        if run.manifest.get("format") != STORE_FORMAT or not run.complete:
            return None
        # A rounds file inconsistent with the manifest means the run is
        # corrupt (deleted/truncated): treat it as absent so the caller
        # re-executes rather than replaying a short result.  Only
        # *parseable* records count — a torn last line must register as a
        # truncation here, not blow up in load_result later.
        expected = run.manifest.get("num_rounds")
        if expected is not None:
            try:
                on_disk = len(run.rounds())
            except OSError:
                return None
            if on_disk != int(expected):
                return None
        return run

    def __contains__(self, config: object) -> bool:
        if not isinstance(config, (ExperimentConfig, str)):
            return False
        return self.get(config) is not None

    def scan(self) -> Dict[str, List[StoredRun]]:
        """Classify every stored run for the resume machinery.

        Returns ``{"complete": [...], "resumable": [...], "incomplete":
        [...]}``: complete runs replay from disk, resumable ones (crashed
        or abandoned mid-flight, with a checkpoint on disk) can continue
        from their last checkpointed round, and incomplete ones without a
        checkpoint must re-run from scratch.
        """
        classified: Dict[str, List[StoredRun]] = {
            "complete": [],
            "resumable": [],
            "incomplete": [],
        }
        for run in self.runs():
            if run.complete and run.manifest.get("format") == STORE_FORMAT:
                classified["complete"].append(run)
            elif run.has_checkpoint:
                classified["resumable"].append(run)
            else:
                classified["incomplete"].append(run)
        return classified

    def runs(self) -> List[StoredRun]:
        """Every stored run (any status), ordered by creation time."""
        found: List[StoredRun] = []
        for manifest in self.root.glob(f"*/{MANIFEST_NAME}"):
            try:
                found.append(StoredRun(manifest.parent))
            except (OSError, ValueError):
                continue
        found.sort(key=lambda run: (run.manifest.get("created_at", 0.0), run.label))
        return found

    def __len__(self) -> int:
        return len(self.runs())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.root)!r})"


def default_store() -> Optional[RunStore]:
    """The store named by ``REPRO_RESULTS_DIR``, or ``None`` when unset.

    When the environment variable is set, every :func:`repro.api.run` /
    :func:`repro.api.sweep` persists its results there by default — which
    makes the figure functions and benchmarks thin clients of the store.
    """
    root = os.environ.get("REPRO_RESULTS_DIR", "").strip()
    return RunStore(root) if root else None


class Results:
    """Query facade over a results directory written by :class:`RunStore`.

    >>> results = Results.open("results/")
    >>> results.labels()
    >>> results.summaries(algorithm="aergia")
    >>> results.load("mnist/aergia").rounds
    """

    def __init__(self, store: Union[RunStore, str, Path]) -> None:
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        #: Point-in-time snapshot of the directory scan: the manifests are
        #: parsed once per Results instance, however many queries/renders
        #: follow (and concurrent writers cannot skew paired scans).  Use
        #: :meth:`refresh` (or a fresh ``Results.open``) to pick up new runs.
        self._snapshot: Optional[List[StoredRun]] = None

    @classmethod
    def open(cls, root: Union[str, Path, RunStore]) -> "Results":
        """Open a results directory for querying."""
        return cls(root)

    def refresh(self) -> "Results":
        """Drop the cached directory snapshot (picks up new runs)."""
        self._snapshot = None
        return self

    def _all_runs(self) -> List[StoredRun]:
        if self._snapshot is None:
            self._snapshot = self.store.runs()
        return self._snapshot

    # -------------------------------------------------------------- querying
    def runs(
        self,
        *,
        algorithm: Optional[str] = None,
        dataset: Optional[str] = None,
        scenario: Optional[str] = None,
        complete_only: bool = True,
        predicate: Optional[Callable[[StoredRun], bool]] = None,
    ) -> List[StoredRun]:
        """Stored runs matching the given filters, in creation order."""
        matches: List[StoredRun] = []
        for run in self._all_runs():
            if complete_only and not run.complete:
                continue
            if algorithm is not None and run.algorithm != algorithm:
                continue
            if dataset is not None and run.dataset != dataset:
                continue
            if scenario is not None and run.scenario != scenario:
                continue
            if predicate is not None and not predicate(run):
                continue
            matches.append(run)
        return matches

    def __iter__(self) -> Iterator[StoredRun]:
        return iter(self.runs())

    def __len__(self) -> int:
        return len(self.runs())

    def _labelled(self, **filters: object) -> List[tuple]:
        """(label, run) pairs from a *single* directory scan, with duplicate
        labels disambiguated by a short hash suffix."""
        labelled: List[tuple] = []
        seen: set = set()
        for run in self.runs(**filters):  # type: ignore[arg-type]
            label = run.label
            if label in seen:
                label = f"{label}@{run.config_hash[:8]}"
            seen.add(run.label)
            labelled.append((label, run))
        return labelled

    def labels(self, **filters: object) -> List[str]:
        """Unique display labels (de-duplicated with a short hash suffix)."""
        return [label for label, _ in self._labelled(**filters)]

    def summaries(self, **filters: object) -> Dict[str, Dict[str, object]]:
        """Per-run flat summaries keyed by label (from manifests alone)."""
        return {label: run.summary for label, run in self._labelled(**filters)}

    def load(self, label_or_hash: str) -> ExperimentResult:
        """Reload one run's full result by label or configuration hash."""
        stored = self.store.get(label_or_hash)
        if stored is not None:
            return stored.load_result()
        for label, run in self._labelled(complete_only=True):
            if label == label_or_hash or run.label == label_or_hash:
                return run.load_result()
        known = ", ".join(self.labels()) or "(store is empty)"
        raise KeyError(f"no stored run {label_or_hash!r}; known: {known}")

    def to_json(self, **filters: object) -> Dict[str, object]:
        """Machine-readable summaries of the stored runs.

        The service clients and the loadgen benchmark assert results from
        this document instead of scraping rendered tables (``repro report
        --json`` prints it).  Accepts the same filters as :meth:`runs`;
        pass ``complete_only=False`` to include crashed/in-flight runs.
        """
        runs: List[Dict[str, object]] = []
        for label, run in self._labelled(**filters):
            manifest = run.manifest
            runs.append(
                {
                    "label": label,
                    "config_hash": run.config_hash,
                    "status": run.status,
                    "algorithm": run.algorithm,
                    "dataset": run.dataset,
                    "scenario": run.scenario,
                    "partition": manifest.get("partition"),
                    "seed": manifest.get("seed"),
                    "dtype": manifest.get("dtype"),
                    "num_rounds": manifest.get("num_rounds"),
                    "wall_seconds": manifest.get("wall_seconds"),
                    "has_checkpoint": run.has_checkpoint,
                    "summary": run.summary,
                }
            )
        return {
            "results_dir": str(self.store.root),
            "store_format": STORE_FORMAT,
            "count": len(runs),
            "runs": runs,
        }

    # ------------------------------------------------------------- rendering
    def render_summary(self, title: str = "", **filters: object) -> str:
        """Summary table of the stored runs (a figure from the store alone)."""
        from repro.experiments.report import render_summaries

        summaries = {
            label: summary for label, summary in self.summaries(**filters).items() if summary
        }
        return render_summaries(
            summaries, title=title or f"stored results: {self.store.root}"
        )

    def render_network(self, title: str = "", **filters: object) -> str:
        """Network/transport counter table (empty string when none recorded)."""
        from repro.experiments.report import render_network_counters

        summaries = {
            label: summary for label, summary in self.summaries(**filters).items() if summary
        }
        return render_network_counters(
            summaries, title=title or "network/transport counters"
        )

    def render_round_durations(self, **filters: object) -> str:
        """Figure-8-style round-duration table rebuilt from the JSONL records."""
        from repro.experiments.report import format_table

        labelled = self._labelled(**filters)
        results = [run.load_result() for _, run in labelled]
        if not results:
            return "no stored runs to render"
        rows = [
            [label, result.mean_round_duration(), float(result.num_rounds)]
            for (label, _), result in zip(labelled, results)
        ]
        return format_table(
            headers=["label", "mean_round_duration_s", "rounds"],
            rows=rows,
            title="Round durations (re-rendered from the store)",
        )
