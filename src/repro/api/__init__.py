"""Public programmatic API of the Aergia reproduction.

This package is the supported seam for building on the reproduction
without touching its internals.  Three pieces:

**Plugin registries** (re-exported from :mod:`repro.registry`)
    Named, decorator-based registries for federated-learning algorithms,
    cluster-dynamics scenarios, workload scale profiles and datasets.
    Everything the CLI and this API accept by name resolves through them::

        from repro.api import register_federator

        @register_federator("my-strategy", description="...")
        class MyFederator(BaseFederator):
            algorithm_name = "my-strategy"

**Fluent experiment specs and streaming runs**
    :func:`experiment` starts an immutable builder; ``run()`` returns a
    :class:`RunHandle` whose :meth:`~repro.api.handles.RunHandle.stream`
    yields :class:`~repro.fl.metrics.RoundRecord` objects as the
    event-driven round engine finalizes them::

        import repro.api as api

        handle = (
            api.experiment("aergia")
            .dataset("fmnist").partition("noniid")
            .scale("smoke").scenario("churn").seed(3)
            .run(store="results/")
        )
        for record in handle.stream():
            print(record.round_number, record.test_accuracy)
        print(handle.summary())

    :func:`sweep` is the batch equivalent (process pool + caching +
    persistence), accepting ``{label: config-or-spec}`` mappings.

**The persistent RunStore**
    Runs persist as a typed manifest plus per-round JSONL under a results
    directory; :class:`Results` reopens a directory for querying,
    reloading and re-rendering — entirely from disk::

        results = api.Results.open("results/")
        print(results.render_summary())
        timeline = results.load("fmnist/aergia").accuracy_timeline()

    A second ``run()``/``sweep()`` of an already-stored configuration is
    detected by its config hash and served from disk, not recomputed.

The old entry points (``repro.fl.runtime.run_experiment``,
``repro.experiments.parallel.run_suite``, the figure functions) remain as
thin shims over the same machinery.
"""

from repro.api.handles import RunHandle, SweepHandle, run, sweep
from repro.api.spec import ExperimentSpec, experiment
from repro.api.store import (
    Results,
    RunLockedError,
    RunStore,
    StoredRun,
    default_store,
    run_key,
)
from repro.experiments.scheduler import (
    BudgetTracker,
    CellState,
    IllegalTransition,
    SweepScheduler,
)
from repro.fl.checkpoint import RunCheckpointer, capture_snapshot, load_checkpoint, restore_snapshot
from repro.registry import (
    DATASETS,
    FEDERATORS,
    SCALE_PROFILES,
    SCENARIOS,
    Registry,
    register_dataset,
    register_federator,
    register_scale,
    register_scenario,
    registries,
)

__all__ = [
    # fluent specs + execution
    "experiment",
    "ExperimentSpec",
    "run",
    "sweep",
    "RunHandle",
    "SweepHandle",
    # checkpoint/resume + budget-aware scheduling
    "RunCheckpointer",
    "capture_snapshot",
    "restore_snapshot",
    "load_checkpoint",
    "SweepScheduler",
    "BudgetTracker",
    "CellState",
    "IllegalTransition",
    # persistence
    "RunStore",
    "RunLockedError",
    "StoredRun",
    "Results",
    "default_store",
    "run_key",
    # registries
    "Registry",
    "registries",
    "FEDERATORS",
    "SCENARIOS",
    "SCALE_PROFILES",
    "DATASETS",
    "register_federator",
    "register_scenario",
    "register_scale",
    "register_dataset",
]
