"""Run and sweep handles: streaming execution + store integration.

:class:`RunHandle` is what :meth:`repro.api.ExperimentSpec.run` (and
:func:`repro.api.run`) returns.  Instead of the historical
block-until-done-only contract, the handle exposes the run as a *stream*:

>>> handle = repro.api.experiment("fedavg").scale("smoke").run()
>>> for record in handle.stream():          # RoundRecords as rounds finalize
...     print(record.round_number, record.test_accuracy)
>>> handle.result().summary()               # the completed ExperimentResult

The stream is backed by the event-driven round engine of PR 3: the handle
registers a round listener on the federator's result and pumps the
simulation's event queue one event at a time, yielding each
:class:`~repro.fl.metrics.RoundRecord` the moment the engine finalizes the
round — for the synchronous and the asynchronous (virtual-round)
federators alike.  Driving the queue to exhaustion this way executes the
exact same event sequence as ``cluster.run()``, so summaries stay
bit-for-bit identical to the classic blocking path.

:func:`sweep` is the batch entry point: it accepts labelled configs (or
specs), serves already-present cells from the :class:`RunStore`, routes the
rest through the execution policy of :mod:`repro.experiments.parallel`
(process pool + result cache), and persists every newly computed result.
"""

from __future__ import annotations

import queue
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Union

from repro.api.spec import ExperimentSpec
from repro.api.store import RunStore, StoredRun, default_store, run_key
from repro.experiments.parallel import run_configs_parallel, run_suite
from repro.experiments.runner import SuiteResult
from repro.fl.config import ExperimentConfig
from repro.fl.metrics import ExperimentResult, RoundRecord

RoundCallback = Callable[[RoundRecord], None]
StoreLike = Union[RunStore, str, Path, None]


def _coerce_store(store: StoreLike, use_default: bool = True) -> Optional[RunStore]:
    if store is None:
        return default_store() if use_default else None
    if isinstance(store, RunStore):
        return store
    return RunStore(store)


class RunHandle:
    """Handle on a single experiment run.

    * :meth:`stream` — iterator of :class:`RoundRecord` as rounds finalize.
    * :meth:`result` — drive the run to completion, return the result.
    * :meth:`summary` — the flat summary row of the completed run.

    With a ``store``, per-round records are appended to the run's JSONL
    file *as they stream* and the manifest is finalized on completion; when
    the store already holds a complete run of the same configuration, the
    handle replays it from disk (``loaded_from_store`` is then ``True``)
    without recomputing anything.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        store: StoreLike = None,
        on_round: Optional[RoundCallback] = None,
        label: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        self.config = config
        self.config_hash = run_key(config)
        self.label = label or f"{config.dataset}/{config.algorithm}"
        self.store = _coerce_store(store)
        self._listeners: List[RoundCallback] = [on_round] if on_round is not None else []
        self._result: Optional[ExperimentResult] = None
        self._wall_seconds = 0.0
        self._iterator: Optional[Iterator[RoundRecord]] = None
        # NB: `is not None` — RunStore has __len__, so an empty store is falsy.
        self._stored: Optional[StoredRun] = (
            self.store.get(config) if self.store is not None else None
        )
        #: Round the run was resumed from (``None``: ran from the start).
        self.resumed_from_round: Optional[int] = None
        self._checkpoint: Optional[dict] = None
        #: The built :class:`repro.fl.runtime.ExperimentHandle`, set once
        #: execution starts (``None`` for store replays).  ``repro serve``
        #: reaches the live :class:`ScenarioDynamics` through this.
        self.experiment = None
        #: Whether the run was stopped early by :meth:`request_stop`.
        self.stopped = False
        self._stop_mode: Optional[str] = None
        self._injections: "queue.SimpleQueue[Callable[[], None]]" = queue.SimpleQueue()
        if resume and self._stored is None and self.store is not None:
            from repro.api.store import CHECKPOINT_NAME
            from repro.fl.checkpoint import load_checkpoint

            # A corrupt/mismatched checkpoint loads as None: the run then
            # simply executes from scratch.
            self._checkpoint = load_checkpoint(
                self.store.run_dir(self.config_hash) / CHECKPOINT_NAME,
                run_key=self.config_hash,
            )

    # ------------------------------------------------------------ inspection
    @property
    def loaded_from_store(self) -> bool:
        """Whether this configuration was already present in the store."""
        return self._stored is not None

    @property
    def done(self) -> bool:
        return self._result is not None

    @property
    def wall_seconds(self) -> float:
        """Wall-clock spent computing (0.0 for store replays)."""
        return self._wall_seconds

    def add_round_listener(self, listener: RoundCallback) -> None:
        """Register a callback fired for every streamed round."""
        self._listeners.append(listener)

    def _notify(self, record: RoundRecord) -> None:
        for listener in self._listeners:
            listener(record)

    # --------------------------------------------------------------- control
    def inject(self, action: Callable[[], None]) -> None:
        """Run ``action`` inside the simulation thread, between two events.

        The only thread-safe way to touch live simulation state (the
        cluster, the scenario dynamics) from outside the thread driving
        :meth:`stream`: actions are queued and executed at the next pump of
        the event loop, where no event is mid-flight.  ``repro serve``'s
        ``/checkin`` endpoint feeds device availability events through
        this seam.  A failing action is logged and dropped — it must not
        kill the run.
        """
        self._injections.put(action)

    def request_stop(self, mode: str = "checkpoint") -> None:
        """Ask the running stream to stop at the next safe point.

        ``mode="checkpoint"`` (graceful drain): keep pumping until the next
        checkpoint opportunity succeeds, persist the snapshot, mark the
        stored run incomplete and end the stream — a later ``resume=True``
        run of the same config continues bitwise-identically.  Requires a
        store and ``config.checkpoint_interval``; without them it degrades
        to ``mode="abort"``.

        ``mode="abort"`` (cancel): stop at the next event boundary, mark
        the stored run incomplete and delete any mid-run checkpoint, so
        the cancellation is not silently resurrected by a resume.

        Thread-safe; a no-op once the run has completed.
        """
        if mode not in ("checkpoint", "abort"):
            raise ValueError(f"unknown stop mode {mode!r}; use 'checkpoint' or 'abort'")
        self._stop_mode = mode

    def _drain_injections(self) -> None:
        import logging

        while True:
            try:
                action = self._injections.get_nowait()
            except queue.Empty:
                return
            try:
                action()
            except Exception:
                logging.getLogger(__name__).exception(
                    "injected action %r raised; dropped", action
                )

    # ------------------------------------------------------------- execution
    def stream(self) -> Iterator[RoundRecord]:
        """The run as an iterator of finalized rounds (single underlying
        stream: repeated calls resume the same iteration)."""
        if self._iterator is None:
            self._iterator = self._replay() if self._stored is not None else self._execute()
        return self._iterator

    def _replay(self) -> Iterator[RoundRecord]:
        result = self._stored.load_result()
        for record in result.rounds:
            self._notify(record)
            yield record
        self._result = result

    def _execute(self) -> Iterator[RoundRecord]:
        from repro.fl.checkpoint import RunCheckpointer, restore_snapshot
        from repro.fl.runtime import build_experiment

        start = time.perf_counter()
        experiment = build_experiment(self.config)
        self.experiment = experiment
        snapshot = self._checkpoint
        if snapshot is not None:
            # Overwrite the freshly built experiment's state with the
            # checkpoint; the round listener is registered afterwards, so
            # only rounds computed from here on stream (and the writer is
            # seeded with the checkpointed records below).
            restore_snapshot(experiment, snapshot)
            self.resumed_from_round = snapshot["round"]
        pending: deque = deque()
        experiment.federator.result.add_round_listener(pending.append)
        writer = (
            self.store.start_run(
                self.config,
                label=self.label,
                initial_records=snapshot["records"] if snapshot is not None else None,
            )
            if self.store is not None
            else None
        )
        checkpointer = None
        try:
            if writer is not None and self.config.checkpoint_interval is not None:
                checkpointer = RunCheckpointer(
                    experiment,
                    self.config.checkpoint_interval,
                    writer.checkpoint_path,
                    run_key=self.config_hash,
                )
                checkpointer.install()
            if snapshot is None:
                experiment.federator.start()
            env = experiment.cluster.env
            checkpoints_before_stop: Optional[int] = None
            while True:
                while pending:
                    record = pending.popleft()
                    if writer is not None:
                        writer.append(record)
                    self._notify(record)
                    yield record
                self._drain_injections()
                mode = self._stop_mode
                if mode == "checkpoint" and checkpointer is not None:
                    # Graceful drain: force a checkpoint and keep pumping
                    # until one lands (capture refuses mid-round), then end
                    # the stream; the finally clause marks the stored run
                    # incomplete, leaving it resumable.
                    if checkpoints_before_stop is None:
                        checkpoints_before_stop = checkpointer.written
                        checkpointer.force()
                    if checkpointer.written > checkpoints_before_stop:
                        self.stopped = True
                        return
                elif mode is not None:
                    # Cancel: stop now and drop any mid-run checkpoint so a
                    # later resume cannot resurrect the cancelled run.
                    if mode == "abort" and writer is not None:
                        try:
                            writer.checkpoint_path.unlink()
                        except OSError:
                            pass
                    self.stopped = True
                    return
                if not env.step():
                    break
            result = experiment.federator.result
            self._result = result
            self._wall_seconds = time.perf_counter() - start
            if writer is not None:
                writer.finalize(result, wall_seconds=self._wall_seconds)
                writer = None
        finally:
            executor = getattr(experiment.cluster, "batched_executor", None)
            if executor is not None:
                executor.close()
            if writer is not None:  # stream abandoned mid-run
                writer.abort()

    def result(self) -> ExperimentResult:
        """Drive the run to completion and return its result."""
        for _ in self.stream():
            pass
        assert self._result is not None
        return self._result

    def summary(self) -> Dict[str, float]:
        """The completed run's flat summary row."""
        return self.result().summary()

    def __iter__(self) -> Iterator[RoundRecord]:
        return self.stream()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("stored" if self.loaded_from_store else "pending")
        return f"RunHandle({self.label!r}, {state}, {self.config_hash[:12]})"


def run(
    config: Union[ExperimentConfig, ExperimentSpec],
    *,
    store: StoreLike = None,
    on_round: Optional[RoundCallback] = None,
    label: Optional[str] = None,
    resume: bool = False,
) -> RunHandle:
    """Run one experiment (config or fluent spec), returning its handle.

    With ``resume=True`` and a store, an interrupted run of the same
    configuration continues from its last mid-run checkpoint (see
    ``config.checkpoint_interval``); the resumed rounds are bitwise
    identical to an uninterrupted run.
    """
    if isinstance(config, ExperimentSpec):
        label = label or config.run_label
        config = config.build()
    return RunHandle(config, store=store, on_round=on_round, label=label, resume=resume)


class SweepHandle:
    """Results of a batch of runs executed through :func:`sweep`.

    Wraps the familiar :class:`~repro.experiments.runner.SuiteResult`
    (``.suite``) and records which cells were served from the persistent
    store (``.store_hits``) versus the execution-policy cache
    (``.cache_hits``).
    """

    def __init__(
        self,
        suite: SuiteResult,
        store: Optional[RunStore] = None,
        store_hits: Iterable[str] = (),
    ) -> None:
        self.suite = suite
        self.store = store
        self.store_hits = list(store_hits)
        #: Per-cell scheduler states (populated on the budget-aware path;
        #: plain ``sweep`` marks every returned cell complete).
        self.states: Dict[str, str] = {label: "complete" for label in suite.results}
        #: Exceptions of failed cells (budget-aware path only).
        self.errors: Dict[str, BaseException] = {}

    @property
    def results(self) -> Dict[str, ExperimentResult]:
        return self.suite.results

    @property
    def cache_hits(self) -> List[str]:
        return self.suite.cache_hits

    def labels(self) -> Iterable[str]:
        return self.suite.labels()

    def summaries(self) -> Dict[str, Dict[str, float]]:
        return self.suite.summaries()

    def total_wall_seconds(self) -> float:
        return self.suite.total_wall_seconds()

    def __getitem__(self, label: str) -> ExperimentResult:
        return self.suite[label]

    def __contains__(self, label: str) -> bool:
        return label in self.suite

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepHandle({len(self.suite.results)} runs, {len(self.store_hits)} store hits)"


def _normalise_configs(
    configs: Union[
        Mapping[str, Union[ExperimentConfig, ExperimentSpec]],
        Iterable[ExperimentSpec],
    ],
) -> Dict[str, ExperimentConfig]:
    normalised: Dict[str, ExperimentConfig] = {}
    if isinstance(configs, Mapping):
        items = configs.items()
    else:
        specs = list(configs)
        items = [(spec.run_label, spec) for spec in specs]
    for label, config in items:
        if isinstance(config, ExperimentSpec):
            config = config.build()
        if label in normalised:
            raise ValueError(f"duplicate sweep label {label!r}")
        normalised[label] = config
    return normalised


def sweep(
    configs: Union[
        Mapping[str, Union[ExperimentConfig, ExperimentSpec]],
        Iterable[ExperimentSpec],
    ],
    *,
    store: StoreLike = None,
    workers: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
    progress: Optional[Callable[[str, ExperimentResult], None]] = None,
    budget_seconds: Optional[float] = None,
    max_cells: Optional[int] = None,
    resume: bool = False,
    checkpoint_interval: Optional[int] = None,
) -> SweepHandle:
    """Run a labelled batch of experiments, persisting through the store.

    Cells whose exact configuration is already complete in the store are
    loaded from disk (listed in ``SweepHandle.store_hits``); the rest run
    through the parallel sweep infrastructure — honouring the active
    execution policy (``REPRO_WORKERS`` / ``REPRO_CACHE_DIR`` or the CLI's
    ``--workers`` / ``--cache-dir``) unless ``workers``/``cache_dir`` are
    given explicitly — and are then persisted.

    Any of ``budget_seconds`` / ``max_cells`` / ``resume`` /
    ``checkpoint_interval`` routes the batch through the
    :class:`~repro.experiments.scheduler.SweepScheduler` instead: cells run
    serially with per-cell states, the budget is checked before each cell
    (exhaustion marks the rest ``budget_exceeded``), and interrupted cells
    resume from their mid-run checkpoints.
    """
    normalised = _normalise_configs(configs)
    run_store = _coerce_store(store)

    if (
        budget_seconds is not None
        or max_cells is not None
        or resume
        or checkpoint_interval is not None
    ):
        from repro.experiments.scheduler import BudgetTracker, SweepScheduler

        scheduler = SweepScheduler(
            normalised,
            store=run_store,
            budget=BudgetTracker(wall_seconds=budget_seconds, max_cells=max_cells),
            resume=resume,
            checkpoint_interval=checkpoint_interval,
            progress=progress,
        )
        return scheduler.run()

    results: Dict[str, ExperimentResult] = {}
    walls: Dict[str, float] = {}
    store_hits: List[str] = []
    pending: Dict[str, ExperimentConfig] = {}
    for label, config in normalised.items():
        stored = run_store.get(config) if run_store is not None else None
        if stored is not None:
            result = stored.load_result()
            results[label] = result
            walls[label] = 0.0
            store_hits.append(label)
            if progress is not None:
                progress(label, result)
        else:
            pending[label] = config

    cache_hits: List[str] = []
    if pending:
        if workers is None and cache_dir is None:
            executed = run_suite(pending, progress=progress)
        else:
            executed = run_configs_parallel(
                pending, workers=workers, cache_dir=cache_dir, progress=progress
            )
        cache_hits = executed.cache_hits
        for label, config in pending.items():
            result = executed.results[label]
            wall = executed.wall_seconds[label]
            results[label] = result
            walls[label] = wall
            if run_store is not None:
                run_store.put(config, result, wall_seconds=wall, label=label)

    suite = SuiteResult(cache_hits=cache_hits)
    for label in normalised:
        suite.results[label] = results[label]
        suite.wall_seconds[label] = walls[label]
    return SweepHandle(suite, store=run_store, store_hits=store_hits)
