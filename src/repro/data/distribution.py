"""Class-distribution vectors and Earth Mover's Distance similarity.

The paper (§2.3, §4.4) measures the heterogeneity of client datasets with
the Earth Mover's Distance (EMD) between their class distributions and uses
pair-wise similarities — computed privately inside an SGX enclave — to
refine the freeze/offload schedule.  This module provides the numerical
side of that computation; :mod:`repro.core.enclave` provides the trusted
execution boundary around it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def class_distribution(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Count the number of samples of each class.

    This is the "number of labels per class" vector that clients encrypt
    and send to the federator's enclave.
    """
    if num_classes < 1:
        raise ValueError("num_classes must be at least 1")
    labels = np.asarray(labels)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels outside [0, num_classes)")
    return np.bincount(labels, minlength=num_classes).astype(np.float64)


def normalized_class_distribution(counts: np.ndarray) -> np.ndarray:
    """Normalise a class-count vector into a probability distribution.

    An all-zero vector (a client with no data) maps to the uniform
    distribution, which makes it maximally "average" rather than undefined.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return np.full(counts.shape, 1.0 / counts.size)
    return counts / total


def earth_movers_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Earth Mover's Distance between two distributions over the same classes.

    For one-dimensional histograms over a common, equally spaced support the
    EMD reduces to the L1 distance between cumulative distributions
    (normalised here to [0, 1] by dividing by the number of classes so the
    value is comparable across datasets with different class counts).
    """
    p = normalized_class_distribution(np.asarray(p, dtype=np.float64))
    q = normalized_class_distribution(np.asarray(q, dtype=np.float64))
    if p.shape != q.shape:
        raise ValueError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    cdf_diff = np.cumsum(p - q)
    return float(np.abs(cdf_diff).sum() / p.size)


def similarity_matrix(
    class_counts: Sequence[np.ndarray], metric: str = "emd"
) -> np.ndarray:
    """Pair-wise dataset dissimilarity matrix ``S`` used by Algorithm 1.

    ``S[i, j]`` is the EMD between the class distributions of clients ``i``
    and ``j``; lower values mean more similar datasets, which matches the
    cost function of Algorithm 1 (line 24) where a *smaller* ``S`` makes an
    offloading target cheaper.  The matrix is symmetric with a zero
    diagonal.

    Parameters
    ----------
    class_counts:
        One class-count vector per client.
    metric:
        Only ``"emd"`` is supported; the parameter exists so alternative
        privacy-preserving similarity measures can be plugged in later.
    """
    if metric != "emd":
        raise ValueError(f"unsupported similarity metric {metric!r}")
    num_clients = len(class_counts)
    matrix = np.zeros((num_clients, num_clients), dtype=np.float64)
    distributions = [normalized_class_distribution(c) for c in class_counts]
    for i in range(num_clients):
        for j in range(i + 1, num_clients):
            distance = earth_movers_distance(distributions[i], distributions[j])
            matrix[i, j] = distance
            matrix[j, i] = distance
    return matrix


def heterogeneity_index(
    class_counts: Sequence[np.ndarray], reference: Optional[np.ndarray] = None
) -> float:
    """Average EMD of client distributions to the global (or given) reference.

    This is the dataset-level heterogeneity measure discussed in §2.3: the
    higher the average EMD, the more non-IID the partition.
    """
    if not class_counts:
        raise ValueError("need at least one client distribution")
    counts = [np.asarray(c, dtype=np.float64) for c in class_counts]
    if reference is None:
        reference = np.sum(counts, axis=0)
    return float(
        np.mean([earth_movers_distance(c, reference) for c in counts])
    )
