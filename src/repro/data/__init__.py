"""Dataset substrate: synthetic image benchmarks, partitioning and similarity.

The paper evaluates on MNIST, Fashion-MNIST and Cifar-10 and (for phase
profiling) Cifar-100.  Because this reproduction runs offline, the datasets
are replaced by deterministic *synthetic* class-conditional image
generators with the same shapes and class counts
(:mod:`repro.data.datasets`).  All the machinery that the paper's
evaluation actually depends on — partitioning data across clients, IID and
non-IID label skews, per-client class distributions, and Earth Mover's
Distance similarity between clients — operates on these datasets exactly
as it would on the real benchmarks.
"""

from repro.data.datasets import (
    Dataset,
    make_dataset,
    synthetic_mnist,
    synthetic_fmnist,
    synthetic_cifar10,
    synthetic_cifar100,
    DATASETS,
)
from repro.data.partition import (
    ClientPartition,
    partition_iid,
    partition_noniid_label_skew,
    partition_dirichlet,
    partition_dataset,
)
from repro.data.distribution import (
    class_distribution,
    normalized_class_distribution,
    earth_movers_distance,
    similarity_matrix,
)
from repro.data.loader import BatchLoader

__all__ = [
    "Dataset",
    "make_dataset",
    "synthetic_mnist",
    "synthetic_fmnist",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "DATASETS",
    "ClientPartition",
    "partition_iid",
    "partition_noniid_label_skew",
    "partition_dirichlet",
    "partition_dataset",
    "class_distribution",
    "normalized_class_distribution",
    "earth_movers_distance",
    "similarity_matrix",
    "BatchLoader",
]
