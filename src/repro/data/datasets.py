"""Deterministic synthetic image datasets mirroring the paper's benchmarks.

The reproduction cannot download MNIST, Fashion-MNIST or Cifar-10, so this
module generates class-conditional synthetic images with the same shapes
(28x28x1 for MNIST/FMNIST, 32x32x3 for Cifar) and the same number of
classes.  Each class is defined by a smooth random prototype image; samples
are produced by adding a per-sample deformation (random shift) and Gaussian
pixel noise to the prototype.  The result is a dataset that:

* is learnable by a small CNN (accuracy well above chance within a few
  epochs), so accuracy comparisons between FL algorithms are meaningful;
* has genuine class structure, so non-IID label partitions create the model
  divergence effects the paper studies;
* is fully deterministic given a seed, so experiments are reproducible.

This substitution is documented in DESIGN.md §1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Tuple

import numpy as np

from repro.registry import DATASETS as _DATASET_REGISTRY
from repro.registry import RegistryView, register_dataset


@dataclass
class Dataset:
    """An in-memory image classification dataset.

    Attributes
    ----------
    name:
        Dataset identifier (``"mnist"``, ``"fmnist"``, ``"cifar10"``, ...).
    x_train, y_train, x_test, y_test:
        Images in ``(N, C, H, W)`` float64 layout and integer labels.
    num_classes:
        Number of distinct labels.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """Per-sample shape ``(C, H, W)``."""
        return tuple(self.x_train.shape[1:])  # type: ignore[return-value]

    @property
    def train_size(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def test_size(self) -> int:
        return int(self.x_test.shape[0])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new dataset whose training split is restricted to ``indices``.

        The test split is shared (not copied) because federated clients
        evaluate against the same global test set.
        """
        indices = np.asarray(indices, dtype=int)
        return Dataset(
            name=self.name,
            x_train=self.x_train[indices],
            y_train=self.y_train[indices],
            x_test=self.x_test,
            y_test=self.y_test,
            num_classes=self.num_classes,
        )


def _smooth_prototype(
    shape: Tuple[int, int, int], rng: np.random.Generator, smoothness: int = 4
) -> np.ndarray:
    """Create a smooth class prototype by upsampling low-resolution noise."""
    c, h, w = shape
    low = rng.uniform(0.0, 1.0, size=(c, smoothness, smoothness))
    # Bilinear-ish upsample by repetition then box blur.
    proto = np.repeat(np.repeat(low, h // smoothness + 1, axis=1), w // smoothness + 1, axis=2)
    proto = proto[:, :h, :w]
    kernel = np.ones((3, 3)) / 9.0
    blurred = np.empty_like(proto)
    padded = np.pad(proto, ((0, 0), (1, 1), (1, 1)), mode="edge")
    for i in range(3):
        for j in range(3):
            if i == 0 and j == 0:
                blurred = kernel[0, 0] * padded[:, i : i + h, j : j + w]
            else:
                blurred = blurred + kernel[i, j] * padded[:, i : i + h, j : j + w]
    return blurred


def _generate_split(
    n_samples: int,
    prototypes: np.ndarray,
    noise: float,
    max_shift: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``n_samples`` images by perturbing class prototypes.

    ``prototypes`` has shape ``(num_classes, modes, C, H, W)``: each class
    can have several visual modes (e.g. different writing styles of the same
    digit), which keeps the classification problem from being trivially
    separable and lets accuracy evolve over multiple federated rounds.
    """
    num_classes, modes, c, h, w = prototypes.shape
    labels = rng.integers(0, num_classes, size=n_samples)
    mode_choice = rng.integers(0, modes, size=n_samples)
    images = np.empty((n_samples, c, h, w), dtype=np.float64)
    shifts_y = rng.integers(-max_shift, max_shift + 1, size=n_samples)
    shifts_x = rng.integers(-max_shift, max_shift + 1, size=n_samples)
    for i in range(n_samples):
        proto = prototypes[labels[i], mode_choice[i]]
        shifted = np.roll(proto, (shifts_y[i], shifts_x[i]), axis=(1, 2))
        images[i] = shifted
    images += rng.normal(0.0, noise, size=images.shape)
    np.clip(images, 0.0, 1.0, out=images)
    # Standardise to zero mean / unit-ish scale, like torchvision transforms.
    images = (images - 0.5) / 0.5
    return images, labels.astype(np.int64)


def make_dataset(
    name: str,
    shape: Tuple[int, int, int],
    num_classes: int,
    train_size: int,
    test_size: int,
    noise: float = 0.35,
    max_shift: int = 3,
    modes_per_class: int = 2,
    seed: int = 0,
) -> Dataset:
    """Build a synthetic dataset with the requested geometry.

    Parameters
    ----------
    name:
        Dataset identifier used in reports.
    shape:
        Per-sample ``(C, H, W)`` shape.
    num_classes:
        Number of classes.
    train_size, test_size:
        Number of training and test samples.
    noise:
        Standard deviation of the per-pixel Gaussian noise.
    max_shift:
        Maximum absolute spatial shift (pixels) applied to prototypes.
    modes_per_class:
        Number of distinct prototypes (visual modes) per class; more modes
        make the classification problem harder.
    seed:
        Seed controlling prototypes and samples.
    """
    if train_size <= 0 or test_size <= 0:
        raise ValueError("train_size and test_size must be positive")
    if num_classes < 2:
        raise ValueError("a classification dataset needs at least 2 classes")
    if modes_per_class < 1:
        raise ValueError("modes_per_class must be at least 1")
    rng = np.random.default_rng(seed)
    prototypes = np.stack(
        [
            np.stack([_smooth_prototype(shape, rng) for _ in range(modes_per_class)])
            for _ in range(num_classes)
        ]
    )
    x_train, y_train = _generate_split(train_size, prototypes, noise, max_shift, rng)
    x_test, y_test = _generate_split(test_size, prototypes, noise, max_shift, rng)
    return Dataset(
        name=name,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=num_classes,
    )


@register_dataset("mnist")
def synthetic_mnist(train_size: int = 4000, test_size: int = 1000, seed: int = 1) -> Dataset:
    """Synthetic stand-in for MNIST (28x28 grayscale, 10 classes)."""
    return make_dataset("mnist", (1, 28, 28), 10, train_size, test_size, noise=0.35, seed=seed)


@register_dataset("fmnist")
def synthetic_fmnist(train_size: int = 4000, test_size: int = 1000, seed: int = 2) -> Dataset:
    """Synthetic stand-in for Fashion-MNIST (28x28 grayscale, 10 classes)."""
    return make_dataset("fmnist", (1, 28, 28), 10, train_size, test_size, noise=0.45, seed=seed)


@register_dataset("cifar10")
def synthetic_cifar10(train_size: int = 4000, test_size: int = 1000, seed: int = 3) -> Dataset:
    """Synthetic stand-in for Cifar-10 (32x32 RGB, 10 classes)."""
    return make_dataset("cifar10", (3, 32, 32), 10, train_size, test_size, noise=0.5, seed=seed)


@register_dataset("cifar100")
def synthetic_cifar100(train_size: int = 4000, test_size: int = 1000, seed: int = 4) -> Dataset:
    """Synthetic stand-in for Cifar-100 (32x32 RGB, 100 classes)."""
    return make_dataset("cifar100", (3, 32, 32), 100, train_size, test_size, noise=0.5, seed=seed)


#: Dict-like facade over the dataset registry, kept for the historical
#: ``DATASETS[name]`` call sites; :data:`repro.registry.DATASETS` is the
#: source of truth (datasets registered by third-party code appear here).
DATASETS: Mapping[str, Callable[..., Dataset]] = RegistryView(_DATASET_REGISTRY)


def load_dataset(name: str, train_size: Optional[int] = None, test_size: Optional[int] = None, seed: Optional[int] = None) -> Dataset:
    """Load a named synthetic dataset with optional size/seed overrides."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None
    kwargs = {}
    if train_size is not None:
        kwargs["train_size"] = train_size
    if test_size is not None:
        kwargs["test_size"] = test_size
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)
