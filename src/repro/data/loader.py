"""Mini-batch iteration over a client's local dataset."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class BatchLoader:
    """Deterministic, reshuffling mini-batch loader.

    Mirrors the behaviour of a PyTorch ``DataLoader`` with
    ``shuffle=True, drop_last=False``: every epoch visits all samples once
    in a fresh random order.  The loader owns its random generator so that
    per-client shuffling is reproducible and independent across clients.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
    ) -> None:
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x and y disagree on sample count: {x.shape[0]} vs {y.shape[0]}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)
        self._order = np.arange(x.shape[0])
        self._cursor = 0
        if self.shuffle and x.shape[0]:
            self._rng.shuffle(self._order)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        n = self.x.shape[0]
        return int(np.ceil(n / self.batch_size)) if n else 0

    @property
    def num_samples(self) -> int:
        return int(self.x.shape[0])

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the next mini-batch, reshuffling at epoch boundaries."""
        n = self.x.shape[0]
        if n == 0:
            raise ValueError("cannot draw batches from an empty dataset")
        if self._cursor >= n:
            self._cursor = 0
            if self.shuffle:
                self._rng.shuffle(self._order)
        idx = self._order[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.x[idx], self.y[idx]

    def state(self) -> dict:
        """The loader's position in its shuffle stream, as plain data.

        Together with :meth:`set_state` this lets the virtualized client
        pool dehydrate a client and later resume its batch sequence exactly
        where an always-hydrated client would be — the loader is the only
        numeric state that persists across rounds.
        """
        return {
            "rng_state": self._rng.bit_generator.state,
            "order": self._order.copy(),
            "cursor": self._cursor,
        }

    def set_state(self, state: dict) -> None:
        """Restore a position previously captured with :meth:`state`."""
        order = np.asarray(state["order"])
        if order.shape[0] != self.x.shape[0]:
            raise ValueError(
                f"loader state covers {order.shape[0]} samples, dataset has {self.x.shape[0]}"
            )
        self._rng.bit_generator.state = state["rng_state"]
        self._order = order.copy()
        self._cursor = int(state["cursor"])

    def epoch(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over exactly one epoch of batches."""
        for _ in range(len(self)):
            yield self.next_batch()

    def batches_per_epochs(self, epochs: int) -> int:
        """Total number of batches needed to train for ``epochs`` epochs."""
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        return len(self) * epochs
