"""Partitioning a dataset across federated clients.

The paper evaluates two regimes (§5.1 "Heterogeneous Data Distribution"):

* **IID** — every client receives an equal share of the training data drawn
  uniformly at random, so all clients see all classes in similar
  proportions.
* **non-IID(k)** — every client samples ``k`` of the 10 classes (the paper
  uses 3 by default and sweeps 2/5/10 in Figure 10) and only receives
  images from those classes.  Client datasets are disjoint.

Both are implemented here, together with a Dirichlet partitioner that is
standard in the FL literature and used by the extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.datasets import Dataset


@dataclass
class ClientPartition:
    """The slice of the global training data owned by one client.

    Attributes
    ----------
    client_id:
        Index of the owning client.
    indices:
        Indices into the global training arrays.
    class_counts:
        Number of samples of each class owned by the client (length equals
        the dataset's number of classes).  This is the privacy-sensitive
        vector that clients send, encrypted, to the SGX enclave.
    """

    client_id: int
    indices: np.ndarray
    class_counts: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])


def _counts_for(indices: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    return np.bincount(labels[indices], minlength=num_classes).astype(np.int64)


def partition_iid(
    dataset: Dataset, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[ClientPartition]:
    """Split the training data uniformly at random into equal disjoint shares."""
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    if dataset.train_size < num_clients:
        raise ValueError(
            f"cannot split {dataset.train_size} samples across {num_clients} clients"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    permutation = rng.permutation(dataset.train_size)
    shards = np.array_split(permutation, num_clients)
    return [
        ClientPartition(
            client_id=i,
            indices=np.sort(shard),
            class_counts=_counts_for(shard, dataset.y_train, dataset.num_classes),
        )
        for i, shard in enumerate(shards)
    ]


def partition_noniid_label_skew(
    dataset: Dataset,
    num_clients: int,
    classes_per_client: int,
    rng: Optional[np.random.Generator] = None,
) -> List[ClientPartition]:
    """Non-IID partition where each client owns samples from ``k`` classes.

    This follows the paper's setup: each client samples
    ``classes_per_client`` classes out of the available ones and receives
    only images of those classes.  Client datasets are disjoint (no image is
    shared between clients).  Every sample of a class is divided evenly
    among the clients that selected that class; classes selected by no
    client are simply unused, as in the paper's sampling procedure.
    """
    if not 1 <= classes_per_client <= dataset.num_classes:
        raise ValueError(
            f"classes_per_client must be in [1, {dataset.num_classes}], got {classes_per_client}"
        )
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    rng = rng if rng is not None else np.random.default_rng(0)

    # Each client picks its classes; ensure every client gets distinct classes.
    client_classes = [
        rng.choice(dataset.num_classes, size=classes_per_client, replace=False)
        for _ in range(num_clients)
    ]

    # Group sample indices by class, shuffled.
    per_class_indices: Dict[int, np.ndarray] = {}
    for cls in range(dataset.num_classes):
        idx = np.flatnonzero(dataset.y_train == cls)
        per_class_indices[cls] = rng.permutation(idx)

    # For each class, figure out which clients want it and split its samples.
    claimants: Dict[int, List[int]] = {cls: [] for cls in range(dataset.num_classes)}
    for client_id, classes in enumerate(client_classes):
        for cls in classes:
            claimants[int(cls)].append(client_id)

    assigned: Dict[int, List[np.ndarray]] = {client_id: [] for client_id in range(num_clients)}
    for cls, clients in claimants.items():
        if not clients:
            continue
        shards = np.array_split(per_class_indices[cls], len(clients))
        for client_id, shard in zip(clients, shards):
            assigned[client_id].append(shard)

    partitions: List[ClientPartition] = []
    for client_id in range(num_clients):
        if assigned[client_id]:
            indices = np.sort(np.concatenate(assigned[client_id]))
        else:  # pragma: no cover - only possible with pathological configurations
            indices = np.array([], dtype=int)
        partitions.append(
            ClientPartition(
                client_id=client_id,
                indices=indices,
                class_counts=_counts_for(indices, dataset.y_train, dataset.num_classes)
                if indices.size
                else np.zeros(dataset.num_classes, dtype=np.int64),
            )
        )
    return partitions


def partition_dirichlet(
    dataset: Dataset,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[ClientPartition]:
    """Dirichlet label-skew partition (standard in the FL literature).

    For every class, the samples are distributed across clients according to
    a draw from ``Dirichlet(alpha)``.  Smaller ``alpha`` means stronger
    skew.  Used by the extension benchmarks to explore non-IIDness beyond
    the paper's k-class sampling.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    rng = rng if rng is not None else np.random.default_rng(0)

    assigned: Dict[int, List[np.ndarray]] = {client_id: [] for client_id in range(num_clients)}
    for cls in range(dataset.num_classes):
        idx = rng.permutation(np.flatnonzero(dataset.y_train == cls))
        if idx.size == 0:
            continue
        proportions = rng.dirichlet([alpha] * num_clients)
        counts = np.floor(proportions * idx.size).astype(int)
        # Distribute the rounding remainder to the largest shares.
        remainder = idx.size - counts.sum()
        if remainder > 0:
            order = np.argsort(-proportions)
            counts[order[:remainder]] += 1
        start = 0
        for client_id, count in enumerate(counts):
            if count > 0:
                assigned[client_id].append(idx[start : start + count])
                start += count

    partitions: List[ClientPartition] = []
    for client_id in range(num_clients):
        if assigned[client_id]:
            indices = np.sort(np.concatenate(assigned[client_id]))
        else:
            indices = np.array([], dtype=int)
        partitions.append(
            ClientPartition(
                client_id=client_id,
                indices=indices,
                class_counts=_counts_for(indices, dataset.y_train, dataset.num_classes)
                if indices.size
                else np.zeros(dataset.num_classes, dtype=np.int64),
            )
        )
    return partitions


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    scheme: str = "iid",
    classes_per_client: int = 3,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[ClientPartition]:
    """Dispatch to one of the partitioning schemes by name.

    Parameters
    ----------
    scheme:
        ``"iid"``, ``"noniid"`` (k-class label skew, the paper's setup) or
        ``"dirichlet"``.
    """
    if scheme == "iid":
        return partition_iid(dataset, num_clients, rng=rng)
    if scheme == "noniid":
        return partition_noniid_label_skew(
            dataset, num_clients, classes_per_client=classes_per_client, rng=rng
        )
    if scheme == "dirichlet":
        return partition_dirichlet(dataset, num_clients, alpha=alpha, rng=rng)
    raise ValueError(f"unknown partitioning scheme {scheme!r}")
