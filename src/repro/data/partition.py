"""Partitioning a dataset across federated clients.

The paper evaluates two regimes (§5.1 "Heterogeneous Data Distribution"):

* **IID** — every client receives an equal share of the training data drawn
  uniformly at random, so all clients see all classes in similar
  proportions.
* **non-IID(k)** — every client samples ``k`` of the 10 classes (the paper
  uses 3 by default and sweeps 2/5/10 in Figure 10) and only receives
  images from those classes.  Client datasets are disjoint.

Both are implemented here, together with a Dirichlet partitioner that is
standard in the FL literature and used by the extension benchmarks.

Two access paths share the same randomness:

* the **eager** functions (:func:`partition_iid`,
  :func:`partition_noniid_label_skew`, :func:`partition_dirichlet`) return
  one :class:`ClientPartition` per client up front — the historical
  behaviour, kept as the reference implementation;
* a **lazy** :class:`PartitionPlan` (built by :func:`plan_partition`)
  consumes the *identical* random draws at construction but defers the
  per-client index assembly (concatenate + sort + class counting) until a
  client's shard is actually requested.  This is what the virtualized
  client pool uses: a 5000-client cohort only ever pays for the shards of
  the clients hydrated for a round.  ``plan.materialize()`` is byte-
  identical to the eager functions for every scheme, which
  :func:`partition_dataset` relies on by routing through the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.datasets import Dataset


@dataclass
class ClientPartition:
    """The slice of the global training data owned by one client.

    Attributes
    ----------
    client_id:
        Index of the owning client.
    indices:
        Indices into the global training arrays.
    class_counts:
        Number of samples of each class owned by the client (length equals
        the dataset's number of classes).  This is the privacy-sensitive
        vector that clients send, encrypted, to the SGX enclave.
    """

    client_id: int
    indices: np.ndarray
    class_counts: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])


def _counts_for(indices: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    return np.bincount(labels[indices], minlength=num_classes).astype(np.int64)


def partition_iid(
    dataset: Dataset, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[ClientPartition]:
    """Split the training data uniformly at random into equal disjoint shares."""
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    if dataset.train_size < num_clients:
        raise ValueError(
            f"cannot split {dataset.train_size} samples across {num_clients} clients"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    permutation = rng.permutation(dataset.train_size)
    shards = np.array_split(permutation, num_clients)
    return [
        ClientPartition(
            client_id=i,
            indices=np.sort(shard),
            class_counts=_counts_for(shard, dataset.y_train, dataset.num_classes),
        )
        for i, shard in enumerate(shards)
    ]


def partition_noniid_label_skew(
    dataset: Dataset,
    num_clients: int,
    classes_per_client: int,
    rng: Optional[np.random.Generator] = None,
) -> List[ClientPartition]:
    """Non-IID partition where each client owns samples from ``k`` classes.

    This follows the paper's setup: each client samples
    ``classes_per_client`` classes out of the available ones and receives
    only images of those classes.  Client datasets are disjoint (no image is
    shared between clients).  Every sample of a class is divided evenly
    among the clients that selected that class; classes selected by no
    client are simply unused, as in the paper's sampling procedure.
    """
    if not 1 <= classes_per_client <= dataset.num_classes:
        raise ValueError(
            f"classes_per_client must be in [1, {dataset.num_classes}], got {classes_per_client}"
        )
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    rng = rng if rng is not None else np.random.default_rng(0)

    # Each client picks its classes; ensure every client gets distinct classes.
    client_classes = [
        rng.choice(dataset.num_classes, size=classes_per_client, replace=False)
        for _ in range(num_clients)
    ]

    # Group sample indices by class, shuffled.
    per_class_indices: Dict[int, np.ndarray] = {}
    for cls in range(dataset.num_classes):
        idx = np.flatnonzero(dataset.y_train == cls)
        per_class_indices[cls] = rng.permutation(idx)

    # For each class, figure out which clients want it and split its samples.
    claimants: Dict[int, List[int]] = {cls: [] for cls in range(dataset.num_classes)}
    for client_id, classes in enumerate(client_classes):
        for cls in classes:
            claimants[int(cls)].append(client_id)

    assigned: Dict[int, List[np.ndarray]] = {client_id: [] for client_id in range(num_clients)}
    for cls, clients in claimants.items():
        if not clients:
            continue
        shards = np.array_split(per_class_indices[cls], len(clients))
        for client_id, shard in zip(clients, shards):
            assigned[client_id].append(shard)

    partitions: List[ClientPartition] = []
    for client_id in range(num_clients):
        if assigned[client_id]:
            indices = np.sort(np.concatenate(assigned[client_id]))
        else:  # pragma: no cover - only possible with pathological configurations
            indices = np.array([], dtype=int)
        partitions.append(
            ClientPartition(
                client_id=client_id,
                indices=indices,
                class_counts=_counts_for(indices, dataset.y_train, dataset.num_classes)
                if indices.size
                else np.zeros(dataset.num_classes, dtype=np.int64),
            )
        )
    return partitions


def partition_dirichlet(
    dataset: Dataset,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[ClientPartition]:
    """Dirichlet label-skew partition (standard in the FL literature).

    For every class, the samples are distributed across clients according to
    a draw from ``Dirichlet(alpha)``.  Smaller ``alpha`` means stronger
    skew.  Used by the extension benchmarks to explore non-IIDness beyond
    the paper's k-class sampling.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    rng = rng if rng is not None else np.random.default_rng(0)

    assigned: Dict[int, List[np.ndarray]] = {client_id: [] for client_id in range(num_clients)}
    for cls in range(dataset.num_classes):
        idx = rng.permutation(np.flatnonzero(dataset.y_train == cls))
        if idx.size == 0:
            continue
        proportions = rng.dirichlet([alpha] * num_clients)
        counts = np.floor(proportions * idx.size).astype(int)
        # Distribute the rounding remainder to the largest shares.
        remainder = idx.size - counts.sum()
        if remainder > 0:
            order = np.argsort(-proportions)
            counts[order[:remainder]] += 1
        start = 0
        for client_id, count in enumerate(counts):
            if count > 0:
                assigned[client_id].append(idx[start : start + count])
                start += count

    partitions: List[ClientPartition] = []
    for client_id in range(num_clients):
        if assigned[client_id]:
            indices = np.sort(np.concatenate(assigned[client_id]))
        else:
            indices = np.array([], dtype=int)
        partitions.append(
            ClientPartition(
                client_id=client_id,
                indices=indices,
                class_counts=_counts_for(indices, dataset.y_train, dataset.num_classes)
                if indices.size
                else np.zeros(dataset.num_classes, dtype=np.int64),
            )
        )
    return partitions


# ---------------------------------------------------------------------------
# Lazy partition plans: derive any client's shard on demand
# ---------------------------------------------------------------------------
class PartitionPlan:
    """Derives any single client's shard on demand.

    A plan performs every random draw of its eager counterpart at
    construction time (in the identical order, from the identical
    generator), but stores only *views* into the drawn permutations — the
    per-client concatenation, sort and class counting are deferred to
    :meth:`indices_for` / :meth:`partition`.  Construction therefore costs
    O(train_size) index memory regardless of the cohort size, and asking
    for one client's shard costs O(shard) — the property the virtualized
    client pool builds on.
    """

    def __init__(self, dataset: Dataset, num_clients: int) -> None:
        if num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        self.num_clients = num_clients
        self._labels = dataset.y_train
        self._num_classes = dataset.num_classes

    # -------------------------------------------------------------- interface
    def _shard_views(self, client_id: int) -> List[np.ndarray]:
        """The (unsorted) index slices owned by one client."""
        raise NotImplementedError

    def _check_client(self, client_id: int) -> None:
        if not 0 <= client_id < self.num_clients:
            raise IndexError(
                f"client_id must be in [0, {self.num_clients}), got {client_id}"
            )

    def indices_for(self, client_id: int) -> np.ndarray:
        """The client's sorted indices into the global training arrays."""
        self._check_client(client_id)
        views = self._shard_views(client_id)
        if not views:
            return np.array([], dtype=int)
        if len(views) == 1:
            return np.sort(views[0])
        return np.sort(np.concatenate(views))

    def size_of(self, client_id: int) -> int:
        """Number of samples the client owns (no index assembly needed)."""
        self._check_client(client_id)
        return int(sum(view.shape[0] for view in self._shard_views(client_id)))

    def _counts(self, indices: np.ndarray) -> np.ndarray:
        if not indices.size:
            return np.zeros(self._num_classes, dtype=np.int64)
        return _counts_for(indices, self._labels, self._num_classes)

    def class_counts_for(self, client_id: int) -> np.ndarray:
        """Per-class sample counts of the client's shard."""
        return self._counts(self.indices_for(client_id))

    def partition(self, client_id: int) -> ClientPartition:
        """Materialise one client's :class:`ClientPartition` on demand."""
        indices = self.indices_for(client_id)
        return ClientPartition(
            client_id=client_id,
            indices=indices,
            class_counts=self._counts(indices),
        )

    def sizes(self) -> List[int]:
        """Per-client shard sizes for the whole cohort."""
        return [self.size_of(client_id) for client_id in range(self.num_clients)]

    def materialize(self) -> List[ClientPartition]:
        """Every client's partition — the eager equivalent of this plan."""
        return [self.partition(client_id) for client_id in range(self.num_clients)]


class IIDPartitionPlan(PartitionPlan):
    """Lazy counterpart of :func:`partition_iid` (same draws, same shards)."""

    def __init__(
        self, dataset: Dataset, num_clients: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__(dataset, num_clients)
        if dataset.train_size < num_clients:
            raise ValueError(
                f"cannot split {dataset.train_size} samples across {num_clients} clients"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self._permutation = rng.permutation(dataset.train_size)
        # array_split returns views into the permutation: no copies here.
        self._shards = np.array_split(self._permutation, num_clients)

    def _shard_views(self, client_id: int) -> List[np.ndarray]:
        return [self._shards[client_id]]


class NonIIDPartitionPlan(PartitionPlan):
    """Lazy counterpart of :func:`partition_noniid_label_skew`."""

    def __init__(
        self,
        dataset: Dataset,
        num_clients: int,
        classes_per_client: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(dataset, num_clients)
        if not 1 <= classes_per_client <= dataset.num_classes:
            raise ValueError(
                f"classes_per_client must be in [1, {dataset.num_classes}], "
                f"got {classes_per_client}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)

        client_classes = [
            rng.choice(dataset.num_classes, size=classes_per_client, replace=False)
            for _ in range(num_clients)
        ]
        per_class_indices: Dict[int, np.ndarray] = {}
        for cls in range(dataset.num_classes):
            idx = np.flatnonzero(dataset.y_train == cls)
            per_class_indices[cls] = rng.permutation(idx)

        claimants: Dict[int, List[int]] = {cls: [] for cls in range(dataset.num_classes)}
        for client_id, classes in enumerate(client_classes):
            for cls in classes:
                claimants[int(cls)].append(client_id)

        #: client -> (class, slot) pairs, in class order — mirrors the order
        #: in which the eager path appends shards to each client.
        self._claims: Dict[int, List[Tuple[int, int]]] = {
            client_id: [] for client_id in range(num_clients)
        }
        #: (class, slot) -> view into that class's permuted indices.
        self._slices: Dict[Tuple[int, int], np.ndarray] = {}
        for cls, clients in claimants.items():
            if not clients:
                continue
            shards = np.array_split(per_class_indices[cls], len(clients))
            for slot, (client_id, shard) in enumerate(zip(clients, shards)):
                self._claims[client_id].append((cls, slot))
                self._slices[(cls, slot)] = shard

    def _shard_views(self, client_id: int) -> List[np.ndarray]:
        return [self._slices[claim] for claim in self._claims[client_id]]


class DirichletPartitionPlan(PartitionPlan):
    """Lazy counterpart of :func:`partition_dirichlet`."""

    def __init__(
        self,
        dataset: Dataset,
        num_clients: int,
        alpha: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(dataset, num_clients)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        rng = rng if rng is not None else np.random.default_rng(0)

        self._claims: Dict[int, List[Tuple[int, int]]] = {
            client_id: [] for client_id in range(num_clients)
        }
        self._slices: Dict[Tuple[int, int], np.ndarray] = {}
        for cls in range(dataset.num_classes):
            idx = rng.permutation(np.flatnonzero(dataset.y_train == cls))
            if idx.size == 0:
                continue
            proportions = rng.dirichlet([alpha] * num_clients)
            counts = np.floor(proportions * idx.size).astype(int)
            remainder = idx.size - counts.sum()
            if remainder > 0:
                order = np.argsort(-proportions)
                counts[order[:remainder]] += 1
            start = 0
            for client_id, count in enumerate(counts):
                if count > 0:
                    self._claims[client_id].append((cls, client_id))
                    self._slices[(cls, client_id)] = idx[start : start + count]
                    start += count

    def _shard_views(self, client_id: int) -> List[np.ndarray]:
        return [self._slices[claim] for claim in self._claims[client_id]]


def plan_partition(
    dataset: Dataset,
    num_clients: int,
    scheme: str = "iid",
    classes_per_client: int = 3,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> PartitionPlan:
    """Build the lazy :class:`PartitionPlan` for a named scheme.

    Consumes exactly the random draws :func:`partition_dataset` would, so a
    generator threaded through either entry point stays in sync.
    """
    if scheme == "iid":
        return IIDPartitionPlan(dataset, num_clients, rng=rng)
    if scheme == "noniid":
        return NonIIDPartitionPlan(
            dataset, num_clients, classes_per_client=classes_per_client, rng=rng
        )
    if scheme == "dirichlet":
        return DirichletPartitionPlan(dataset, num_clients, alpha=alpha, rng=rng)
    raise ValueError(f"unknown partitioning scheme {scheme!r}")


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    scheme: str = "iid",
    classes_per_client: int = 3,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> List[ClientPartition]:
    """Dispatch to one of the partitioning schemes by name.

    Parameters
    ----------
    scheme:
        ``"iid"``, ``"noniid"`` (k-class label skew, the paper's setup) or
        ``"dirichlet"``.

    Routed through :func:`plan_partition` + ``materialize()``; the eager
    per-scheme functions above are the reference implementations the plans
    are tested against, byte for byte.
    """
    return plan_partition(
        dataset,
        num_clients,
        scheme=scheme,
        classes_per_client=classes_per_client,
        alpha=alpha,
        rng=rng,
    ).materialize()
