"""Central plugin registries for the reproduction's extension points.

Everything a user can name on the command line or through :mod:`repro.api`
— federated-learning algorithms, cluster-dynamics scenarios, workload scale
profiles and datasets — resolves through one of the four registries defined
here instead of hardcoded dictionaries scattered across the codebase:

``FEDERATORS``
    Algorithm name -> federator class (:class:`repro.fl.federator.BaseFederator`
    subclass).  The built-in baselines self-register on import via
    :func:`register_federator`; this module pre-declares them *lazily* (name,
    providing module and description only), so listing the catalogue never
    imports the numeric stack and ``repro.fl`` keeps working without
    importing :mod:`repro.baselines` or :mod:`repro.core` eagerly.
``SCENARIOS``
    Scenario name -> builder ``(time_stretch: float) -> DynamicsConfig``.
``SCALE_PROFILES``
    Scale name -> :class:`repro.experiments.workloads.ScaleProfile`.
``DATASETS``
    Dataset name -> dataset factory (see :mod:`repro.data.datasets`); the
    registration metadata carries the default ``architecture`` the
    evaluation pairs with the dataset.

Third-party code extends the system without touching ``repro`` internals::

    from repro.registry import register_federator

    @register_federator("my-strategy", description="my Aergia variant")
    class MyFederator(BaseFederator):
        algorithm_name = "my-strategy"

After the import, ``"my-strategy"`` is a valid ``--algorithm`` everywhere:
the CLI, :func:`repro.fl.runtime.federator_class`, ``repro list`` and
:func:`repro.api.experiment` all render their listings and error messages
from the registry, so the valid-name enumerations can never drift apart.

Registry semantics:

* registering a name twice raises ``ValueError`` (a lazy declaration is
  *fulfilled* — not duplicated — by the declared provider module);
* looking up an unknown name raises ``ValueError`` naming every valid
  entry, sorted;
* :meth:`Registry.get` imports a lazy entry's provider module on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "Registry",
    "RegistryEntry",
    "RegistryView",
    "FEDERATORS",
    "SCENARIOS",
    "SCALE_PROFILES",
    "DATASETS",
    "register_federator",
    "register_scenario",
    "register_scale",
    "register_dataset",
    "registries",
]

#: Sentinel distinguishing "no object given" (decorator usage) from
#: explicitly registering ``None``.
_MISSING = object()


@dataclass
class RegistryEntry:
    """One named entry of a :class:`Registry`.

    ``obj`` is ``None`` while the entry is *lazy*: the name and description
    are known (so listings work without imports) but the object itself is
    supplied by ``provider`` — the module whose import registers it.
    """

    name: str
    obj: Optional[object] = None
    provider: Optional[str] = None
    description: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_lazy(self) -> bool:
        return self.obj is None


class Registry:
    """A named collection of pluggable components of one kind.

    ``kind`` is the singular noun used in error messages (``"algorithm"``),
    ``plural`` the listing noun (defaults to ``kind + "s"``).
    """

    def __init__(self, kind: str, plural: Optional[str] = None) -> None:
        self.kind = kind
        self.plural = plural or f"{kind}s"
        self._entries: Dict[str, RegistryEntry] = {}

    # ---------------------------------------------------------- registration
    def register(
        self,
        name: str,
        obj: object = _MISSING,
        *,
        description: str = "",
        **metadata: Any,
    ):
        """Register ``obj`` under ``name`` (or use as a decorator).

        Decorator form::

            @REGISTRY.register("name", description="...")
            class Thing: ...

        Direct form::

            REGISTRY.register("name", thing, description="...")

        Raises ``ValueError`` if ``name`` is already registered, unless the
        existing entry is a lazy declaration being fulfilled by its declared
        provider module.
        """
        if obj is _MISSING:

            def decorator(target: object) -> object:
                self._register(name, target, description, metadata)
                return target

            return decorator
        self._register(name, obj, description, metadata)
        return obj

    def _register(
        self, name: str, obj: object, description: str, metadata: Mapping[str, Any]
    ) -> None:
        key = name.lower()
        module = getattr(obj, "__module__", type(obj).__module__)
        existing = self._entries.get(key)
        if existing is not None:
            if existing.is_lazy and existing.provider in (None, module):
                # A lazy declaration being fulfilled by its provider module.
                existing.obj = obj
                if description:
                    existing.description = description
                existing.metadata.update(metadata)
                return
            provided_by = existing.provider or "a direct registration"
            raise ValueError(
                f"duplicate {self.kind} registration {name!r} "
                f"(already provided by {provided_by})"
            )
        self._entries[key] = RegistryEntry(
            name=key,
            obj=obj,
            provider=module,
            description=description,
            metadata=dict(metadata),
        )

    def declare_lazy(
        self, name: str, provider: str, *, description: str = "", **metadata: Any
    ) -> None:
        """Declare ``name`` without importing its provider module.

        The first ``register()`` call for ``name`` from ``provider`` (which
        :meth:`get` imports on demand) fulfils the declaration.
        """
        key = name.lower()
        if key in self._entries:
            raise ValueError(f"duplicate {self.kind} declaration {name!r}")
        self._entries[key] = RegistryEntry(
            name=key, provider=provider, description=description, metadata=dict(metadata)
        )

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests un-doing a registration)."""
        self._entries.pop(name.lower(), None)

    # --------------------------------------------------------------- lookups
    def _unknown(self, name: str) -> ValueError:
        return ValueError(
            f"unknown {self.kind} {name!r}; "
            f"valid {self.plural}: {', '.join(self.names())}"
        )

    def validate(self, name: str) -> str:
        """Check that ``name`` is registered (no import); return the key."""
        key = name.lower()
        if key not in self._entries:
            raise self._unknown(name)
        return key

    def entry(self, name: str) -> RegistryEntry:
        """The entry for ``name`` (possibly still lazy)."""
        return self._entries[self.validate(name)]

    def get(self, name: str) -> object:
        """Resolve ``name`` to its registered object, importing if lazy."""
        entry = self.entry(name)
        if entry.is_lazy:
            import_module(entry.provider)
            if entry.is_lazy:
                raise RuntimeError(
                    f"module {entry.provider!r} did not register "
                    f"{self.kind} {entry.name!r} on import"
                )
        return entry.obj

    def describe(self, name: str) -> str:
        """One-line description attached at registration/declaration time."""
        return self.entry(name).description

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def entries(self) -> Tuple[RegistryEntry, ...]:
        """All entries, sorted by name (lazy ones are *not* imported)."""
        return tuple(self._entries[name] for name in self.names())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self)} entries)"


class RegistryView(Mapping):
    """Read-only ``name -> object`` mapping facade over a registry.

    Kept so the historical module-level dicts (``workloads.SCALES``,
    ``data.datasets.DATASETS``) remain importable and dict-like while the
    registry stays the single source of truth.  Lookup follows the
    ``Mapping`` contract (``KeyError`` on a miss).
    """

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> object:
        if name not in self._registry:
            raise KeyError(name)
        return self._registry.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry)

    def __len__(self) -> int:
        return len(self._registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegistryView({self._registry!r})"


# ---------------------------------------------------------------------------
# The four global registries
# ---------------------------------------------------------------------------
FEDERATORS = Registry("algorithm")
SCENARIOS = Registry("scenario")
SCALE_PROFILES = Registry("scale")
DATASETS = Registry("dataset")


def register_federator(name: str, *, description: str = "", **metadata: Any):
    """Class decorator registering a federator under ``name``."""
    return FEDERATORS.register(name, description=description, **metadata)


def register_scenario(name: str, *, description: str = "", **metadata: Any):
    """Decorator registering a ``(stretch) -> DynamicsConfig`` builder."""
    return SCENARIOS.register(name, description=description, **metadata)


def register_scale(name: str, profile: object, *, description: str = "", **metadata: Any):
    """Register a workload scale profile."""
    return SCALE_PROFILES.register(name, profile, description=description, **metadata)


def register_dataset(name: str, *, description: str = "", **metadata: Any):
    """Decorator registering a dataset factory.

    Pass ``architecture="..."`` so the evaluation harness knows which
    network to pair with the dataset (see
    :func:`repro.experiments.workloads.architecture_for`).
    """
    return DATASETS.register(name, description=description, **metadata)


def load_plugins() -> None:
    """Import the plugin modules named in ``REPRO_PLUGINS``.

    ``REPRO_PLUGINS`` is a comma-separated list of importable module names
    (resolved against ``PYTHONPATH``).  Importing a plugin module triggers
    its ``register_*`` decorators, so third-party components land in the
    registries.  Called by the CLI before parsing (so plugin names are
    valid ``--algorithm``/``--scenario`` choices) and by every process-pool
    worker (so plugin algorithms resolve under the spawn start method,
    where workers do not inherit the parent's registry state).
    """
    import os

    for name in os.environ.get("REPRO_PLUGINS", "").split(","):
        name = name.strip()
        if name:
            import_module(name)


def registries() -> Dict[str, Registry]:
    """The registries by listing name, in display order (``repro list``)."""
    return {
        "algorithms": FEDERATORS,
        "scenarios": SCENARIOS,
        "datasets": DATASETS,
        "scales": SCALE_PROFILES,
    }


# ---------------------------------------------------------------------------
# Built-in catalogue: declared lazily so listings never import numpy-heavy
# modules and `repro.fl` stays import-light.  The provider modules fulfil
# these declarations with the actual objects via the decorators above.
# ---------------------------------------------------------------------------
_BUILTIN_FEDERATORS: Tuple[Tuple[str, str, str], ...] = (
    (
        "fedavg",
        "repro.fl.federator",
        "plain FedAvg: random selection, wait for everyone, weighted average",
    ),
    (
        "fedprox",
        "repro.baselines.fedprox",
        "FedProx: FedAvg with a proximal term limiting local drift",
    ),
    (
        "fednova",
        "repro.baselines.fednova",
        "FedNova: normalised aggregation of heterogeneous local work",
    ),
    (
        "fedsgd",
        "repro.baselines.fedsgd",
        "FedSGD: single-step local updates aggregated every round",
    ),
    (
        "tifl",
        "repro.baselines.tifl",
        "TiFL: tier-based selection of similarly fast clients",
    ),
    (
        "deadline",
        "repro.baselines.deadline",
        "per-round deadlines that drop late clients (Figures 1b/1c)",
    ),
    (
        "aergia",
        "repro.core.aergia",
        "Aergia: freeze slow clients' feature layers and offload their "
        "training to similar fast clients (the paper's contribution)",
    ),
    (
        "fedasync",
        "repro.baselines.fedasync",
        "FedAsync: staleness-weighted updates applied as they arrive",
    ),
    (
        "fedbuff",
        "repro.baselines.fedbuff",
        "FedBuff: buffered asynchronous aggregation of K staleness-"
        "discounted deltas",
    ),
)

for _name, _provider, _description in _BUILTIN_FEDERATORS:
    FEDERATORS.declare_lazy(_name, _provider, description=_description)

_WORKLOADS = "repro.experiments.workloads"

_BUILTIN_SCENARIOS: Tuple[Tuple[str, str], ...] = (
    ("stable", "static cluster, no dynamics (the pre-refactor behaviour)"),
    (
        "churn",
        "clients leave and rejoin on exponential on/off windows; "
        "mid-round leavers are dropped from the round",
    ),
    (
        "flaky-network",
        "client<->federator bandwidth fluctuates between 2% and 60% of "
        "nominal on a Poisson trace",
    ),
    (
        "straggler-burst",
        "random clients are slowed 5x for short bursts (transient "
        "co-located load)",
    ),
    (
        "mega-churn",
        "aggressive churn plus slowdown bursts plus a flaky network — "
        "the worst case of all three axes",
    ),
    (
        "lossy",
        "drop/duplicate/reorder/corrupt faults on every link, recovered by "
        "the reliable-delivery middleware (ACK + retransmit)",
    ),
    (
        "lossy-churn",
        "lossy links and churning clients at once: retransmissions race "
        "disconnects, expired sends degrade the round",
    ),
    (
        "partition-storm",
        "random client links collapse to 90% loss in bursts; rounds "
        "finalize on a 3/4 quorum instead of waiting out the partition",
    ),
)

for _name, _description in _BUILTIN_SCENARIOS:
    SCENARIOS.declare_lazy(_name, _WORKLOADS, description=_description)

_BUILTIN_SCALES: Tuple[Tuple[str, str], ...] = (
    ("smoke", "seconds; used by the test-suite"),
    ("bench", "minutes; the benchmark harness default"),
    ("full", "hours; closest to the paper"),
    ("city", "city-sized cohort (1k clients, 32 per round, virtualized pool)"),
    ("metro", "metro-sized cohort (5k clients, 64 per round, virtualized pool)"),
)

for _name, _description in _BUILTIN_SCALES:
    SCALE_PROFILES.declare_lazy(_name, _WORKLOADS, description=_description)

_SYNTH_DATASETS = "repro.data.datasets"

_BUILTIN_DATASETS: Tuple[Tuple[str, str, str], ...] = (
    ("mnist", "mnist-cnn", "synthetic MNIST stand-in (28x28 grayscale, 10 classes)"),
    ("fmnist", "fmnist-cnn", "synthetic Fashion-MNIST stand-in (28x28 grayscale, 10 classes)"),
    ("cifar10", "cifar10-cnn", "synthetic Cifar-10 stand-in (32x32 RGB, 10 classes)"),
    ("cifar100", "cifar100-vgg", "synthetic Cifar-100 stand-in (32x32 RGB, 100 classes)"),
)

for _name, _architecture, _description in _BUILTIN_DATASETS:
    DATASETS.declare_lazy(
        _name, _SYNTH_DATASETS, description=_description, architecture=_architecture
    )

del _name, _provider, _description, _architecture
