"""Pure-numpy neural network substrate used by the Aergia reproduction.

This package provides everything the federated-learning layers of the
reproduction need from a deep-learning framework:

* layers (:mod:`repro.nn.layers`) with forward and backward passes and
  per-call FLOP accounting,
* a model container (:mod:`repro.nn.model`) that splits a convolutional
  network into *feature* layers and *classifier* layers and executes the
  four training phases of the paper (ff, fc, bc, bf) separately,
* losses (:mod:`repro.nn.loss`), optimisers (:mod:`repro.nn.optim`),
  metrics (:mod:`repro.nn.metrics`),
* the network architectures used in the paper's evaluation
  (:mod:`repro.nn.architectures`).

The substrate performs real gradient computation so that accuracy numbers
in the experiments are the product of actual learning, while FLOP counts
per phase feed the cluster simulator's virtual-time cost model.
"""

from repro.nn.dtype import (
    compute_dtype,
    resolve_dtype,
    set_compute_dtype,
    using_dtype,
)
from repro.nn.layers import (
    Layer,
    Conv2D,
    Dense,
    ReLU,
    Flatten,
    MaxPool2D,
    ResidualBlock,
)
from repro.nn.loss import CrossEntropyLoss, softmax
from repro.nn.model import SplitCNN, PhaseTrace, Phase
from repro.nn.optim import SGD, ProximalSGD, Optimizer
from repro.nn.metrics import accuracy, top_k_accuracy
from repro.nn.architectures import (
    build_model,
    mnist_cnn,
    fmnist_cnn,
    cifar10_cnn,
    cifar10_resnet,
    cifar100_vgg,
    cifar100_resnet,
    ARCHITECTURES,
)

__all__ = [
    "compute_dtype",
    "resolve_dtype",
    "set_compute_dtype",
    "using_dtype",
    "Layer",
    "Conv2D",
    "Dense",
    "ReLU",
    "Flatten",
    "MaxPool2D",
    "ResidualBlock",
    "CrossEntropyLoss",
    "softmax",
    "SplitCNN",
    "PhaseTrace",
    "Phase",
    "SGD",
    "ProximalSGD",
    "Optimizer",
    "accuracy",
    "top_k_accuracy",
    "build_model",
    "mnist_cnn",
    "fmnist_cnn",
    "cifar10_cnn",
    "cifar10_resnet",
    "cifar100_vgg",
    "cifar100_resnet",
    "ARCHITECTURES",
]
