"""Array-backend seam for the batched compute engine.

The batched client executor (:mod:`repro.nn.batched`) expresses every
kernel through an :class:`ArrayBackend` instead of importing numpy
directly, so a GPU backend (cupy, torch-with-adapter) can be dropped in
later without touching the federation layer.  A backend provides:

* ``xp`` — a numpy-API-compatible namespace (``matmul``, ``empty``,
  ``zeros``, ``maximum``, ``exp``, ``copyto``, ``put_along_axis``, ...).
  numpy itself and cupy satisfy this directly; a torch backend would wrap
  the equivalent calls in a small adapter object.
* ``sliding_window_view`` — the strided window view used by im2col
  (lives under ``numpy.lib.stride_tricks``, hence not part of ``xp``).
* ``asarray`` / ``to_host`` — transfers between host numpy arrays and
  backend arrays (identity for the numpy backend).

The numpy backend is the only one baked into the repository; it is also
the *parity* backend: its kernels are bitwise identical to the
per-client engine, which the test suite pins.  Accelerator backends are
expected to be value-approximate, so runs using them should disable the
bitwise golden guards.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple

import numpy as np


class ArrayBackend:
    """Protocol-ish base class for array backends (numpy fulfils it as-is)."""

    #: Short identifier used in benchmark metadata and error messages.
    name: str = "abstract"

    #: numpy-API-compatible module or adapter object.
    xp = None

    def sliding_window_view(self, x, window_shape, axis):
        raise NotImplementedError

    def asarray(self, host_array):
        """Move/wrap a host numpy array into this backend's array type."""
        raise NotImplementedError

    def to_host(self, array) -> np.ndarray:
        """Move a backend array back to a host numpy array."""
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The default (and parity-oracle) backend: plain numpy on the host."""

    name = "numpy"
    xp = np

    def sliding_window_view(self, x, window_shape, axis):
        return np.lib.stride_tricks.sliding_window_view(x, window_shape, axis=axis)

    def asarray(self, host_array):
        return host_array

    def to_host(self, array) -> np.ndarray:
        return array


#: Registry of constructable backends, keyed by :attr:`ArrayBackend.name`.
_BACKENDS: Dict[str, Callable[[], ArrayBackend]] = {"numpy": NumpyBackend}


def register_array_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a third-party backend factory under ``name``."""
    _BACKENDS[name] = factory


def available_array_backends() -> Tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def get_array_backend(name: str | None = None) -> ArrayBackend:
    """Resolve a backend by name (default: ``REPRO_ARRAY_BACKEND`` or numpy)."""
    if name is None:
        name = os.environ.get("REPRO_ARRAY_BACKEND", "numpy")
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; available: {', '.join(available_array_backends())}"
        ) from None
    return factory()
