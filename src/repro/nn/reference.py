"""Reference implementation of the original (seed) compute engine.

This module preserves the pre-optimisation engine **verbatim in behaviour**:
float64 everywhere, fresh allocations on every call, 6-D boolean pooling
masks with an explicit tie-break matrix, per-key Python loops in the
optimiser step and in weight aggregation.  It exists for two purposes:

* **parity testing** — ``tests/test_engine_parity.py`` builds models from
  these layers and asserts that the optimised engine reproduces them
  bit-for-bit in ``float64`` mode, both per-operation and across whole
  experiment suites;
* **benchmarking** — ``benchmarks/bench_engine.py`` measures the optimised
  hot path against this engine to report honest before/after speedups.

The classes subclass the production :class:`repro.nn.layers.Layer`, so a
:class:`repro.nn.model.SplitCNN` can be assembled from them and run through
the full experiment harness unchanged.  Do not use this engine for real
experiments; it is intentionally slow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.initializers import he_normal, zeros
from repro.nn.layers import Flatten, Layer, ReLU
from repro.nn.model import SplitCNN

Weights = Dict[str, np.ndarray]


# ---------------------------------------------------------------------------
# Seed im2col helpers (fresh allocations on every call)
# ---------------------------------------------------------------------------
def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    n, c, h, w = x.shape
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n, out_h, out_w, c * kh * kw)


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)

    x_padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if pad > 0:
        return x_padded[:, :, pad:-pad, pad:-pad]
    return x_padded


# ---------------------------------------------------------------------------
# Seed layers
# ---------------------------------------------------------------------------
class ReferenceConv2D(Layer):
    """Seed Conv2D: im2col with fresh buffers on every forward/backward."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self._params["W"] = he_normal(
            (out_channels, in_channels, kernel_size, kernel_size),
            fan_in,
            rng,
            dtype=np.float64,
        )
        self._params["b"] = zeros((out_channels,), dtype=np.float64)
        self.zero_grad()
        self._cache_cols: Optional[np.ndarray] = None
        self._cache_x_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        return (self.out_channels, (h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        cols = _im2col(x, k, k, self.stride, self.padding)
        out_h, out_w = cols.shape[1], cols.shape[2]
        w_mat = self._params["W"].reshape(self.out_channels, -1)
        out = cols.reshape(n * out_h * out_w, -1) @ w_mat.T + self._params["b"]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cache_cols = cols
            self._cache_x_shape = x.shape
        macs = n * out_h * out_w * self.out_channels * self.in_channels * k * k
        self.last_forward_flops = 2 * macs
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_x_shape is None:
            raise RuntimeError("ReferenceConv2D.backward called before forward(training=True)")
        n, _, out_h, out_w = grad_out.shape
        k = self.kernel_size
        cols = self._cache_cols
        w_mat = self._params["W"].reshape(self.out_channels, -1)
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        cols_flat = cols.reshape(n * out_h * out_w, -1)
        grad_w = grad_flat.T @ cols_flat
        self._grads["W"] += grad_w.reshape(self._params["W"].shape)
        self._grads["b"] += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ w_mat
        grad_x = _col2im(
            grad_cols.reshape(n, out_h, out_w, -1),
            self._cache_x_shape,
            k,
            k,
            self.stride,
            self.padding,
        )
        macs = n * out_h * out_w * self.out_channels * self.in_channels * k * k
        self.last_backward_flops = 4 * macs
        return grad_x


class ReferenceMaxPool2D(Layer):
    """Seed MaxPool2D: 6-D boolean mask plus per-window tie-break matrix."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        self.pool_size = pool_size
        self._cache_mask: Optional[np.ndarray] = None
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if h % self.pool_size or w % self.pool_size:
            raise ValueError(
                f"MaxPool2D requires spatial dims divisible by {self.pool_size}, got {input_shape}"
            )
        return (c, h // self.pool_size, w // self.pool_size)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"MaxPool2D input spatial dims {h}x{w} not divisible by {p}")
        reshaped = x.reshape(n, c, h // p, p, w // p, p)
        out = reshaped.max(axis=(3, 5))
        if training:
            expanded = out[:, :, :, None, :, None]
            mask = reshaped == expanded
            flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(-1, p * p)
            first = np.argmax(flat, axis=1)
            single = np.zeros_like(flat)
            single[np.arange(flat.shape[0]), first] = True
            self._cache_mask = single.reshape(n, c, h // p, w // p, p, p).transpose(
                0, 1, 2, 4, 3, 5
            )
            self._cache_shape = x.shape
        self.last_forward_flops = x.size
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_mask is None or self._cache_shape is None:
            raise RuntimeError("ReferenceMaxPool2D.backward called before forward(training=True)")
        n, c, h, w = self._cache_shape
        p = self.pool_size
        grad = np.zeros((n, c, h // p, p, w // p, p), dtype=grad_out.dtype)
        grad += grad_out[:, :, :, None, :, None]
        grad *= self._cache_mask
        self.last_backward_flops = grad.size
        return grad.reshape(n, c, h, w)


class ReferenceDense(Layer):
    """Seed Dense layer (float64 parameters, `x @ W + b` with a fresh add)."""

    def __init__(
        self, in_features: int, out_features: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self._params["W"] = he_normal((in_features, out_features), in_features, rng, dtype=np.float64)
        self._params["b"] = zeros((out_features,), dtype=np.float64)
        self.zero_grad()
        self._cache_x: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._cache_x = x
        self.last_forward_flops = 2 * x.shape[0] * self.in_features * self.out_features
        return x @ self._params["W"] + self._params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("ReferenceDense.backward called before forward(training=True)")
        x = self._cache_x
        self._grads["W"] += x.T @ grad_out
        self._grads["b"] += grad_out.sum(axis=0)
        self.last_backward_flops = 4 * x.shape[0] * self.in_features * self.out_features
        return grad_out @ self._params["W"].T


# ---------------------------------------------------------------------------
# Seed optimiser step and aggregation (per-key Python loops)
# ---------------------------------------------------------------------------
class ReferenceSGD:
    """Seed SGD: per-key loop allocating fresh intermediates on every step.

    Pass ``model`` to make :meth:`step_flat` iterate the model's individual
    parameter keys (the seed behaviour) instead of the section vectors, so
    benchmarks time the historical per-key update loop.
    """

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        model: Optional[SplitCNN] = None,
    ) -> None:
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.model = model
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        for key, param in params.items():
            grad = grads[key]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            if self.momentum:
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + grad
                self._velocity[key] = velocity
                update = velocity
            else:
                update = grad
            param -= self.lr * update

    def step_flat(self, sections) -> None:
        """Adapter so a ``SplitCNN.train_batch`` can drive this optimiser."""
        if self.model is not None:
            params, grads = self.model._trainable_params()
            self.step(params, grads)
            return
        self.step(
            {name: vectors[0] for name, vectors in sections.items()},
            {name: vectors[1] for name, vectors in sections.items()},
        )

    def reset_state(self) -> None:
        self._velocity.clear()


def reference_weighted_average(
    weight_sets: Sequence[Weights], coefficients: Sequence[float]
) -> Weights:
    """Seed FedAvg reduction: per-key loop with a fresh scaled copy per client."""
    total = float(sum(coefficients))
    averaged: Weights = {}
    for key in weight_sets[0]:
        accumulator = np.zeros_like(weight_sets[0][key])
        for weights, coefficient in zip(weight_sets, coefficients):
            accumulator += (coefficient / total) * weights[key]
        averaged[key] = accumulator
    return averaged


def reference_fedavg_aggregate(updates: Sequence[Tuple[Weights, int]]) -> Weights:
    sizes = [float(max(num_samples, 0)) for _, num_samples in updates]
    if sum(sizes) <= 0:
        sizes = [1.0] * len(updates)
    return reference_weighted_average([weights for weights, _ in updates], sizes)


def reference_fednova_aggregate(
    global_weights: Weights, updates: Sequence[Tuple[Weights, int, int]]
) -> Weights:
    sizes = np.array([float(max(num_samples, 0)) for _, num_samples, _ in updates])
    if sizes.sum() <= 0:
        sizes = np.ones(len(updates))
    p = sizes / sizes.sum()
    taus = np.array([float(max(num_steps, 1)) for _, _, num_steps in updates])
    tau_eff = float(np.sum(p * taus))
    new_weights: Weights = {}
    for key, global_value in global_weights.items():
        direction = np.zeros_like(global_value)
        for (weights, _, _), p_k, tau_k in zip(updates, p, taus):
            direction += p_k * (global_value - weights[key]) / tau_k
        new_weights[key] = global_value - tau_eff * direction
    return new_weights


# ---------------------------------------------------------------------------
# Seed architectures (mirrors repro.nn.architectures for the parity suite)
# ---------------------------------------------------------------------------
def reference_mnist_cnn(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """The seed three-layer MNIST CNN, built from reference layers."""
    rng = rng if rng is not None else np.random.default_rng(0)
    features: List[Layer] = [
        ReferenceConv2D(1, 8, 5, padding=2, rng=rng),
        ReLU(),
        ReferenceMaxPool2D(2),
        ReferenceConv2D(8, 16, 5, padding=2, rng=rng),
        ReLU(),
        ReferenceMaxPool2D(2),
    ]
    classifier: List[Layer] = [
        Flatten(),
        ReferenceDense(16 * 7 * 7, 10, rng=rng),
    ]
    return SplitCNN(features, classifier, name="mnist-cnn", dtype=np.float64)


def reference_cifar10_cnn(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """The seed eight-layer Cifar-10 CNN, built from reference layers."""
    rng = rng if rng is not None else np.random.default_rng(0)
    features: List[Layer] = [
        ReferenceConv2D(3, 16, 3, padding=1, rng=rng),
        ReLU(),
        ReferenceConv2D(16, 16, 3, padding=1, rng=rng),
        ReLU(),
        ReferenceMaxPool2D(2),
        ReferenceConv2D(16, 32, 3, padding=1, rng=rng),
        ReLU(),
        ReferenceConv2D(32, 32, 3, padding=1, rng=rng),
        ReLU(),
        ReferenceMaxPool2D(2),
        ReferenceConv2D(32, 32, 3, padding=1, rng=rng),
        ReLU(),
        ReferenceConv2D(32, 32, 3, padding=1, rng=rng),
        ReLU(),
        ReferenceMaxPool2D(2),
    ]
    classifier: List[Layer] = [
        Flatten(),
        ReferenceDense(32 * 4 * 4, 64, rng=rng),
        ReLU(),
        ReferenceDense(64, 10, rng=rng),
    ]
    return SplitCNN(features, classifier, name="cifar10-cnn", dtype=np.float64)


REFERENCE_ARCHITECTURES = {
    "mnist-cnn": reference_mnist_cnn,
    "fmnist-cnn": reference_mnist_cnn,
    "cifar10-cnn": reference_cifar10_cnn,
}
