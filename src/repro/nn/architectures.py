"""Network architectures used in the paper's evaluation.

The paper evaluates Aergia with:

* a three-layer CNN (two convolutional layers + one fully connected layer)
  for MNIST and FMNIST (§5.1 "Networks"),
* an eight-layer CNN (six convolutional layers + two fully connected
  layers) for Cifar-10,
* additional ResNet- and VGG-style networks on Cifar-10/Cifar-100 for the
  phase-profiling experiment (Figure 4).

Channel counts are scaled down relative to typical PyTorch models so that a
pure-numpy implementation trains in seconds, while the *structural*
properties the paper relies on — convolutional feature layers dominating
the backward-pass cost, a small fully connected classifier — are preserved.
Every factory takes a seeded :class:`numpy.random.Generator` so that the
federator and all simulated clients agree on the initial global model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, ResidualBlock
from repro.nn.model import SplitCNN


@dataclass(frozen=True)
class ArchitectureSpec:
    """Metadata describing a registered architecture."""

    name: str
    input_shape: Tuple[int, int, int]
    num_classes: int
    builder: Callable[[np.random.Generator], SplitCNN]


def _default_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


def mnist_cnn(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """Three-layer CNN for MNIST: two conv layers and one FC layer."""
    rng = _default_rng(rng)
    features = [
        Conv2D(1, 8, 5, padding=2, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(8, 16, 5, padding=2, rng=rng),
        ReLU(),
        MaxPool2D(2),
    ]
    classifier = [
        Flatten(),
        Dense(16 * 7 * 7, 10, rng=rng),
    ]
    return SplitCNN(features, classifier, name="mnist-cnn")


def fmnist_cnn(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """Same architecture as :func:`mnist_cnn`, used for Fashion-MNIST."""
    model = mnist_cnn(rng)
    model.name = "fmnist-cnn"
    return model


def cifar10_cnn(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """Eight-layer CNN for Cifar-10: six conv layers and two FC layers."""
    rng = _default_rng(rng)
    features = [
        Conv2D(3, 16, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(16, 16, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(16, 32, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(32, 32, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(32, 32, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(32, 32, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
    ]
    classifier = [
        Flatten(),
        Dense(32 * 4 * 4, 64, rng=rng),
        ReLU(),
        Dense(64, 10, rng=rng),
    ]
    return SplitCNN(features, classifier, name="cifar10-cnn")


def cifar10_resnet(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """Small residual network for Cifar-10 (used in the Figure 4 profile)."""
    rng = _default_rng(rng)
    features = [
        Conv2D(3, 16, 3, padding=1, rng=rng),
        ReLU(),
        ResidualBlock(16, 16, rng=rng),
        MaxPool2D(2),
        ResidualBlock(16, 32, rng=rng),
        MaxPool2D(2),
        ResidualBlock(32, 32, rng=rng),
        MaxPool2D(2),
    ]
    classifier = [
        Flatten(),
        Dense(32 * 4 * 4, 10, rng=rng),
    ]
    return SplitCNN(features, classifier, name="cifar10-resnet")


def cifar100_vgg(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """VGG-style network for Cifar-100 (used in the Figure 4 profile)."""
    rng = _default_rng(rng)
    features = [
        Conv2D(3, 16, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(16, 16, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(16, 32, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(32, 32, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(32, 64, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(64, 64, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
    ]
    classifier = [
        Flatten(),
        Dense(64 * 4 * 4, 128, rng=rng),
        ReLU(),
        Dense(128, 100, rng=rng),
    ]
    return SplitCNN(features, classifier, name="cifar100-vgg")


def cifar100_resnet(rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """Small residual network for Cifar-100 (used in the Figure 4 profile)."""
    rng = _default_rng(rng)
    features = [
        Conv2D(3, 16, 3, padding=1, rng=rng),
        ReLU(),
        ResidualBlock(16, 32, rng=rng),
        MaxPool2D(2),
        ResidualBlock(32, 32, rng=rng),
        MaxPool2D(2),
        ResidualBlock(32, 64, rng=rng),
        MaxPool2D(2),
    ]
    classifier = [
        Flatten(),
        Dense(64 * 4 * 4, 100, rng=rng),
    ]
    return SplitCNN(features, classifier, name="cifar100-resnet")


ARCHITECTURES: Dict[str, ArchitectureSpec] = {
    "mnist-cnn": ArchitectureSpec("mnist-cnn", (1, 28, 28), 10, mnist_cnn),
    "fmnist-cnn": ArchitectureSpec("fmnist-cnn", (1, 28, 28), 10, fmnist_cnn),
    "cifar10-cnn": ArchitectureSpec("cifar10-cnn", (3, 32, 32), 10, cifar10_cnn),
    "cifar10-resnet": ArchitectureSpec("cifar10-resnet", (3, 32, 32), 10, cifar10_resnet),
    "cifar100-vgg": ArchitectureSpec("cifar100-vgg", (3, 32, 32), 100, cifar100_vgg),
    "cifar100-resnet": ArchitectureSpec("cifar100-resnet", (3, 32, 32), 100, cifar100_resnet),
}


def build_model(name: str, rng: Optional[np.random.Generator] = None) -> SplitCNN:
    """Instantiate a registered architecture by name.

    Parameters
    ----------
    name:
        One of the keys of :data:`ARCHITECTURES`.
    rng:
        Generator controlling the weight initialisation.
    """
    try:
        spec = ARCHITECTURES[name]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        ) from None
    return spec.builder(_default_rng(rng))
